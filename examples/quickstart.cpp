// Quickstart: model a two-server DCS with non-exponential service and
// transfer laws, compute the three performance metrics for a candidate
// reallocation policy, find the optimal policy, and sanity-check the
// analytic answer against Monte-Carlo simulation.
//
//   ./quickstart [--m1=100 --m2=50 --transfer-mean=1.0]
#include <iostream>

#include "agedtr/core/convolution.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

int main(int argc, char** argv) {
  CliParser cli(
      "quickstart: metrics and optimal task reallocation for a 2-server "
      "DCS with Pareto service times");
  cli.add_option("m1", "100", "tasks initially queued at server 1");
  cli.add_option("m2", "50", "tasks initially queued at server 2");
  cli.add_option("transfer-mean", "1.0", "mean task-transfer delay (s)");
  cli.add_option("mc-reps", "5000", "Monte-Carlo replications");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));

  const int m1 = static_cast<int>(cli.get_int("m1"));
  const int m2 = static_cast<int>(cli.get_int("m2"));
  const double transfer_mean = cli.get_double("transfer-mean");

  // --- 1. Describe the system: heterogeneous servers, Pareto service
  //        (finite variance), a network with random transfer delays.
  std::vector<core::ServerSpec> servers = {
      {m1, dist::make_model_distribution(dist::ModelFamily::kPareto1, 2.0),
       nullptr},
      {m2, dist::make_model_distribution(dist::ModelFamily::kPareto1, 1.0),
       nullptr}};
  const core::DcsScenario scenario = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(dist::ModelFamily::kPareto1,
                                    transfer_mean),
      dist::Exponential::with_mean(0.2));

  // --- 2. Evaluate a candidate policy analytically.
  const core::ConvolutionSolver solver;
  const core::DtrPolicy candidate = policy::make_two_server_policy(
      m1 / 4, 0);  // move a quarter of server 1's queue
  const auto workloads = core::apply_policy(scenario, candidate);
  const double mean = solver.mean_execution_time(workloads);
  std::cout << "Candidate policy L12=" << candidate(0, 1) << ", L21=0\n"
            << "  average execution time : " << format_double(mean)
            << " s\n"
            << "  QoS within 1.2x mean   : "
            << format_double(solver.qos(workloads, 1.2 * mean)) << "\n\n";

  // --- 3. Find the optimal one-way offload (problem (3) of the paper,
  //         restricted to the L21 = 0 line): the exhaustive 2-server search
  //         behind the DecisionPolicy interface, devised on the fresh t = 0
  //         state of the scenario (drop max_l21 to search both directions).
  const policy::PolicyEvaluator evaluator =
      policy::make_age_dependent_evaluator(
          scenario, policy::Objective::kMeanExecutionTime);
  policy::DecisionEngineOptions engine_opts;
  engine_opts.objective = policy::Objective::kMeanExecutionTime;
  engine_opts.pool = &ThreadPool::global();
  const core::DtrPolicy best = policy::decide_from_state(
      policy::TwoServerSearchPolicy({.markovian = false, .max_l21 = 0}),
      scenario, core::SystemState::initial(scenario, core::DtrPolicy(2)),
      engine_opts);
  const double best_value = evaluator(best);
  std::cout << "Optimal policy: L12=" << best(0, 1) << ", L21=" << best(1, 0)
            << "  ->  T-bar = " << format_double(best_value) << " s\n\n";

  // --- 4. Cross-check the optimum by simulation.
  sim::MonteCarloOptions mc;
  mc.replications =
      static_cast<std::size_t>(cli.get_int("mc-reps"));
  const auto metrics = sim::run_monte_carlo(scenario, best, mc);
  Table table({"source", "mean execution time (s)", "95% CI half-width"});
  table.begin_row()
      .cell("age-dependent theory")
      .cell(best_value)
      .cell("-");
  table.begin_row()
      .cell("Monte-Carlo (" + std::to_string(mc.replications) + " reps)")
      .cell(metrics.mean_completion_time.center)
      .cell(metrics.mean_completion_time.half_width());
  table.print(std::cout);
  return 0;
}
