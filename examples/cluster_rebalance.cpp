// Multi-server rebalancing with Algorithm 1: a five-node heterogeneous
// cluster (the Table II setting) receives a bursty batch that lands mostly
// on the slow nodes; each node runs the paper's scalable DTR algorithm and
// the resulting policy is validated by Monte-Carlo simulation, under both
// the mean-execution-time and the service-reliability objectives.
//
//   ./cluster_rebalance [--objective=mean|reliability --reps=4000]
#include <iostream>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

int main(int argc, char** argv) {
  CliParser cli("cluster_rebalance: Algorithm 1 on a 5-node cluster");
  cli.add_option("objective", "mean", "mean | reliability");
  cli.add_option("reps", "4000", "Monte-Carlo replications");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const bool reliability = cli.get_string("objective") == "reliability";

  // The Table II cluster: service means 5..1 s, failure means 1000..400 s,
  // M = 200 tasks mostly on the slow nodes, severe network delay.
  const std::vector<double> service_means = {5.0, 4.0, 3.0, 2.0, 1.0};
  const std::vector<double> failure_means = {1000.0, 800.0, 600.0, 500.0,
                                             400.0};
  const std::vector<int> tasks = {90, 50, 30, 20, 10};
  std::vector<core::ServerSpec> servers;
  for (std::size_t j = 0; j < 5; ++j) {
    servers.push_back(
        {tasks[j],
         dist::make_model_distribution(dist::ModelFamily::kPareto1,
                                       service_means[j]),
         reliability ? dist::Exponential::with_mean(failure_means[j])
                     : nullptr});
  }
  const core::DcsScenario cluster = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(dist::ModelFamily::kPareto1, 9.0),
      dist::Exponential::with_mean(1.0));

  policy::Algorithm1Options opts;
  opts.objective = reliability ? policy::Objective::kReliability
                               : policy::Objective::kMeanExecutionTime;
  opts.criterion = reliability ? policy::ReallocationCriterion::kReliability
                               : policy::ReallocationCriterion::kSpeed;
  opts.pool = &ThreadPool::global();
  const auto result = policy::Algorithm1Policy(opts).devise(cluster);
  std::cout << "Algorithm 1 " << (result.converged ? "converged" : "stopped")
            << " after " << result.iterations << " iteration(s).\n\n";

  Table moves({"from", "to", "tasks"});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i != j && result.policy(i, j) > 0) {
        moves.begin_row()
            .cell(static_cast<long long>(i + 1))
            .cell(static_cast<long long>(j + 1))
            .cell(result.policy(i, j));
      }
    }
  }
  std::cout << "Reallocation plan:\n";
  moves.print(std::cout);

  sim::MonteCarloOptions mc;
  mc.replications = static_cast<std::size_t>(cli.get_int("reps"));
  const auto with_policy = sim::run_monte_carlo(cluster, result.policy, mc);
  const auto without =
      sim::run_monte_carlo(cluster, core::DtrPolicy(5), mc);

  Table compare({"policy", reliability ? "service reliability"
                                       : "mean execution time (s)"});
  const auto metric = [&](const sim::MonteCarloMetrics& m) {
    return reliability ? m.reliability.center
                       : m.mean_completion_time.center;
  };
  compare.begin_row().cell("no reallocation").cell(metric(without));
  compare.begin_row().cell("Algorithm 1").cell(metric(with_policy));
  std::cout << "\nMonte-Carlo validation (" << mc.replications
            << " replications):\n";
  compare.print(std::cout);
  return 0;
}
