// Deadline-driven reallocation for a real-time workload (the paper's QoS
// metric, problem (4)): a rendering farm must deliver a batch of frames by
// a hard deadline; we compare the policy that minimizes the *average*
// completion time against the policy that maximizes the *probability* of
// meeting the deadline — they differ, which is exactly Fig. 3's point
// (the minimal-mean policy met a 140 s deadline with probability 0.471
// while the QoS-optimal policies reached 0.988 at 180 s).
//
//   ./deadline_qos [--deadline=1.25]   (deadline as a multiple of the
//                                       optimal mean execution time)
#include <iostream>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

int main(int argc, char** argv) {
  CliParser cli(
      "deadline_qos: mean-optimal vs QoS-optimal reallocation for a "
      "deadline-constrained workload");
  cli.add_option("m1", "60", "frames queued at the slow node");
  cli.add_option("m2", "30", "frames queued at the fast node");
  cli.add_option("deadline", "1.25",
                 "deadline as a multiple of the optimal mean");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const int m1 = static_cast<int>(cli.get_int("m1"));
  const int m2 = static_cast<int>(cli.get_int("m2"));

  // Frame render times are heavy-tailed (occasional pathological frames):
  // Pareto with infinite variance. The farm's two nodes share files over a
  // congested link with a shifted-exponential delay (hard minimum latency).
  std::vector<core::ServerSpec> servers = {
      {m1, dist::make_model_distribution(dist::ModelFamily::kPareto2, 2.0),
       nullptr},
      {m2, dist::make_model_distribution(dist::ModelFamily::kPareto2, 1.0),
       nullptr}};
  const core::DcsScenario farm = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(dist::ModelFamily::kShiftedExponential,
                                    4.0),
      dist::Exponential::with_mean(0.2));

  ThreadPool& pool = ThreadPool::global();
  const policy::TwoServerPolicySearch search(m1, m2);
  const auto line_optimum = [&](const policy::PolicyEvaluator& eval,
                                bool maximize) {
    policy::PolicyPoint best{0, 0,
                             eval(policy::make_two_server_policy(0, 0))};
    for (const auto& p : search.sweep_l12(eval, 0, &pool)) {
      if (maximize ? p.value > best.value : p.value < best.value) best = p;
    }
    return best;
  };

  // Policy A: minimize the average execution time (one-way offload line).
  const auto mean_eval = policy::make_age_dependent_evaluator(
      farm, policy::Objective::kMeanExecutionTime);
  const auto best_mean = line_optimum(mean_eval, false);

  const double deadline = cli.get_double("deadline") * best_mean.value;

  // Policy B: maximize P{T < deadline}.
  const auto qos_eval = policy::make_age_dependent_evaluator(
      farm, policy::Objective::kQos, deadline);
  const auto best_qos = line_optimum(qos_eval, true);

  std::cout << "Deadline: " << format_double(deadline) << " s ("
            << cli.get_double("deadline") << "x the optimal mean "
            << format_double(best_mean.value) << " s)\n\n";
  Table table({"policy", "L12", "L21", "mean exec time (s)",
               "P{T < deadline}"});
  table.begin_row()
      .cell("mean-optimal")
      .cell(best_mean.l12)
      .cell(best_mean.l21)
      .cell(best_mean.value)
      .cell(qos_eval(policy::make_two_server_policy(best_mean.l12,
                                                    best_mean.l21)));
  table.begin_row()
      .cell("QoS-optimal")
      .cell(best_qos.l12)
      .cell(best_qos.l21)
      .cell(mean_eval(policy::make_two_server_policy(best_qos.l12,
                                                     best_qos.l21)))
      .cell(best_qos.value);
  table.print(std::cout);
  std::cout << "\nThe QoS-optimal policy sacrifices a little average speed "
               "to raise the\nprobability of making the deadline — the "
               "trade-off behind problem (4).\n";
  return 0;
}
