// Deadline-driven reallocation for a real-time workload (the paper's QoS
// metric, problem (4)): a rendering farm must deliver a batch of frames by
// a hard deadline; we compare the policy that minimizes the *average*
// completion time against the policy that maximizes the *probability* of
// meeting the deadline — they differ, which is exactly Fig. 3's point
// (the minimal-mean policy met a 140 s deadline with probability 0.471
// while the QoS-optimal policies reached 0.988 at 180 s).
//
//   ./deadline_qos [--deadline=1.25]   (deadline as a multiple of the
//                                       optimal mean execution time)
#include <iostream>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

int main(int argc, char** argv) {
  CliParser cli(
      "deadline_qos: mean-optimal vs QoS-optimal reallocation for a "
      "deadline-constrained workload");
  cli.add_option("m1", "60", "frames queued at the slow node");
  cli.add_option("m2", "30", "frames queued at the fast node");
  cli.add_option("deadline", "1.25",
                 "deadline as a multiple of the optimal mean");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const int m1 = static_cast<int>(cli.get_int("m1"));
  const int m2 = static_cast<int>(cli.get_int("m2"));

  // Frame render times are heavy-tailed (occasional pathological frames):
  // Pareto with infinite variance. The farm's two nodes share files over a
  // congested link with a shifted-exponential delay (hard minimum latency).
  std::vector<core::ServerSpec> servers = {
      {m1, dist::make_model_distribution(dist::ModelFamily::kPareto2, 2.0),
       nullptr},
      {m2, dist::make_model_distribution(dist::ModelFamily::kPareto2, 1.0),
       nullptr}};
  const core::DcsScenario farm = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(dist::ModelFamily::kShiftedExponential,
                                    4.0),
      dist::Exponential::with_mean(0.2));

  // Both policies come from the same exhaustive 2-server search (one-way
  // offload line, as in problem (3)), devised through the DecisionPolicy
  // interface on the fresh t = 0 state — only the engine's objective
  // differs.
  ThreadPool& pool = ThreadPool::global();
  const policy::TwoServerSearchPolicy search(
      {.markovian = false, .max_l21 = 0});
  const auto devise = [&](policy::Objective objective, double deadline) {
    policy::DecisionEngineOptions engine_opts;
    engine_opts.objective = objective;
    engine_opts.deadline = deadline;
    engine_opts.pool = &pool;
    return policy::decide_from_state(
        search, farm, core::SystemState::initial(farm, core::DtrPolicy(2)),
        engine_opts);
  };

  // Policy A: minimize the average execution time.
  const auto mean_eval = policy::make_age_dependent_evaluator(
      farm, policy::Objective::kMeanExecutionTime);
  const core::DtrPolicy mean_policy =
      devise(policy::Objective::kMeanExecutionTime, 0.0);
  const double mean_value = mean_eval(mean_policy);

  const double deadline = cli.get_double("deadline") * mean_value;

  // Policy B: maximize P{T < deadline}.
  const auto qos_eval = policy::make_age_dependent_evaluator(
      farm, policy::Objective::kQos, deadline);
  const core::DtrPolicy qos_policy = devise(policy::Objective::kQos, deadline);

  std::cout << "Deadline: " << format_double(deadline) << " s ("
            << cli.get_double("deadline") << "x the optimal mean "
            << format_double(mean_value) << " s)\n\n";
  Table table({"policy", "L12", "L21", "mean exec time (s)",
               "P{T < deadline}"});
  table.begin_row()
      .cell("mean-optimal")
      .cell(static_cast<int>(mean_policy(0, 1)))
      .cell(static_cast<int>(mean_policy(1, 0)))
      .cell(mean_value)
      .cell(qos_eval(mean_policy));
  table.begin_row()
      .cell("QoS-optimal")
      .cell(static_cast<int>(qos_policy(0, 1)))
      .cell(static_cast<int>(qos_policy(1, 0)))
      .cell(mean_eval(qos_policy))
      .cell(qos_eval(qos_policy));
  table.print(std::cout);
  std::cout << "\nThe QoS-optimal policy sacrifices a little average speed "
               "to raise the\nprobability of making the deadline — the "
               "trade-off behind problem (4).\n";
  return 0;
}
