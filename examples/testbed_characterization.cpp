// The Section III-B workflow end to end: measure the random times of a
// (simulated) Internet-connected testbed, characterize each by fitting
// candidate pdfs and selecting on histogram squared error, devise the
// reliability-optimal reallocation from the fitted laws, and validate the
// prediction by simulation "experiments" on the ground-truth testbed.
//
//   ./testbed_characterization [--samples=3000 --experiment-reps=500]
#include <iostream>

#include "agedtr/core/convolution.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/testbed/testbed.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

namespace {

void report(const std::string& label,
            const testbed::Characterization& c) {
  const auto& best = c.selection.best();
  std::cout << "  " << label << ": best fit " << best.distribution->describe()
            << "  (squared error " << format_double(best.squared_error)
            << ", KS " << format_double(best.ks) << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("testbed_characterization: the Fig. 4 pipeline");
  cli.add_option("samples", "3000", "measurements per random time");
  cli.add_option("experiment-reps", "500",
                 "testbed experiment replications (paper: 500)");
  cli.add_option("seed", "2010", "measurement seed");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));

  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "1. Characterizing the testbed from " << samples
            << " measurements per random time...\n";
  const testbed::CharacterizedTestbed ct =
      testbed::characterize_testbed(samples, seed);
  report("service time, server 1 ", ct.service1);
  report("service time, server 2 ", ct.service2);
  report("task transfer 1 -> 2   ", ct.transfer12);
  report("task transfer 2 -> 1   ", ct.transfer21);
  report("FN transfer 1 -> 2     ", ct.fn12);
  report("FN transfer 2 -> 1     ", ct.fn21);

  std::cout << "\n2. Devising the reliability-optimal policy from the "
               "fitted laws...\n";
  const auto evaluator = policy::make_age_dependent_evaluator(
      ct.fitted, policy::Objective::kReliability);
  policy::DecisionEngineOptions engine_opts;
  engine_opts.objective = policy::Objective::kReliability;
  engine_opts.pool = &ThreadPool::global();
  const core::DtrPolicy policy = policy::decide_from_state(
      policy::TwoServerSearchPolicy(), ct.fitted,
      core::SystemState::initial(ct.fitted, core::DtrPolicy(2)), engine_opts);
  const double predicted = evaluator(policy);
  std::cout << "  optimal policy: L12=" << policy(0, 1)
            << ", L21=" << policy(1, 0) << "  predicted reliability "
            << format_double(predicted) << "\n";

  std::cout << "\n3. Validating against the (ground-truth) testbed...\n";
  const core::DcsScenario truth = testbed::make_testbed_scenario();
  const auto experiment = testbed::run_experiment(
      truth, policy,
      static_cast<std::size_t>(cli.get_int("experiment-reps")), seed + 1);
  const core::ConvolutionSolver truth_solver;
  const double truth_reliability =
      truth_solver.reliability(core::apply_policy(truth, policy));

  Table table({"quantity", "reliability"});
  table.begin_row().cell("prediction (fitted laws)").cell(predicted);
  table.begin_row().cell("exact (ground-truth laws)").cell(truth_reliability);
  table.begin_row()
      .cell("experiment (" + cli.get_string("experiment-reps") + " runs)")
      .cell(experiment.center);
  table.print(std::cout);
  std::cout << "\nExperiment 95% CI: [" << format_double(experiment.lower)
            << ", " << format_double(experiment.upper) << "]\n";
  return 0;
}
