// Fault tolerance walkthrough: (1) evaluate a policy through the
// graceful-degradation fallback chain and watch the tiers decline under
// ever-tighter budgets; (2) inject network loss, common-cause shocks, and
// transient stalls into the simulator and watch the reliability of the
// paper-optimal policy erode as the fault intensity grows.
//
//   ./fault_tolerance [--reps=2000 --l12=40 --l21=0]
#include <iostream>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/resilient_eval.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

int main(int argc, char** argv) {
  CliParser cli(
      "fault tolerance: the solver fallback chain and the fault-injection "
      "simulator on the paper's two-server system");
  cli.add_option("reps", "2000", "Monte-Carlo replications per estimate");
  cli.add_option("l12", "40", "tasks reallocated from server 1 to 2");
  cli.add_option("l21", "0", "tasks reallocated from server 2 to 1");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
  const int l12 = static_cast<int>(cli.get_int("l12"));
  const int l21 = static_cast<int>(cli.get_int("l21"));

  // The paper's severe-delay two-server system (Section III-A1) with
  // exponentially failing servers.
  std::vector<core::ServerSpec> servers = {
      {100, dist::Exponential::with_mean(2.0),
       dist::Exponential::with_mean(1000.0)},
      {50, dist::Exponential::with_mean(1.0),
       dist::Exponential::with_mean(500.0)}};
  core::DcsScenario scenario = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(9.0),
      dist::Exponential::with_mean(1.0));
  scenario.transfer_scaling = core::TransferScaling::kPerTask;
  const core::DtrPolicy policy = policy::make_two_server_policy(l12, l21);

  // --- 1. The fallback chain under three budget regimes. -----------------
  // Default budgets: the reference recursion declines (the 150-task system
  // is far past its depth budget) and the convolution tier answers.
  std::cout << "=== Fallback chain ===\n";
  {
    policy::ResilientEvaluator eval(scenario, {});
    std::cout << "default budgets      : "
              << eval.evaluate(policy).describe() << "\n";
  }
  // Starve the convolution tier too (1 microsecond of wall clock): the
  // chain degrades to the Markovian baseline.
  {
    policy::ResilientEvalOptions options;
    options.convolution.budget.max_seconds = 1e-6;
    policy::ResilientEvaluator eval(scenario, options);
    std::cout << "starved convolution  : "
              << eval.evaluate(policy).describe() << "\n";
  }
  // Cap the Markovian state space at 1: only Monte-Carlo remains.
  {
    policy::ResilientEvalOptions options;
    options.convolution.budget.max_seconds = 1e-6;
    options.markovian_max_states = 1;
    options.monte_carlo.replications = reps;
    policy::ResilientEvaluator eval(scenario, options);
    const policy::EvalOutcome outcome = eval.evaluate(policy);
    std::cout << "capped markovian     : " << outcome.describe() << "\n";
    std::cout << "last-resort estimate : R-inf = "
              << format_double(outcome.value, 4) << "\n\n";
  }

  // --- 2. Fault injection: reliability under growing fault intensity. ----
  sim::FaultPlan base;
  base.group_channel.drop_probability = 0.05;
  base.group_channel.retransmit_timeout = 10.0;
  base.group_channel.max_retries = 5;
  base.fn_channel.drop_probability = 0.10;
  base.fn_channel.retransmit_timeout = 1.0;
  base.shock_rate = 1.0 / 1500.0;
  base.shock_kill_probability = 0.3;
  base.stall_rate = 1.0 / 400.0;
  base.stall_duration = dist::Exponential::with_mean(30.0);

  std::cout << "=== Fault injection (policy L12=" << l12 << ", L21=" << l21
            << ", " << reps << " replications) ===\n";
  Table table({"intensity", "R-inf", "95% CI half-width", "retransmissions",
               "shock failures", "stalls"});
  for (const double intensity : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    sim::MonteCarloOptions mc;
    mc.replications = reps;
    mc.simulator.faults = scale_fault_plan(base, intensity);
    const sim::MonteCarloMetrics metrics =
        sim::run_monte_carlo(scenario, policy, mc);
    table.begin_row()
        .cell(intensity, 2)
        .cell(metrics.reliability.center)
        .cell(metrics.reliability.half_width())
        .cell(static_cast<long long>(
            metrics.fault_totals.group_retransmissions +
            metrics.fault_totals.fn_retransmissions))
        .cell(static_cast<long long>(metrics.fault_totals.shock_failures))
        .cell(static_cast<long long>(metrics.fault_totals.stalls));
  }
  table.print(std::cout);
  std::cout << "At intensity 0 the injectors are inert and the simulator "
               "reproduces the seed model exactly.\n";
  return 0;
}
