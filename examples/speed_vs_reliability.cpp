// The execution-time / reliability trade-off (the paper's Section III-A
// closing proposal, implemented in policy::tradeoff_analysis): a batch job
// can run on a fast-but-flaky spot node or a slow-but-stable reserved node.
// This example prints the Pareto frontier of (T-bar, R-inf) over all
// reallocation policies and three operating points on it: the fastest, the
// most dependable, and a balanced compromise.
//
//   ./speed_vs_reliability [--step=2 --budget=1.15]
#include <iostream>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/tradeoff.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"

using namespace agedtr;

int main(int argc, char** argv) {
  CliParser cli("speed_vs_reliability: Pareto frontier of DTR policies");
  cli.add_option("step", "2", "policy grid step");
  cli.add_option("budget", "1.15",
                 "time budget as a multiple of the fastest policy");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));

  // Reserved node: slow (2 s/task), dependable (MTTF 600 s). Spot node:
  // 4x faster but with an MTTF of 40 s. The batch starts on the reserved
  // node; transfers cost ~0.5 s/task equivalent.
  std::vector<core::ServerSpec> servers = {
      {30, dist::make_model_distribution(dist::ModelFamily::kPareto1, 2.0),
       dist::Exponential::with_mean(600.0)},
      {0, dist::make_model_distribution(dist::ModelFamily::kPareto1, 0.5),
       dist::Exponential::with_mean(40.0)}};
  core::DcsScenario cluster = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(dist::ModelFamily::kPareto1, 0.5),
      dist::Exponential::with_mean(0.2));
  cluster.transfer_scaling = core::TransferScaling::kPerTask;

  const auto analysis = policy::tradeoff_analysis(
      cluster, static_cast<int>(cli.get_int("step")), {},
      &ThreadPool::global());

  std::cout << "Pareto frontier (" << analysis.frontier.size() << " of "
            << analysis.points.size() << " policies are non-dominated):\n";
  Table frontier({"L12", "L21", "mean exec time (s)", "reliability"});
  for (const auto& p : analysis.frontier) {
    frontier.begin_row()
        .cell(p.l12)
        .cell(p.l21)
        .cell(p.mean_execution_time)
        .cell(p.reliability);
  }
  frontier.print(std::cout);

  const auto& fastest = analysis.frontier.front();
  const auto& safest = analysis.frontier.back();
  const auto& budgeted =
      analysis.best_within_time_budget(cli.get_double("budget"));
  const auto& balanced = analysis.weighted_compromise(0.5);
  Table choices({"operating point", "L12", "L21", "mean exec time (s)",
                 "reliability"});
  const auto add = [&](const std::string& name,
                       const policy::TradeoffPoint& p) {
    choices.begin_row()
        .cell(name)
        .cell(p.l12)
        .cell(p.l21)
        .cell(p.mean_execution_time)
        .cell(p.reliability);
  };
  add("fastest", fastest);
  add("within " + cli.get_string("budget") + "x time budget", budgeted);
  add("balanced compromise (lambda = 0.5)", balanced);
  add("most dependable", safest);
  std::cout << '\n';
  choices.print(std::cout);
  std::cout << "\nSpeed exploits the fragile fast node; dependability avoids "
               "it — the conflict\nthe paper's Section III-A describes. The "
               "frontier makes the price of each\nnine of reliability "
               "explicit.\n";
  return 0;
}
