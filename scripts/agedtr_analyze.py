#!/usr/bin/env python3
"""agedtr-analyze: graph-aware static analysis over the src/ tree.

Where scripts/agedtr_lint.py checks lines, this tool checks *graphs*: it
extracts whole-program structure (the `#include` graph, the lock-acquisition
nesting graph) and verifies it against the checked-in architecture manifest
`docs/layering.toml`. Three analysis families:

  layering            every `#include "agedtr/<mod>/..."` edge between two
                      modules must be declared in the manifest's `deps`
                      allowlist; the declared module graph and the observed
                      file-level header graph must both be acyclic. Fails
                      with rule `layering` (undeclared edge) or
                      `layering-cycle`.
  lock-order          every agedtr::Mutex acquisition site (MutexLock RAII,
                      manual lock()/unlock(), AGEDTR_REQUIRES entry
                      capabilities) is extracted with the set of locks held
                      around it, plus a conservative same-module callee
                      summary (a call made while holding L inherits the
                      callee's transitive acquisitions). The resulting
                      global lock-order graph must be cycle-free (rule
                      `lock-order`). The runtime twin of this pass is the
                      AGEDTR_LOCK_ORDER_CHECK validator in
                      util/lock_order.hpp, which cross-validates the static
                      graph under ctest.
  determinism         dataflow-lite determinism rules:
                        unordered-iter   iteration over std::unordered_map /
                                         unordered_set whose body feeds
                                         accumulation, output or RNG draws
                                         (sort first, or use std::map)
                        nondet-order     __DATE__/__TIME__/__TIMESTAMP__,
                                         and pointer-keyed ordered
                                         containers (iteration order =
                                         address order)
                        noexcept-move    the hot value types registered in
                                         the manifest must declare a
                                         `noexcept` move constructor or pin
                                         std::is_nothrow_move_constructible
                                         in their header

Suppression uses the same mechanism as agedtr-lint: a comment
`agedtr-lint: allow(<rule>)` on the violating line or the line above, with
a justification in the surrounding comment (docs/STATIC_ANALYSIS.md).

Artifacts: `--artifacts DIR` (default build/analysis) writes
include_graph.{dot,json} and lock_order.{dot,json} for CI upload and
offline inspection. `--render-dag FILE.svg` renders the manifest's module
DAG to a checked-in figure (docs/module_dag.svg).

Usage:
  scripts/agedtr_analyze.py [--manifest FILE] [--src DIR]
                            [--artifacts DIR] [--jobs N] [--stats]
  scripts/agedtr_analyze.py --self-test
  scripts/agedtr_analyze.py --render-dag docs/module_dag.svg
Exit status: 0 clean, 1 violations found, 2 internal/usage error.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import sys
import tempfile
import time
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from agedtr_lint import (  # noqa: E402
    REPO_ROOT,
    SOURCE_EXTENSIONS,
    Violation,
    allowed_rules_for_line,
    strip_comments_and_strings,
)

RULE_IDS = ["layering", "layering-cycle", "lock-order", "unordered-iter",
            "nondet-order", "noexcept-move"]

# Wrapper internals: the annotated Mutex and the runtime validator acquire
# raw primitives by design and would self-report.
LOCK_SCAN_EXEMPT = ("util/thread_annotations.hpp", "util/lock_order.hpp",
                    "util/lock_order.cpp")


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

class Manifest:
    def __init__(self, data: dict, path: str):
        self.path = path
        self.modules: dict[str, dict] = data.get("modules", {})
        self.deps: dict[str, set[str]] = {
            name: set(mod.get("deps", [])) for name, mod in self.modules.items()
        }
        self.layers: dict[str, int] = {
            name: int(mod.get("layer", 0)) for name, mod in self.modules.items()
        }
        self.noexcept_types: list[dict] = data.get("noexcept_move_types", [])


def load_manifest(path: str) -> Manifest:
    with open(path, "rb") as f:
        return Manifest(tomllib.load(f), path)


# ---------------------------------------------------------------------------
# Per-file scan (runs in worker processes under --jobs)
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"agedtr/(\w+)/([\w./]+)"')

MUTEX_DECL_RE = re.compile(
    r"(?:^|[\s;{}])(?:mutable\s+|static\s+)*(?:agedtr::)?Mutex\s+(\w+)\s*;")

# Structural token stream for the scope/lock scanner. Alternation order
# matters: the RAII acquisition consumes its span before the generic call
# pattern can see the inner parens.
TOKEN_RE = re.compile(
    r"(?P<brace>[{}])"
    r"|(?P<semi>;)"
    r"|(?P<raii>\bMutexLock\s+\w+\s*\(\s*&\s*([^);]+?)\s*\))"
    r"|(?P<manual>([\w.\->]+?)\s*\.\s*(lock|unlock)\s*\(\s*\))"
    r"|(?P<call>(?<![.\w>:])([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\()"
)

CALL_IGNORE = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "decltype", "alignof", "noexcept", "assert", "defined",
    "static_assert", "alignas", "typeid", "co_await", "co_return",
}

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else"}

CLASS_NAME_RE = re.compile(
    r"\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*|[A-Z_][A-Z0-9_]*\s*(?:\([^)]*\)\s*)?)*([A-Za-z_]\w*)")
FUNC_NAME_RE = re.compile(r"([A-Za-z_~][\w:~]*)\s*\(")
REQUIRES_RE = re.compile(r"AGEDTR_REQUIRES\s*\(([^)]*)\)")
LAMBDA_TAIL_RE = re.compile(
    r"\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:noexcept\s*)?"
    r"(?:->\s*[\w:<>&*\s]+)?$")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\b[^;()]*?\s(\w+)\s*"
    r"(?:;|=|\{|AGEDTR_GUARDED_BY)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;)]+)\)")
ITER_BEGIN_RE = re.compile(r"=\s*([\w.\->]+)\s*\.\s*(?:begin|cbegin)\s*\(")
# Tokens that make an unordered iteration order-sensitive: the body
# accumulates, emits, or draws randomness.
ORDER_SENSITIVE_RE = re.compile(
    r"(\+=|-=|\*=|/=|<<|\bpush_back\b|\bemplace_back\b|\binsert\b|"
    r"\bappend\b|\.add\(|\bfetch_add\b|\bsample\b|\brng\b|\buniform\b)")

DATE_TIME_RE = re.compile(r"__(?:DATE|TIME|TIMESTAMP)__")
ORDERED_CONTAINER_RE = re.compile(r"std::(map|set|multimap|multiset)\s*<")


def pointer_keyed_spans(line: str):
    """Yields (start, container) for ordered containers on `line` whose key
    type contains a raw pointer — address-ordered iteration."""
    for m in ORDERED_CONTAINER_RE.finditer(line):
        depth = 0
        key_end = len(line)
        i = m.end() - 1  # at '<'
        while i < len(line):
            c = line[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    key_end = i
                    break
            elif c == "," and depth == 1 and m.group(1) in ("map", "multimap"):
                key_end = i
                break
            i += 1
        key = line[m.end(): key_end]
        if "*" in key:
            yield m.start(), m.group(1)


def scan_file(args: tuple[str, str]) -> dict:
    """Extracts the per-file facts every global pass consumes. Pure function
    of the file contents; safe to run in a worker process."""
    path, module = args
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    while len(stripped_lines) < len(raw_lines):
        stripped_lines.append("")
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")

    out = {
        "path": path, "rel": rel, "module": module,
        # [(lineno, target_module, header, allowed_rule_set)]
        "includes": [],
        # [(class_or_None, member_name, lineno)]
        "mutex_decls": [],
        # qualified func name -> [lock exprs from AGEDTR_REQUIRES]
        "requires": {},
        # [(kind, func, held_exprs, target, lineno, allowed_rules)]
        #   kind 'acq': target = lock expr; kind 'call': target = callee name
        "events": [],
        # [(rule, lineno, message)] pre-suppression determinism findings
        "findings": [],
    }

    for lineno, line in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            out["includes"].append(
                (lineno, m.group(1), f"agedtr/{m.group(1)}/{m.group(2)}",
                 sorted(allowed_rules_for_line(raw_lines, lineno))))

    scan_locks = not rel.endswith(LOCK_SCAN_EXEMPT)
    if scan_locks:
        _scan_scopes(stripped, stripped_lines, raw_lines, out)
    _scan_determinism(stripped_lines, raw_lines, out)
    return out


def _scan_scopes(stripped: str, stripped_lines: list[str],
                 raw_lines: list[str], out: dict) -> None:
    """Single forward pass tracking scopes (namespace/class/function/lambda),
    RAII and manual lock acquisitions with the locks held around them, and
    same-frame function calls for the callee summaries."""
    # Scope stack entries: dict(kind, name, class_name, barrier)
    scopes: list[dict] = []
    held: list[dict] = []  # {expr, depth}  (depth = len(scopes) at acquire)
    pre = []  # text since the last structural token, for classification

    def innermost(kind_set):
        for s in reversed(scopes):
            if s["kind"] in kind_set:
                return s
        return None

    def current_func():
        s = innermost({"func", "lambda"})
        return s["name"] if s and s["kind"] == "func" else None

    def effective_held():
        # Locks acquired inside the innermost frame barrier only: a lambda
        # or nested class body executes in a different frame, so locks held
        # where it is *defined* impose no acquisition order on its body.
        barrier = 0
        for i, s in enumerate(scopes):
            if s["barrier"]:
                barrier = i + 1
        return [h["expr"] for h in held if h["depth"] >= barrier]

    def classify(pre_text: str) -> dict:
        t = pre_text.strip()
        if re.search(r"\benum\b", t):
            return {"kind": "other", "name": None, "barrier": False}
        if re.search(r"\bnamespace\b", t):
            return {"kind": "ns", "name": None, "barrier": False}
        cm = None
        for cm_ in CLASS_NAME_RE.finditer(t):
            cm = cm_
        if cm:
            return {"kind": "class", "name": cm.group(1), "barrier": True}
        if t.endswith(("=", "(", ",", "&&", "||", "return")):
            return {"kind": "other", "name": None, "barrier": False}
        if LAMBDA_TAIL_RE.search(t):
            return {"kind": "lambda", "name": None, "barrier": True}
        fm = FUNC_NAME_RE.search(t)
        if fm:
            name = fm.group(1)
            if name in CONTROL_KEYWORDS:
                return {"kind": "control", "name": None, "barrier": False}
            cls = innermost({"class"})
            qual = name if "::" in name or cls is None \
                else f"{cls['name']}::{name}"
            reqs = [r.strip() for rm in REQUIRES_RE.finditer(t)
                    for r in rm.group(1).split(",") if r.strip()]
            return {"kind": "func", "name": qual, "barrier": True,
                    "requires": reqs}
        return {"kind": "other", "name": None, "barrier": False}

    lineno = 0
    for line in stripped_lines:
        lineno += 1
        pos = 0
        for tok in TOKEN_RE.finditer(line):
            pre.append(line[pos:tok.start()])
            pos = tok.end()
            if tok.group("brace") == "{":
                scope = classify("".join(pre)[-400:])
                if scope["kind"] == "func":
                    out["requires"].setdefault(scope["name"], [])
                    for r in scope.get("requires", []):
                        out["requires"][scope["name"]].append(r)
                scopes.append(scope)
                pre = []
            elif tok.group("brace") == "}":
                if scopes:
                    scopes.pop()
                depth = len(scopes)
                held[:] = [h for h in held if h["depth"] <= depth]
                pre = []
            elif tok.group("semi"):
                pre = []
            elif tok.group("raii"):
                expr = tok.group(4)
                allows = sorted(allowed_rules_for_line(raw_lines, lineno))
                out["events"].append(("acq", current_func(), effective_held(),
                                      expr, lineno, allows))
                held.append({"expr": expr, "depth": len(scopes)})
                pre.append(" ")
            elif tok.group("manual"):
                expr, op = tok.group(6), tok.group(7)
                if op == "lock":
                    allows = sorted(allowed_rules_for_line(raw_lines, lineno))
                    out["events"].append(
                        ("acq", current_func(), effective_held(), expr,
                         lineno, allows))
                    held.append({"expr": expr, "depth": len(scopes)})
                else:
                    for i in range(len(held) - 1, -1, -1):
                        if held[i]["expr"] == expr:
                            del held[i]
                            break
                pre.append(" ")
            elif tok.group("call"):
                name = tok.group(9)
                if (name in CALL_IGNORE or name.startswith("AGEDTR_")
                        or name.startswith("std::")):
                    pre.append(tok.group(0))
                    continue
                func = current_func()
                if func is not None:
                    out["events"].append(("call", func, effective_held(),
                                          name, lineno, []))
                pre.append(tok.group(0))
        pre.append(line[pos:] + "\n")
        if len(pre) > 64:  # keep the classification window bounded
            pre = ["".join(pre)[-1200:]]

    # Mutex member/global declarations with their enclosing class. Re-walk
    # cheaply: a declaration is a line match plus the class scope open at
    # that line, recovered from a second pass of the brace structure.
    depth_classes: list[tuple[int, str]] = []
    depth = 0
    pre2: list[str] = []
    lineno = 0
    for line in stripped_lines:
        lineno += 1
        dm = MUTEX_DECL_RE.search(line)
        if dm:
            cls = depth_classes[-1][1] if depth_classes else None
            out["mutex_decls"].append((cls, dm.group(1), lineno))
        for ch_m in re.finditer(r"[{}]|;", line):
            ch = ch_m.group(0)
            if ch == "{":
                t = "".join(pre2)[-400:]
                cm = None
                for cm_ in CLASS_NAME_RE.finditer(t):
                    cm = cm_
                if cm and not re.search(r"\benum\b", t):
                    depth_classes.append((depth, cm.group(1)))
                depth += 1
                pre2 = []
            elif ch == "}":
                depth -= 1
                if depth_classes and depth_classes[-1][0] >= depth:
                    depth_classes.pop()
                pre2 = []
            else:
                pre2 = []
            pre2.append("")
        pre2.append(line + "\n")
        if len(pre2) > 64:
            pre2 = ["".join(pre2)[-1200:]]


def _scan_determinism(stripped_lines: list[str], raw_lines: list[str],
                      out: dict) -> None:
    body = "\n".join(stripped_lines)
    unordered_vars = set(UNORDERED_DECL_RE.findall(body))

    for lineno, line in enumerate(stripped_lines, start=1):
        if DATE_TIME_RE.search(line):
            out["findings"].append(
                ("nondet-order", lineno,
                 "__DATE__/__TIME__ embeds the build instant; output must "
                 "be a pure function of inputs"))
        for _, container in pointer_keyed_spans(line):
            out["findings"].append(
                ("nondet-order", lineno,
                 f"pointer-keyed std::{container}: iteration order is "
                 "address order, which varies run to run; key by a stable "
                 "identity or never iterate"))

        target = None
        fm = RANGE_FOR_RE.search(line)
        if fm:
            target = fm.group(2).strip()
        else:
            im = ITER_BEGIN_RE.search(line)
            if im:
                target = im.group(1).strip()
        if target is None:
            continue
        leaf = target.split(".")[-1].split("->")[-1].strip("() ")
        if leaf not in unordered_vars and "unordered_" not in target:
            continue
        # Dataflow-lite: flag only when the loop body is order-sensitive —
        # it accumulates, emits output, or consumes randomness.
        window = "\n".join(stripped_lines[lineno - 1: lineno + 24])
        brace = window.find("{")
        if brace == -1:
            continue
        depth, end = 0, len(window)
        for i in range(brace, len(window)):
            if window[i] == "{":
                depth += 1
            elif window[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if ORDER_SENSITIVE_RE.search(window[brace:end]):
            out["findings"].append(
                ("unordered-iter", lineno,
                 f"iteration over unordered container `{leaf}` feeds "
                 "accumulation/output; sort the keys first or use an "
                 "ordered container"))


# ---------------------------------------------------------------------------
# Global passes
# ---------------------------------------------------------------------------

def collect_sources(src_root: str) -> list[tuple[str, str]]:
    files = []
    for root, _dirs, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith(SOURCE_EXTENSIONS):
                path = os.path.join(root, name)
                rel = os.path.relpath(path, src_root).replace(os.sep, "/")
                module = rel.split("/", 1)[0]
                files.append((os.path.abspath(path), module))
    return sorted(files)


def find_cycle(adj: dict, nodes: list) -> list | None:
    """Returns one cycle as [n0, n1, ..., n0], or None if `adj` is acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    parent: dict = {}
    for start in nodes:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(adj.get(start, ()))))]
        color[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if color[nxt] == GREY:
                    cycle = [nxt]
                    cur = node
                    while cur != nxt:
                        cycle.append(cur)
                        cur = parent[cur]
                    cycle.append(nxt)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
        # loop continues with next start
    return None


def pass_layering(scans: list[dict], manifest: Manifest,
                  src_root: str) -> tuple[list[Violation], dict]:
    violations: list[Violation] = []
    module_edges: dict[tuple[str, str], list] = {}
    file_adj: dict[str, set[str]] = {}
    rel_by_header: dict[str, str] = {}

    def rel_to_src(scan):
        return os.path.relpath(scan["path"], src_root).replace(os.sep, "/")

    for scan in scans:
        m = re.match(r"\w+/include/(agedtr/.+)$", rel_to_src(scan))
        if m:
            rel_by_header[m.group(1)] = rel_to_src(scan)

    for scan in scans:
        mod = scan["module"]
        if mod not in manifest.modules:
            violations.append(Violation(
                scan["path"], 1, "layering",
                f"module `{mod}` is not declared in {os.path.relpath(manifest.path, REPO_ROOT)}"))
            continue
        for lineno, target, header, allows in scan["includes"]:
            resolved = rel_by_header.get(header)
            if resolved and scan["rel"].endswith((".hpp", ".h")):
                file_adj.setdefault(rel_to_src(scan), set()).add(resolved)
            if target == mod:
                continue
            module_edges.setdefault((mod, target), []).append(
                (scan["rel"], lineno, header))
            if target not in manifest.modules:
                if "layering" not in allows:
                    violations.append(Violation(
                        scan["path"], lineno, "layering",
                        f"include of unknown module `{target}` "
                        f"(not in the manifest)"))
            elif target not in manifest.deps.get(mod, set()):
                if "layering" not in allows:
                    violations.append(Violation(
                        scan["path"], lineno, "layering",
                        f"undeclared cross-module edge {mod} -> {target}: "
                        f"`{header}` (declared deps of {mod}: "
                        f"{sorted(manifest.deps.get(mod, set())) or 'none'})"))

    # The declared graph must be a DAG — otherwise the allowlist itself
    # licenses a cycle.
    declared_cycle = find_cycle(
        {m: manifest.deps.get(m, set()) for m in manifest.modules},
        sorted(manifest.modules))
    if declared_cycle:
        violations.append(Violation(
            manifest.path, 1, "layering-cycle",
            "declared module graph has a cycle: "
            + " -> ".join(declared_cycle)))

    # ... and so must the observed module graph (a suppressed edge still
    # participates: allow() documents an edge, it cannot license a cycle).
    observed_adj: dict[str, set[str]] = {}
    for (a, b), _sites in module_edges.items():
        observed_adj.setdefault(a, set()).add(b)
    observed_cycle = find_cycle(observed_adj, sorted(
        set(observed_adj) | {t for ts in observed_adj.values() for t in ts}))
    if observed_cycle:
        sites = []
        for a, b in zip(observed_cycle, observed_cycle[1:]):
            rel, lineno, _ = module_edges[(a, b)][0]
            sites.append(f"{a}->{b} at {rel}:{lineno}")
        violations.append(Violation(
            os.path.join(REPO_ROOT, "src"), 1, "layering-cycle",
            "observed include graph has a module cycle: "
            + " -> ".join(observed_cycle) + " (" + "; ".join(sites) + ")"))

    # File-level header cycles (an #include loop between headers).
    header_cycle = find_cycle(file_adj, sorted(
        set(file_adj) | {t for ts in file_adj.values() for t in ts}))
    if header_cycle:
        violations.append(Violation(
            os.path.join(REPO_ROOT, header_cycle[0]), 1, "layering-cycle",
            "header include cycle: " + " -> ".join(header_cycle)))

    artifact = {
        "modules": {
            m: {"layer": manifest.layers.get(m, 0),
                "deps_declared": sorted(manifest.deps.get(m, set()))}
            for m in sorted(manifest.modules)
        },
        "edges": [
            {"from": a, "to": b, "count": len(sites),
             "declared": b in manifest.deps.get(a, set()),
             "sites": [f"{rel}:{line}" for rel, line, _ in sorted(sites)[:8]]}
            for (a, b), sites in sorted(module_edges.items())
        ],
        "files": len(scans),
    }
    return violations, artifact


def resolve_lock(expr: str, func: str | None, scan: dict,
                 decls: list[dict]) -> str:
    """Maps a lock expression at a use site to a stable lock identity.
    Preference order: a member of the current function's class, a
    declaration in the same file, a unique declaration in the same module,
    a unique declaration globally. Unresolvable names get a file-local
    identity — distinct real locks are never merged, so ambiguity can only
    under-approximate the graph, never fabricate a cycle."""
    name = expr.split(".")[-1].split("->")[-1].strip("&() ")
    name = name.split("::")[-1]
    candidates = [d for d in decls if d["name"] == name]
    if func and "::" in func:
        cls = func.rsplit("::", 1)[0].split("::")[-1]
        for d in candidates:
            if d["class"] == cls:
                return d["id"]
    same_file = [d for d in candidates if d["rel"] == scan["rel"]]
    if len(same_file) == 1:
        return same_file[0]["id"]
    same_module = [d for d in candidates if d["module"] == scan["module"]]
    if len(same_module) == 1:
        return same_module[0]["id"]
    if len(candidates) == 1:
        return candidates[0]["id"]
    return f"{scan['rel']}::{name}"


def pass_lock_order(scans: list[dict]) -> tuple[list[Violation], dict]:
    # Lock identities from declarations.
    decls: list[dict] = []
    for scan in scans:
        for cls, name, lineno in scan["mutex_decls"]:
            ident = f"{cls}::{name}" if cls else f"{scan['rel']}::{name}"
            decls.append({"class": cls, "name": name, "rel": scan["rel"],
                          "module": scan["module"], "id": ident,
                          "line": lineno})

    # Per-function direct acquisitions and call lists (same-module summary).
    acquired: dict[tuple[str, str], set[str]] = {}
    calls: dict[tuple[str, str], set[str]] = {}
    func_by_name: dict[str, list[tuple[str, str]]] = {}
    for scan in scans:
        for kind, func, _held, target, _lineno, _allows in scan["events"]:
            if func is None:
                continue
            key = (scan["module"], func)
            func_by_name.setdefault(func.split("::")[-1], []).append(key)
            func_by_name.setdefault(func, []).append(key)
            if kind == "acq":
                lock = resolve_lock(target, func, scan, decls)
                acquired.setdefault(key, set()).add(lock)
            else:
                calls.setdefault(key, set()).add(target)
        for func, reqs in scan["requires"].items():
            key = (scan["module"], func)
            func_by_name.setdefault(func.split("::")[-1], []).append(key)

    def resolve_callee(module: str, name: str):
        cands = sorted({k for k in func_by_name.get(name, ())
                        if k[0] == module})
        return cands[0] if len(cands) == 1 else None

    # Transitive closure of "locks this function may acquire", only across
    # unambiguous same-module calls (the conservative callee summary).
    changed = True
    rounds = 0
    while changed and rounds < 32:
        changed = False
        rounds += 1
        for key, callees in calls.items():
            mine = acquired.setdefault(key, set())
            before = len(mine)
            for callee_name in callees:
                callee = resolve_callee(key[0], callee_name)
                if callee and callee != key:
                    mine |= acquired.get(callee, set())
            if len(mine) != before:
                changed = True

    # Edges: held -> acquired, from direct sites and callee summaries.
    edges: dict[tuple[str, str], list] = {}

    def requires_of(scan, func):
        reqs = scan["requires"].get(func, []) if func else []
        return [resolve_lock(r, func, scan, decls) for r in reqs]

    for scan in scans:
        for kind, func, held_exprs, target, lineno, allows in scan["events"]:
            if "lock-order" in allows:
                continue
            held = [resolve_lock(h, func, scan, decls) for h in held_exprs]
            held += requires_of(scan, func)
            if not held:
                continue
            if kind == "acq":
                acquires = [resolve_lock(target, func, scan, decls)]
                why = "acquires"
            else:
                callee = resolve_callee(scan["module"], target)
                if callee is None:
                    continue
                acquires = sorted(acquired.get(callee, set()))
                why = f"calls {target}() which acquires"
            for h in held:
                for a in acquires:
                    if a == h:
                        continue
                    edges.setdefault((h, a), []).append(
                        (scan["rel"], lineno, why))

    adj: dict[str, set[str]] = {}
    for (a, b), _sites in edges.items():
        adj.setdefault(a, set()).add(b)
    nodes = sorted(set(adj) | {t for ts in adj.values() for t in ts})

    violations: list[Violation] = []
    cycle = find_cycle(adj, nodes)
    if cycle:
        sites = []
        for a, b in zip(cycle, cycle[1:]):
            rel, lineno, why = sorted(edges[(a, b)])[0]
            sites.append(f"{a} -> {b} ({why}) at {rel}:{lineno}")
        violations.append(Violation(
            os.path.join(REPO_ROOT, "src"), 1, "lock-order",
            "lock-order cycle: " + " -> ".join(cycle)
            + "; evidence: " + " | ".join(sites)))

    artifact = {
        "locks": sorted({d["id"] for d in decls} | set(nodes)),
        "edges": [
            {"from": a, "to": b,
             "sites": sorted({f"{rel}:{line} ({why})"
                              for rel, line, why in sites})}
            for (a, b), sites in sorted(edges.items())
        ],
    }
    return violations, artifact


def pass_determinism(scans: list[dict], manifest: Manifest,
                     src_root: str) -> list[Violation]:
    violations: list[Violation] = []
    for scan in scans:
        with open(scan["path"], encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
        for rule, lineno, message in scan["findings"]:
            if rule not in allowed_rules_for_line(raw_lines, lineno):
                violations.append(Violation(scan["path"], lineno, rule,
                                            message))

    # noexcept-move over the manifest's registered hot value types.
    root = os.path.dirname(src_root.rstrip(os.sep))
    for entry in manifest.noexcept_types:
        type_name = entry["type"]
        header = os.path.join(root, entry["header"])
        if not os.path.exists(header):
            violations.append(Violation(
                manifest.path, 1, "noexcept-move",
                f"registered type `{type_name}`: header {entry['header']} "
                "does not exist"))
            continue
        with open(header, encoding="utf-8", errors="replace") as f:
            text = f.read()
        raw_lines = text.splitlines()
        stripped = strip_comments_and_strings(text)
        declared = re.search(
            rf"\b{type_name}\s*\(\s*{type_name}\s*&&[^)]*\)\s*noexcept",
            stripped)
        pinned = re.search(
            rf"is_nothrow_move_constructible(?:_v)?\s*<\s*(?:[\w:]+::)?"
            rf"{type_name}\b", stripped)
        if declared or pinned:
            continue
        decl = re.search(rf"\b(?:class|struct)\s+{type_name}\b", stripped)
        lineno = stripped.count("\n", 0, decl.start()) + 1 if decl else 1
        if "noexcept-move" in allowed_rules_for_line(raw_lines, lineno):
            continue
        violations.append(Violation(
            header, lineno, "noexcept-move",
            f"hot value type `{type_name}` (docs/layering.toml) has no "
            "explicit noexcept move constructor and no "
            "is_nothrow_move_constructible pin; container growth may "
            "silently copy"))
    return violations


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

def write_artifacts(directory: str, include_art: dict, lock_art: dict,
                    manifest: Manifest) -> None:
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "include_graph.json"), "w") as f:
        json.dump(include_art, f, indent=2, sort_keys=True)
        f.write("\n")
    with open(os.path.join(directory, "lock_order.json"), "w") as f:
        json.dump(lock_art, f, indent=2, sort_keys=True)
        f.write("\n")

    lines = ["digraph agedtr_modules {", "  rankdir=BT;",
             '  node [shape=box, fontname="Helvetica"];']
    for m in sorted(manifest.modules):
        lines.append(f'  "{m}" [label="{m}"];')
    declared = {(a, b) for a in manifest.deps for b in manifest.deps[a]}
    observed = {(e["from"], e["to"]): e["count"]
                for e in include_art.get("edges", [])}
    for a, b in sorted(declared | set(observed)):
        count = observed.get((a, b), 0)
        if (a, b) in declared:
            style = "solid" if count else "dotted"
            lines.append(f'  "{a}" -> "{b}" [style={style}, '
                         f'label="{count or ""}"];')
        else:
            lines.append(f'  "{a}" -> "{b}" [color=red, style=dashed, '
                         f'label="undeclared:{count}"];')
    lines.append("}")
    with open(os.path.join(directory, "include_graph.dot"), "w") as f:
        f.write("\n".join(lines) + "\n")

    lines = ["digraph agedtr_lock_order {", "  rankdir=LR;",
             '  node [shape=box, fontname="Helvetica"];']
    for e in lock_art.get("edges", []):
        label = e["sites"][0].split(" (")[0] if e["sites"] else ""
        lines.append(f'  "{e["from"]}" -> "{e["to"]}" [label="{label}"];')
    lines.append("}")
    with open(os.path.join(directory, "lock_order.dot"), "w") as f:
        f.write("\n".join(lines) + "\n")


def render_dag_svg(manifest: Manifest, out_path: str) -> None:
    """Renders the declared module DAG as a layered SVG (no graphviz
    dependency — the layout is deterministic: layers bottom-up, modules
    alphabetical within a layer)."""
    layers: dict[int, list[str]] = {}
    for m in sorted(manifest.modules):
        layers.setdefault(manifest.layers.get(m, 0), []).append(m)
    layer_ids = sorted(layers)
    box_w, box_h, gap_x, gap_y, margin = 150, 46, 30, 64, 24
    width = margin * 2 + max(len(v) for v in layers.values()) * (box_w + gap_x)
    height = margin * 2 + len(layer_ids) * (box_h + gap_y) - gap_y
    pos: dict[str, tuple[float, float]] = {}
    for i, layer in enumerate(layer_ids):
        mods = layers[layer]
        row_w = len(mods) * box_w + (len(mods) - 1) * gap_x
        x0 = (width - row_w) / 2
        y = height - margin - box_h - i * (box_h + gap_y)
        for j, m in enumerate(mods):
            pos[m] = (x0 + j * (box_w + gap_x), y)

    svg = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
           f'height="{height}" viewBox="0 0 {width} {height}">',
           "<defs><marker id='arr' markerWidth='8' markerHeight='8' "
           "refX='7' refY='3' orient='auto'>"
           "<path d='M0,0 L7,3 L0,6 z' fill='#555'/></marker></defs>",
           f"<rect width='{width}' height='{height}' fill='white'/>",
           "<text x='{0}' y='16' font-family='Helvetica' font-size='13' "
           "fill='#333'>agedtr module DAG (docs/layering.toml; arrow = "
           "“may include”)</text>".format(margin)]
    for a in sorted(manifest.deps):
        for b in sorted(manifest.deps[a]):
            if a not in pos or b not in pos:
                continue
            ax, ay = pos[a][0] + box_w / 2, pos[a][1] + box_h
            bx, by = pos[b][0] + box_w / 2, pos[b][1]
            midy = (ay + by) / 2
            svg.append(
                f"<path d='M{ax:.0f},{ay:.0f} C{ax:.0f},{midy:.0f} "
                f"{bx:.0f},{midy:.0f} {bx:.0f},{by:.0f}' fill='none' "
                "stroke='#555' stroke-width='1' marker-end='url(#arr)' "
                "opacity='0.55'/>")
    for m, (x, y) in sorted(pos.items()):
        desc = manifest.modules[m].get("desc", "")
        svg.append(f"<rect x='{x:.0f}' y='{y:.0f}' width='{box_w}' "
                   f"height='{box_h}' rx='6' fill='#eef3fa' "
                   "stroke='#3a6ea5'/>")
        svg.append(f"<text x='{x + box_w / 2:.0f}' y='{y + 19:.0f}' "
                   "text-anchor='middle' font-family='Helvetica' "
                   f"font-size='13' font-weight='bold' fill='#1c3d5a'>{m}"
                   "</text>")
        short = desc if len(desc) <= 26 else desc[:24] + "…"
        svg.append(f"<text x='{x + box_w / 2:.0f}' y='{y + 35:.0f}' "
                   "text-anchor='middle' font-family='Helvetica' "
                   f"font-size='8.5' fill='#444'>{short}</text>")
    svg.append("</svg>")
    with open(out_path, "w") as f:
        f.write("\n".join(svg) + "\n")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_analysis(src_root: str, manifest: Manifest, jobs: int,
                 stats: bool, artifacts_dir: str | None):
    timings: list[tuple[str, float]] = []
    t0 = time.monotonic()
    sources = collect_sources(src_root)
    if jobs > 1 and len(sources) > 8:
        with multiprocessing.Pool(jobs) as pool:
            scans = pool.map(scan_file, sources, chunksize=8)
    else:
        scans = [scan_file(s) for s in sources]
    timings.append(("scan", time.monotonic() - t0))

    violations: list[Violation] = []
    t0 = time.monotonic()
    layer_viol, include_art = pass_layering(scans, manifest, src_root)
    violations += layer_viol
    timings.append(("layering", time.monotonic() - t0))

    t0 = time.monotonic()
    lock_viol, lock_art = pass_lock_order(scans)
    violations += lock_viol
    timings.append(("lock-order", time.monotonic() - t0))

    t0 = time.monotonic()
    violations += pass_determinism(scans, manifest, src_root)
    timings.append(("determinism", time.monotonic() - t0))

    if artifacts_dir:
        t0 = time.monotonic()
        write_artifacts(artifacts_dir, include_art, lock_art, manifest)
        timings.append(("artifacts", time.monotonic() - t0))

    if stats:
        total = sum(dt for _, dt in timings)
        print(f"agedtr-analyze --stats ({len(sources)} files, "
              f"jobs={jobs}):", file=sys.stderr)
        for name, dt in timings:
            print(f"  {name:<12} {dt * 1e3:8.1f} ms", file=sys.stderr)
        print(f"  {'total':<12} {total * 1e3:8.1f} ms", file=sys.stderr)
    return violations, len(sources)


def main_run(manifest_path: str, src_root: str, jobs: int, stats: bool,
             artifacts_dir: str | None) -> int:
    try:
        manifest = load_manifest(manifest_path)
    except (OSError, tomllib.TOMLDecodeError) as e:
        print(f"agedtr-analyze: cannot load manifest {manifest_path}: {e}",
              file=sys.stderr)
        return 2
    violations, nfiles = run_analysis(src_root, manifest, jobs, stats,
                                      artifacts_dir)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in violations:
        print(v)
    if violations:
        print(f"agedtr-analyze: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"agedtr-analyze: OK ({nfiles} files, graphs acyclic, "
          "all cross-module edges declared)", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Self-test: seed one violation per rule class in a temp tree, verify each
# is caught and each has a working allow() suppression path.
# ---------------------------------------------------------------------------

SELF_TEST_MANIFEST = """
[modules.util]
layer = 0
deps = []
[modules.sim]
layer = 1
deps = ["util"]
[modules.service]
layer = 2
deps = ["sim", "util"]

[[noexcept_move_types]]
type = "HotValue"
header = "src/util/include/agedtr/util/hot_value.hpp"

[[noexcept_move_types]]
type = "ColdValue"
header = "src/util/include/agedtr/util/cold_value.hpp"
"""

CYCLIC_MANIFEST = """
[modules.a]
layer = 0
deps = ["b"]
[modules.b]
layer = 1
deps = ["a"]
"""


def _write(root: str, rel: str, content: str) -> None:
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def _rules_of(violations: list[Violation]) -> set[str]:
    return {v.rule for v in violations}


def self_test() -> int:
    failures: list[str] = []

    def check(name: str, cond: bool):
        if not cond:
            failures.append(name)

    with tempfile.TemporaryDirectory(prefix="agedtr-analyze-") as tmp:
        manifest_path = os.path.join(tmp, "layering.toml")
        with open(manifest_path, "w") as f:
            f.write(SELF_TEST_MANIFEST)
        manifest = load_manifest(manifest_path)
        src = os.path.join(tmp, "src")

        # --- layering: a forbidden sim -> service include is rejected, and
        # an allow(layering) comment suppresses it.
        _write(tmp, "src/service/include/agedtr/service/api.hpp",
               "#pragma once\n")
        _write(tmp, "src/sim/bad_edge.cpp",
               '#include "agedtr/service/api.hpp"\n')
        _write(tmp, "src/sim/allowed_edge.cpp",
               "// transitional: agedtr-lint: allow(layering)\n"
               '#include "agedtr/service/api.hpp"\n')
        # --- lock-order: two functions acquire (a then b) and (b then a);
        # an allow(lock-order) on one inversion site breaks the cycle.
        _write(tmp, "src/util/include/agedtr/util/locks.hpp",
               "#pragma once\n"
               "class Pair {\n"
               " public:\n"
               "  void ab() {\n"
               "    MutexLock la(&a_);\n"
               "    MutexLock lb(&b_);\n"
               "  }\n"
               "  void ba() {\n"
               "    MutexLock lb(&b_);\n"
               "    MutexLock la(&a_);\n"
               "  }\n"
               " private:\n"
               "  Mutex a_;\n"
               "  Mutex b_;\n"
               "};\n")
        # --- unordered-iter: accumulation over an unordered_map fires; the
        # same loop under allow(unordered-iter) does not.
        _write(tmp, "src/util/unordered.cpp",
               "#include <unordered_map>\n"
               "double total(const std::unordered_map<int, double>& m) {\n"
               "  std::unordered_map<int, double> local = m;\n"
               "  double sum = 0.0;\n"
               "  for (const auto& kv : local) {\n"
               "    sum += kv.second;\n"
               "  }\n"
               "  return sum;\n"
               "}\n")
        # --- nondet-order: pointer-keyed ordered map and __DATE__.
        _write(tmp, "src/util/nondet.cpp",
               "#include <map>\n"
               "struct Node {};\n"
               "std::map<Node*, int> by_address;\n"
               'const char* stamp() { return __DATE__; }\n')
        # --- noexcept-move: HotValue lacks both the declaration and the
        # pin; ColdValue carries the static_assert pin and passes.
        _write(tmp, "src/util/include/agedtr/util/hot_value.hpp",
               "#pragma once\n"
               "class HotValue {\n"
               " public:\n"
               "  HotValue();\n"
               "};\n")
        _write(tmp, "src/util/include/agedtr/util/cold_value.hpp",
               "#pragma once\n"
               "#include <type_traits>\n"
               "struct ColdValue { int x; };\n"
               "static_assert(std::is_nothrow_move_constructible_v<ColdValue>);\n")

        violations, _ = run_analysis(src, manifest, jobs=1, stats=False,
                                     artifacts_dir=None)
        rules = _rules_of(violations)
        check("layering edge caught", "layering" in rules)
        check("layering allow() works",
              not any(v.rule == "layering" and "allowed_edge" in v.path
                      for v in violations))
        check("lock-order cycle caught", "lock-order" in rules)
        check("unordered-iter caught", "unordered-iter" in rules)
        check("nondet-order pointer key caught",
              any(v.rule == "nondet-order" and "pointer-keyed" in v.message
                  for v in violations))
        check("nondet-order __DATE__ caught",
              any(v.rule == "nondet-order" and "__DATE__" in v.message
                  for v in violations))
        check("noexcept-move caught",
              any(v.rule == "noexcept-move" and "HotValue" in v.message
                  for v in violations))
        check("noexcept-move pin accepted",
              not any("ColdValue" in v.message for v in violations))

        # Suppression paths for the remaining rules.
        _write(tmp, "src/util/include/agedtr/util/locks.hpp",
               "#pragma once\n"
               "class Pair {\n"
               " public:\n"
               "  void ab() {\n"
               "    MutexLock la(&a_);\n"
               "    MutexLock lb(&b_);\n"
               "  }\n"
               "  void ba() {\n"
               "    MutexLock lb(&b_);\n"
               "    // justified elsewhere: agedtr-lint: allow(lock-order)\n"
               "    MutexLock la(&a_);\n"
               "  }\n"
               " private:\n"
               "  Mutex a_;\n"
               "  Mutex b_;\n"
               "};\n")
        _write(tmp, "src/util/unordered.cpp",
               "#include <unordered_map>\n"
               "double total(const std::unordered_map<int, double>& m) {\n"
               "  std::unordered_map<int, double> local = m;\n"
               "  double sum = 0.0;\n"
               "  // order-insensitive sum: agedtr-lint: allow(unordered-iter)\n"
               "  for (const auto& kv : local) {\n"
               "    sum += kv.second;\n"
               "  }\n"
               "  return sum;\n"
               "}\n")
        _write(tmp, "src/util/nondet.cpp",
               "#include <map>\n"
               "struct Node {};\n"
               "// never iterated: agedtr-lint: allow(nondet-order)\n"
               "std::map<Node*, int> by_address;\n"
               "// build stamp is display-only: agedtr-lint: allow(nondet-order)\n"
               'const char* stamp() { return __DATE__; }\n')
        _write(tmp, "src/util/include/agedtr/util/hot_value.hpp",
               "#pragma once\n"
               "// move is nothrow by construction: agedtr-lint: allow(noexcept-move)\n"
               "class HotValue {\n"
               " public:\n"
               "  HotValue();\n"
               "};\n")
        _write(tmp, "src/sim/bad_edge.cpp",
               "// transitional: agedtr-lint: allow(layering)\n"
               '#include "agedtr/service/api.hpp"\n')
        violations, _ = run_analysis(src, manifest, jobs=1, stats=False,
                                     artifacts_dir=None)
        check("every allow() suppression path works", not violations)

        # A clean tree stays clean when a declared edge is exercised.
        _write(tmp, "src/util/include/agedtr/util/base.hpp", "#pragma once\n")
        _write(tmp, "src/sim/good_edge.cpp",
               '#include "agedtr/util/base.hpp"\n')
        violations, _ = run_analysis(src, manifest, jobs=1, stats=False,
                                     artifacts_dir=None)
        check("declared edge accepted", not violations)

        # --- layering-cycle: a manifest whose declared graph loops.
        cyc_path = os.path.join(tmp, "cyclic.toml")
        with open(cyc_path, "w") as f:
            f.write(CYCLIC_MANIFEST)
        cyc = load_manifest(cyc_path)
        src2 = os.path.join(tmp, "src2")
        _write(tmp, "src2/a/include/agedtr/a/a.hpp", "#pragma once\n")
        _write(tmp, "src2/b/b.cpp", '#include "agedtr/a/a.hpp"\n')
        violations, _ = run_analysis(src2, cyc, jobs=1, stats=False,
                                     artifacts_dir=None)
        check("layering-cycle caught", "layering-cycle" in _rules_of(violations))

        # --- header include cycle at file level.
        src3 = os.path.join(tmp, "src3")
        _write(tmp, "src3/util/include/agedtr/util/x.hpp",
               '#pragma once\n#include "agedtr/util/y.hpp"\n')
        _write(tmp, "src3/util/include/agedtr/util/y.hpp",
               '#pragma once\n#include "agedtr/util/x.hpp"\n')
        violations, _ = run_analysis(src3, manifest, jobs=1, stats=False,
                                     artifacts_dir=None)
        check("header cycle caught",
              any(v.rule == "layering-cycle" and "header include cycle"
                  in v.message for v in violations))

    if failures:
        for f_ in failures:
            print(f"agedtr-analyze self-test FAIL: {f_}", file=sys.stderr)
        return 1
    print("agedtr-analyze self-test OK (layering edge, layering cycle, "
          "header cycle, lock-order cycle, unordered-iter, nondet-order, "
          "noexcept-move + suppression paths)", file=sys.stderr)
    return 0


def main(argv: list[str]) -> int:
    args = argv[1:]
    if "--help" in args or "-h" in args:
        print(__doc__)
        return 0
    if "--self-test" in args:
        return self_test()

    manifest_path = os.path.join(REPO_ROOT, "docs", "layering.toml")
    src_root = os.path.join(REPO_ROOT, "src")
    artifacts_dir: str | None = None
    jobs = os.cpu_count() or 1
    stats = False
    render_to: str | None = None

    i = 0
    while i < len(args):
        a = args[i]
        if a == "--manifest":
            i += 1
            manifest_path = args[i]
        elif a == "--src":
            i += 1
            src_root = args[i]
        elif a == "--artifacts":
            i += 1
            artifacts_dir = args[i]
        elif a == "--jobs":
            i += 1
            jobs = max(1, int(args[i]))
        elif a == "--stats":
            stats = True
        elif a == "--render-dag":
            i += 1
            render_to = args[i]
        else:
            print(f"agedtr-analyze: unknown option {a} (see --help)",
                  file=sys.stderr)
            return 2
        i += 1

    if render_to:
        try:
            manifest = load_manifest(manifest_path)
        except (OSError, tomllib.TOMLDecodeError) as e:
            print(f"agedtr-analyze: cannot load manifest: {e}",
                  file=sys.stderr)
            return 2
        render_dag_svg(manifest, render_to)
        print(f"agedtr-analyze: wrote {render_to}", file=sys.stderr)
        return 0

    return main_run(manifest_path, src_root, jobs, stats, artifacts_dir)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
