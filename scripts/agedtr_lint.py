#!/usr/bin/env python3
"""agedtr-lint: repo-specific determinism and contract checker.

A libclang-free, regex-based linter that enforces the agedtr source
contracts that neither the compiler nor clang-tidy can check:

  entropy             no rand()/srand()/time()/std::random_device outside
                      src/random — all randomness flows through the seeded
                      agedtr RNG so runs stay reproducible.
  naked-new           no naked new/delete — ownership lives in containers
                      and smart pointers (the one sanctioned leak, the
                      never-destroyed metrics registry, carries an inline
                      allow).
  no-float            no `float` in library code — every numeric path is
                      double-precision by contract (docs/NUMERICS).
  nodiscard-factory   every `make_*` factory declared in a public header
                      is [[nodiscard]] — discarding a freshly built
                      distribution/policy is always a bug.
  require-not-throw   precondition failures at public API boundaries use
                      AGEDTR_REQUIRE (which stamps file:line), never a bare
                      `throw InvalidArgument(...)`.
  include-hygiene     src/<mod>/foo.cpp includes its own header
                      "agedtr/<mod>/foo.hpp" first, and files directly
                      include the std headers for the std symbols they
                      use (IWYU-lite; no transitive-only includes).
  mutex-annotation    no raw std::mutex / std::condition_variable /
                      std::lock_guard / std::unique_lock in src/ outside
                      util/thread_annotations.hpp — use the annotated
                      agedtr::Mutex / MutexLock / CondVar wrappers so
                      -Wthread-safety sees every lock.
  boundary-require    the registered contract surfaces (the replication /
                      slowdown API boundary: plan validation, the analytic
                      bounds, the study grid, the joint searches and the
                      fault plumbing) must call AGEDTR_REQUIRE at least
                      once — an edit that drops every precondition check
                      from one of these files is a contract regression.
  decision-policy-require
                      every DecisionPolicy::decide(const core::SystemState&,
                      ...) implementation must call AGEDTR_REQUIRE inside
                      its body — decide() is the uniform decision boundary
                      (decision_policy.hpp) and each implementation
                      validates the observed state before acting on it.
  service-boundary-require
                      every library source under src/service/ must call
                      AGEDTR_REQUIRE at least once — the service is the
                      trust boundary for untrusted client bytes (frames,
                      JSON, request schemas), so a service translation
                      unit with no precondition check left is a contract
                      regression. Binary entry points (*_main.cpp) are
                      exempt: they parse flags through CliParser and hold
                      no request-validation logic.

Suppression: append `agedtr-lint: allow(<rule>)` in a comment on the
violating line or the line directly above it. Suppressions are expected to
carry a justification in the surrounding comment (docs/STATIC_ANALYSIS.md).

Usage:
  scripts/agedtr_lint.py [paths...]   lint (default: src/)
  scripts/agedtr_lint.py --jobs N     scan files on N worker processes
  scripts/agedtr_lint.py --stats      per-rule timing summary on stderr
  scripts/agedtr_lint.py --self-test  seed one violation per rule in a
                                      temp tree and verify each is caught
Exit status: 0 clean, 1 violations found, 2 internal/usage error.

Graph-level analyses (layering DAG, static lock order, determinism
dataflow) live in the companion scripts/agedtr_analyze.py; this linter
stays line-local.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

ALLOW_RE = re.compile(r"agedtr-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals and char literals, preserving
    line structure and column positions so reported locations stay exact."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules_for_line(raw_lines: list[str], lineno: int) -> set[str]:
    """Rules suppressed for 1-based `lineno` via same-line or preceding-line
    `agedtr-lint: allow(rule[, rule])` comments."""
    rules: set[str] = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


# ---------------------------------------------------------------------------
# Rule implementations. Each takes (path, raw_lines, stripped_lines) and
# yields Violation objects; suppression is applied by the driver.
# ---------------------------------------------------------------------------

ENTROPY_PATTERNS = [
    (re.compile(r"std::random_device\b"), "std::random_device is nondeterministic"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "C rand()/srand() bypasses the seeded RNG"),
    (re.compile(r"(?<![\w:.>])(?:std::)?time\s*\("), "wall-clock time() breaks run reproducibility"),
]


def rule_entropy(path, raw_lines, stripped_lines):
    if f"{os.sep}src{os.sep}random{os.sep}" in path:
        return
    for lineno, line in enumerate(stripped_lines, start=1):
        for pattern, why in ENTROPY_PATTERNS:
            if pattern.search(line):
                yield Violation(path, lineno, "entropy",
                                f"{why}; route randomness through agedtr/random/rng.hpp")


NEW_RE = re.compile(r"(?<![\w:])new\s+[\w:<(]")
DELETE_RE = re.compile(r"(?<![\w:])delete(?:\s*\[\s*\])?\s+[\w:*(]|(?<![\w:])delete\s+\[")


def rule_naked_new(path, raw_lines, stripped_lines):
    for lineno, line in enumerate(stripped_lines, start=1):
        m = NEW_RE.search(line)
        if m:
            yield Violation(path, lineno, "naked-new",
                            "naked `new`; use std::make_unique/make_shared or a container")
            continue
        m = DELETE_RE.search(line)
        if m:
            # `= delete;` (deleted special member) is not a deallocation.
            before = line[: m.start()].rstrip()
            if before.endswith("="):
                continue
            yield Violation(path, lineno, "naked-new",
                            "naked `delete`; ownership belongs to a smart pointer or container")


FLOAT_RE = re.compile(r"(?<![\w.])float\b")


def rule_no_float(path, raw_lines, stripped_lines):
    for lineno, line in enumerate(stripped_lines, start=1):
        if FLOAT_RE.search(line):
            yield Violation(path, lineno, "no-float",
                            "`float` in library code; all numeric paths are double by contract")


FACTORY_RE = re.compile(r"(?<![.\w>])(make_\w+)\s*\(")


def rule_nodiscard_factory(path, raw_lines, stripped_lines):
    if not path.endswith((".hpp", ".h")):
        return
    for lineno, line in enumerate(stripped_lines, start=1):
        m = FACTORY_RE.search(line)
        if not m:
            continue
        name = m.group(1)
        if name in ("make_unique", "make_shared", "make_pair", "make_tuple"):
            continue
        # Skip call sites: returns, assignments, and arguments.
        prefix = line[: m.start()].rstrip()
        if prefix.endswith(("return", "=", "(", ",", "{")) or "return " in prefix:
            continue
        window = stripped_lines[max(0, lineno - 3): lineno]
        if not any("[[nodiscard]]" in w for w in window):
            yield Violation(path, lineno, "nodiscard-factory",
                            f"factory `{name}` declared without [[nodiscard]]")


THROW_INVALID_RE = re.compile(r"\bthrow\s+(?:agedtr::)?InvalidArgument\s*\(")


def rule_require_not_throw(path, raw_lines, stripped_lines):
    for lineno, line in enumerate(stripped_lines, start=1):
        if THROW_INVALID_RE.search(line):
            yield Violation(path, lineno, "require-not-throw",
                            "bare `throw InvalidArgument`; use AGEDTR_REQUIRE so the "
                            "message carries file:line")


# IWYU-lite: std symbol -> the header that must be directly included.
IWYU_MAP = {
    "vector": r"std::vector\b",
    "string": r"std::(?:string|to_string)\b",
    "optional": r"std::(?:optional|nullopt)\b",
    "functional": r"std::function\b",
    "unordered_map": r"std::unordered_map\b",
    "map": r"std::map\b",
    "deque": r"std::deque\b",
    "array": r"std::array\b",
    "memory": r"std::(?:unique_ptr|shared_ptr|weak_ptr|make_unique|make_shared)\b",
    "thread": r"std::thread\b",
    "atomic": r"std::atomic\b",
    "utility": r"std::(?:pair|move|swap|exchange)\b",
    "algorithm": r"std::(?:sort|stable_sort|any_of|all_of|none_of|clamp|min_element|max_element|find_if|count_if|fill|copy|transform|lower_bound|upper_bound)\b",
    "cstdint": r"std::u?int(?:8|16|32|64)_t\b",
    "chrono": r"std::chrono\b",
    "sstream": r"std::[io]?stringstream\b",
    "fstream": r"std::[io]?fstream\b",
    "limits": r"std::numeric_limits\b",
    "complex": r"std::complex\b",
    "future": r"std::(?:future|promise|packaged_task)\b",
    "stdexcept": r"std::(?:runtime_error|logic_error|invalid_argument|out_of_range)\b",
    "cmath": r"std::(?:sqrt|cbrt|exp|expm1|log|log1p|log2|pow|sin|cos|tan|atan2?|isfinite|isnan|isinf|floor|ceil|round|lround|fabs|fmod|hypot|erfc?|tgamma|lgamma)\b",
}
IWYU_COMPILED = {hdr: re.compile(pat) for hdr, pat in IWYU_MAP.items()}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+[<"]([^">]+)[">]')


def rule_include_hygiene(path, raw_lines, stripped_lines):
    includes = []  # (lineno, header)
    for lineno, line in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            includes.append((lineno, m.group(1)))
    included = {h for _, h in includes}

    # Own-header-first: src/<mod>/foo.cpp must include agedtr/<mod>/foo.hpp
    # before anything else, so every public header is verified self-contained.
    rel = os.path.relpath(path, REPO_ROOT)
    m = re.match(r"src/(\w+)/([\w.]+)\.cpp$", rel.replace(os.sep, "/"))
    if m and includes:
        module, stem = m.group(1), m.group(2)
        own = f"agedtr/{module}/{stem}.hpp"
        own_disk = os.path.join(REPO_ROOT, "src", module, "include", "agedtr",
                                module, stem + ".hpp")
        if os.path.exists(own_disk):
            first_line, first_header = includes[0]
            if first_header != own:
                yield Violation(path, first_line, "include-hygiene",
                                f'own header "{own}" must be the first include')

    # IWYU-lite: each std symbol used requires its header included directly.
    body = "\n".join(stripped_lines)
    for header, pattern in IWYU_COMPILED.items():
        if header in included:
            continue
        m = pattern.search(body)
        if m:
            lineno = body.count("\n", 0, m.start()) + 1
            yield Violation(path, lineno, "include-hygiene",
                            f"uses `{m.group(0)}` but does not include <{header}> "
                            "directly (transitive-only include)")


RAW_SYNC_RE = re.compile(
    r"std::(?:mutex|condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|shared_mutex|shared_lock)\b")


def rule_mutex_annotation(path, raw_lines, stripped_lines):
    if path.endswith(os.path.join("util", "thread_annotations.hpp")):
        return
    for lineno, line in enumerate(stripped_lines, start=1):
        m = RAW_SYNC_RE.search(line)
        if m:
            yield Violation(path, lineno, "mutex-annotation",
                            f"raw `{m.group(0)}`; use the annotated agedtr::Mutex/"
                            "MutexLock/CondVar (util/thread_annotations.hpp) so "
                            "-Wthread-safety sees the lock")


# Contract surfaces: source files that implement a validated public API
# boundary and therefore must contain at least one AGEDTR_REQUIRE. Matched
# on the path suffix so the rule works from any checkout location.
BOUNDARY_REQUIRE_FILES = (
    "src/core/replication.cpp",
    "src/core/replication_bounds.cpp",
    "src/sim/fault_injection.cpp",
    "src/sim/monte_carlo.cpp",
    "src/policy/allocation_search.cpp",
    "src/sim/replication_study.cpp",
    "src/policy/two_server.cpp",
    "src/policy/algorithm1.cpp",
)

AGEDTR_REQUIRE_RE = re.compile(r"\bAGEDTR_REQUIRE\s*\(")


def rule_boundary_require(path, raw_lines, stripped_lines):
    normalized = path.replace(os.sep, "/")
    if not normalized.endswith(BOUNDARY_REQUIRE_FILES):
        return
    if any(AGEDTR_REQUIRE_RE.search(line) for line in stripped_lines):
        return
    yield Violation(path, 1, "boundary-require",
                    "contract surface has no AGEDTR_REQUIRE left; validate "
                    "inputs at the API boundary (docs/FAULT_MODEL.md)")


def rule_service_boundary_require(path, raw_lines, stripped_lines):
    """src/service/ is the daemon's trust boundary: every library TU there
    validates something (frames, JSON, schemas, options) via
    AGEDTR_REQUIRE. *_main.cpp entry points are exempt (CliParser owns
    flag validation)."""
    normalized = path.replace(os.sep, "/")
    if "/src/service/" not in normalized:
        return
    if not normalized.endswith((".cpp", ".cc")):
        return
    if normalized.endswith("_main.cpp"):
        return
    if any(AGEDTR_REQUIRE_RE.search(line) for line in stripped_lines):
        return
    yield Violation(path, 1, "service-boundary-require",
                    "service trust-boundary source has no AGEDTR_REQUIRE "
                    "left; untrusted client input must be validated here "
                    "(docs/OPERATIONS.md, \"Running agedtrd\")")


DECIDE_SIG_RE = re.compile(r"::decide\s*\(")


def rule_decision_policy_require(path, raw_lines, stripped_lines):
    """DecisionPolicy::decide bodies must validate their observed state."""
    if not path.endswith((".cpp", ".cc")):
        return
    text = "\n".join(stripped_lines)
    for m in DECIDE_SIG_RE.finditer(text):
        close = text.find(")", m.end())
        if close == -1 or "SystemState" not in text[m.start():close]:
            continue
        # An implementation opens a body; a declaration hits `;` first.
        brace = -1
        for i in range(close, len(text)):
            if text[i] == ";":
                break
            if text[i] == "{":
                brace = i
                break
        if brace == -1:
            continue
        depth = 0
        end = len(text)
        for i in range(brace, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if not AGEDTR_REQUIRE_RE.search(text[brace:end]):
            lineno = text.count("\n", 0, m.start()) + 1
            yield Violation(path, lineno, "decision-policy-require",
                            "DecisionPolicy::decide implementation without "
                            "AGEDTR_REQUIRE; validate the observed state at "
                            "the decision boundary (decision_policy.hpp)")


RULES = [
    rule_entropy,
    rule_naked_new,
    rule_no_float,
    rule_nodiscard_factory,
    rule_require_not_throw,
    rule_include_hygiene,
    rule_mutex_annotation,
    rule_boundary_require,
    rule_service_boundary_require,
    rule_decision_policy_require,
]

RULE_IDS = ["entropy", "naked-new", "no-float", "nodiscard-factory",
            "require-not-throw", "include-hygiene", "mutex-annotation",
            "boundary-require", "service-boundary-require",
            "decision-policy-require"]


def lint_file(path: str,
              timings: dict[str, float] | None = None) -> list[Violation]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    stripped_lines = strip_comments_and_strings(text).splitlines()
    # Keep the two views line-aligned even for files with odd trailing state.
    while len(stripped_lines) < len(raw_lines):
        stripped_lines.append("")
    violations = []
    for rule_id, rule in zip(RULE_IDS, RULES):
        start = time.monotonic()
        for v in rule(path, raw_lines, stripped_lines):
            if v.rule not in allowed_rules_for_line(raw_lines, v.line):
                violations.append(v)
        if timings is not None:
            timings[rule_id] = (timings.get(rule_id, 0.0)
                                + time.monotonic() - start)
    return violations


def _lint_one(path: str) -> tuple[list[Violation], dict[str, float]]:
    """Per-file worker for run_lint (also runs in --jobs subprocesses)."""
    timings: dict[str, float] = {}
    return lint_file(path, timings), timings


def collect_files(paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(SOURCE_EXTENSIONS):
                files.append(os.path.abspath(p))
        else:
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.abspath(os.path.join(root, name)))
    return sorted(set(files))


def run_lint(paths: list[str], jobs: int = 1, stats: bool = False) -> int:
    files = collect_files(paths)
    if not files:
        print("agedtr-lint: no source files found under given paths",
              file=sys.stderr)
        return 2
    # Files are independent, so the scan fans out trivially; below ~8 files
    # the pool's fork cost exceeds the lint itself.
    if jobs > 1 and len(files) > 8:
        with multiprocessing.Pool(jobs) as pool:
            results = pool.map(_lint_one, files, chunksize=8)
    else:
        results = [_lint_one(path) for path in files]
    violations = [v for file_violations, _ in results for v in file_violations]
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    if stats:
        totals: dict[str, float] = {}
        for _, timings in results:
            for rule_id, dt in timings.items():
                totals[rule_id] = totals.get(rule_id, 0.0) + dt
        print(f"agedtr-lint --stats ({len(files)} files, jobs={jobs}; "
              "per-rule CPU time summed across workers):", file=sys.stderr)
        for rule_id, dt in sorted(totals.items(), key=lambda kv: -kv[1]):
            print(f"  {rule_id:<24} {dt * 1e3:8.1f} ms", file=sys.stderr)
        print(f"  {'total':<24} {sum(totals.values()) * 1e3:8.1f} ms",
              file=sys.stderr)
    for v in violations:
        print(v)
    if violations:
        print(f"agedtr-lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    print(f"agedtr-lint: OK ({len(files)} files clean)", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Self-test: seed one violation per rule class in a temp tree and verify the
# linter catches each — and that allow() comments suppress them.
# ---------------------------------------------------------------------------

SELF_TEST_SEEDS = {
    "entropy": "void f() { std::random_device rd; }\n",
    "naked-new": "int* p = new int(3);\n",
    "no-float": "float x = 1.0f;\n",
    "require-not-throw":
        'void f() { throw InvalidArgument("bad"); }\n',
    "mutex-annotation": "std::mutex m_;\n",
    "decision-policy-require":
        "core::DtrPolicy P::decide(const core::SystemState& observed,\n"
        "                          EvaluationEngine& engine) const {\n"
        "  return core::DtrPolicy(observed.size());\n"
        "}\n",
}


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="agedtr-lint-selftest-") as tmp:
        seeded = {}
        for rule, body in SELF_TEST_SEEDS.items():
            path = os.path.join(tmp, f"{rule.replace('-', '_')}.cpp")
            with open(path, "w", encoding="utf-8") as f:
                f.write(body)
            seeded[rule] = path
        # nodiscard-factory needs a header.
        hdr = os.path.join(tmp, "factory.hpp")
        with open(hdr, "w", encoding="utf-8") as f:
            f.write("DistPtr make_exponential(double rate);\n")
        seeded["nodiscard-factory"] = hdr
        # include-hygiene: std symbol with no matching include.
        inc = os.path.join(tmp, "hygiene.cpp")
        with open(inc, "w", encoding="utf-8") as f:
            f.write("#include <string>\nstd::vector<int> v;\n")
        seeded["include-hygiene"] = inc
        # boundary-require: a registered contract surface with every
        # AGEDTR_REQUIRE stripped (a comment mention must not count).
        boundary_dir = os.path.join(tmp, "src", "sim")
        os.makedirs(boundary_dir)
        boundary = os.path.join(boundary_dir, "replication_study.cpp")
        with open(boundary, "w", encoding="utf-8") as f:
            f.write("// AGEDTR_REQUIRE( in a comment does not count\n"
                    "void run_study() {}\n")
        seeded["boundary-require"] = boundary
        # service-boundary-require: a service library TU with every
        # AGEDTR_REQUIRE stripped fires; a *_main.cpp next to it is exempt.
        service_dir = os.path.join(tmp, "src", "service")
        os.makedirs(service_dir)
        service = os.path.join(service_dir, "protocol.cpp")
        with open(service, "w", encoding="utf-8") as f:
            f.write("// AGEDTR_REQUIRE( in a comment does not count\n"
                    "void read_frame() {}\n")
        seeded["service-boundary-require"] = service
        service_main = os.path.join(service_dir, "agedtrd_main.cpp")
        with open(service_main, "w", encoding="utf-8") as f:
            f.write("int main() { return 0; }\n")

        for rule, path in seeded.items():
            found = [v for v in lint_file(path) if v.rule == rule]
            if not found:
                failures.append(f"rule `{rule}` missed its seeded violation")
        if [v for v in lint_file(service_main)
                if v.rule == "service-boundary-require"]:
            failures.append("service-boundary-require fired on an exempt "
                            "*_main.cpp entry point")

        # A violation inside a comment or string must NOT fire.
        quiet = os.path.join(tmp, "quiet.cpp")
        with open(quiet, "w", encoding="utf-8") as f:
            f.write('// float in a comment\nconst char* s = "new int";\n')
        if lint_file(quiet):
            failures.append("violation reported inside a comment or string")

        # allow() on the same line and on the preceding line both suppress.
        allowed = os.path.join(tmp, "allowed.cpp")
        with open(allowed, "w", encoding="utf-8") as f:
            f.write("int* p = new int(3);  // agedtr-lint: allow(naked-new)\n"
                    "// justified: never destroyed. agedtr-lint: allow(naked-new)\n"
                    "int* q = new int(4);\n")
        if lint_file(allowed):
            failures.append("allow() comment failed to suppress")

        # `= delete;` (deleted member) must not trip naked-new.
        deleted = os.path.join(tmp, "deleted.hpp")
        with open(deleted, "w", encoding="utf-8") as f:
            f.write("struct S { S(const S&) = delete;\n"
                    "  S& operator=(const S&) =\n      delete; };\n")
        if [v for v in lint_file(deleted) if v.rule == "naked-new"]:
            failures.append("`= delete;` misreported as naked delete")

    if failures:
        for f_ in failures:
            print(f"agedtr-lint self-test FAIL: {f_}", file=sys.stderr)
        return 1
    print(f"agedtr-lint self-test OK ({len(SELF_TEST_SEEDS) + 4} rule classes, "
          "suppression, and comment/string stripping verified)", file=sys.stderr)
    return 0


def main(argv: list[str]) -> int:
    args = argv[1:]
    if "--help" in args or "-h" in args:
        print(__doc__)
        return 0
    if "--self-test" in args:
        return self_test()
    jobs = 1
    stats = False
    paths: list[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--jobs":
            i += 1
            if i >= len(args):
                print("agedtr-lint: --jobs needs a value", file=sys.stderr)
                return 2
            jobs = max(1, int(args[i]))
        elif a == "--stats":
            stats = True
        elif a.startswith("--"):
            print(f"agedtr-lint: unknown option {a} (see --help)",
                  file=sys.stderr)
            return 2
        else:
            paths.append(a)
        i += 1
    return run_lint(paths or [os.path.join(REPO_ROOT, "src")], jobs, stats)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
