#!/usr/bin/env bash
# Builds the full tree under ASan+UBSan and under TSan and runs the test
# suite under each. TSan matters since the lattice workspace and the
# evaluation engine share mutable cache state across pool threads; the
# concurrency-heavy suites (lattice_workspace_test, evaluation_engine_test,
# util_test) are its primary targets. Usage:
#
#   scripts/run_sanitizers.sh            # address+undefined, then thread
#   scripts/run_sanitizers.sh --no-tsan  # address+undefined only
#   scripts/run_sanitizers.sh --tsan     # accepted for compatibility (tsan
#                                        # is on by default now)
#   scripts/run_sanitizers.sh -j 8       # cap build/test parallelism
#   scripts/run_sanitizers.sh \
#     --tsan-regex 'workspace|engine|[Rr]eplication|[Ss]lowdown|[Ff]ft'
#                                        # restrict the TSan ctest pass to
#                                        # tests matching the regex (the
#                                        # whole tree still builds); TSan
#                                        # runs ~10x slow, so CI points it
#                                        # at the concurrency-heavy suites
#   scripts/run_sanitizers.sh --ubsan-strict
#                                        # add -fsanitize=integer,implicit-conversion
#                                        # to the ASan+UBSan pass. Clang-only
#                                        # (GCC's UBSan has no such groups;
#                                        # the script refuses early). The
#                                        # tree is expected clean: every
#                                        # numeric narrowing is an explicit
#                                        # static_cast (docs/STATIC_ANALYSIS.md)
#
# Each configuration builds out-of-tree in build-asan/ / build-tsan/ so the
# regular build/ directory is left untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_tsan=1
tsan_regex=""
ubsan_strict=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tsan) run_tsan=1 ;;
    --no-tsan) run_tsan=0 ;;
    --tsan-regex) tsan_regex="$2"; shift ;;
    --ubsan-strict) ubsan_strict=1 ;;
    -j) jobs="$2"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

ubsan_list="address;undefined"
if [[ "${ubsan_strict}" -eq 1 ]]; then
  # The integer/implicit-conversion groups only exist in Clang's UBSan;
  # fail fast with a real explanation instead of a cryptic cc1 error.
  compiler_id=$("${CXX:-c++}" --version 2>/dev/null | head -1 || true)
  if [[ "${compiler_id}" != *clang* ]]; then
    echo "--ubsan-strict needs Clang (CXX=${CXX:-c++} is: ${compiler_id:-unknown})." >&2
    echo "GCC's UBSan has no integer/implicit-conversion groups; set CXX=clang++." >&2
    exit 2
  fi
  ubsan_list="address;undefined;integer;implicit-conversion"
fi

run_config() {
  local name="$1" sanitizers="$2" env_setup="$3"
  shift 3
  echo "=== ${name}: configure (-DAGEDTR_SANITIZE=${sanitizers}) ==="
  cmake -B "build-${name}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAGEDTR_SANITIZE="${sanitizers}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "build-${name}" -j "${jobs}"
  echo "=== ${name}: ctest ==="
  (cd "build-${name}" && eval "${env_setup}" && ctest --output-on-failure -j "${jobs}" "$@")
}

# halt_on_error keeps the first report, abort_on_error gives ctest a
# nonzero exit; detect_leaks needs ptrace, which some CI sandboxes deny.
run_config asan "${ubsan_list}" \
  "export ASAN_OPTIONS=abort_on_error=1:detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1"

if [[ "${run_tsan}" -eq 1 ]]; then
  tsan_ctest_args=()
  [[ -n "${tsan_regex}" ]] && tsan_ctest_args=(-R "${tsan_regex}")
  run_config tsan "thread" \
    "export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1" \
    ${tsan_ctest_args[@]+"${tsan_ctest_args[@]}"}
fi

echo "All sanitizer passes clean."
