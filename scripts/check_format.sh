#!/usr/bin/env bash
# clang-format conformance check (docs/STATIC_ANALYSIS.md).
#
# Usage:
#   scripts/check_format.sh          check every tracked C++ file
#   scripts/check_format.sh --diff   check only files changed vs the
#                                    merge-base with origin/main (or HEAD~1
#                                    when origin/main is absent)
#
# Prints a unified diff of what clang-format would change; exits 1 if any
# file is misformatted, 0 when clean. Skips with a notice (exit 0) when
# clang-format is not installed, so local runs without the LLVM toolchain
# are not blocked — CI installs it and enforces for real.
set -u -o pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: SKIP (clang-format not installed)" >&2
  exit 0
fi

cd "$ROOT"

if [ "${1:-}" = "--diff" ]; then
  base="$(git merge-base HEAD origin/main 2>/dev/null ||
          git rev-parse HEAD~1 2>/dev/null || echo HEAD)"
  files="$(git diff --name-only --diff-filter=d "$base" -- \
             '*.cpp' '*.hpp' '*.h' '*.cc')"
else
  files="$(git ls-files '*.cpp' '*.hpp' '*.h' '*.cc')"
fi

if [ -z "$files" ]; then
  echo "check_format: no C++ files to check" >&2
  exit 0
fi

status=0
bad=0
total=0
while read -r f; do
  [ -f "$f" ] || continue
  total=$((total + 1))
  if ! diff -u --label "$f (tracked)" --label "$f (clang-format)" \
       "$f" <(clang-format --style=file "$f"); then
    bad=$((bad + 1))
    status=1
  fi
done <<EOF
$files
EOF

if [ "$status" -ne 0 ]; then
  echo "check_format: $bad of $total file(s) misformatted" >&2
else
  echo "check_format: OK ($total files)" >&2
fi
exit "$status"
