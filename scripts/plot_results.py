#!/usr/bin/env python3
"""Plot the CSV series the reproduction benches write.

Usage:
    python3 scripts/plot_results.py [results_dir] [output_dir]

Reads fig1_{low,severe}.csv, fig2_{low,severe}.csv, fig3_surface.csv and
fig4_reliability.csv (whichever exist in results_dir, default '.') and
writes PNGs mirroring the paper's Figures 1-4 into output_dir (default
'plots/'). Requires matplotlib; the library itself has no Python
dependency — this is a convenience for visual inspection.
"""
import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def plot_policy_series(rows, value_exact, value_markov, ylabel, title, path,
                       plt):
    by_model = defaultdict(list)
    for row in rows:
        by_model[row["model"]].append(row)
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for model, series in by_model.items():
        xs = [int(r["l12"]) for r in series]
        ys = [float(r[value_exact]) for r in series]
        (line,) = ax.plot(xs, ys, marker="o", markersize=3, label=model)
        if value_markov in series[0] and model != "Exponential":
            ax.plot(xs, [float(r[value_markov]) for r in series],
                    linestyle="--", linewidth=1, color=line.get_color(),
                    alpha=0.6)
    ax.set_xlabel("L12 (tasks reallocated from server 1 to 2)")
    ax.set_ylabel(ylabel)
    ax.set_title(title + "\n(dashed: Markovian prediction)")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    print(f"wrote {path}")


def plot_surface(rows, value, title, path, plt):
    import numpy as np

    l12 = sorted({int(r["l12"]) for r in rows})
    l21 = sorted({int(r["l21"]) for r in rows})
    grid = np.full((len(l21), len(l12)), float("nan"))
    for r in rows:
        grid[l21.index(int(r["l21"])), l12.index(int(r["l12"]))] = float(
            r[value])
    fig, ax = plt.subplots(figsize=(7, 4.5))
    mesh = ax.pcolormesh(l12, l21, grid, shading="nearest")
    fig.colorbar(mesh, ax=ax, label=value)
    ax.set_xlabel("L12")
    ax.set_ylabel("L21")
    ax.set_title(title)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    print(f"wrote {path}")


def plot_fig4(rows, path, plt):
    xs = [int(r["l12"]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    ax.plot(xs, [float(r["theory"]) for r in rows], label="theory (fitted)")
    ax.plot(xs, [float(r["mc"]) for r in rows], marker="s", markersize=3,
            linestyle="none", label="MC simulation")
    exp = [float(r["experiment"]) for r in rows]
    lo = [float(r["experiment"]) - float(r["exp_lo"]) for r in rows]
    hi = [float(r["exp_hi"]) - float(r["experiment"]) for r in rows]
    ax.errorbar(xs, exp, yerr=[lo, hi], fmt="o", markersize=3, capsize=3,
                label="experiment (500 runs, 95% CI)")
    ax.set_xlabel("L12 (L21 = 0)")
    ax.set_ylabel("service reliability")
    ax.set_title("Fig. 4(c): theory vs simulation vs experiment")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    print(f"wrote {path}")


def main():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    results = sys.argv[1] if len(sys.argv) > 1 else "."
    out = sys.argv[2] if len(sys.argv) > 2 else "plots"
    os.makedirs(out, exist_ok=True)

    for delay in ("low", "severe"):
        p = os.path.join(results, f"fig1_{delay}.csv")
        if os.path.exists(p):
            plot_policy_series(
                read_csv(p), "t_age_dependent", "t_markovian",
                "average execution time (s)",
                f"Fig. 1 — {delay} network delay",
                os.path.join(out, f"fig1_{delay}.png"), plt)
        p = os.path.join(results, f"fig2_{delay}.csv")
        if os.path.exists(p):
            plot_policy_series(
                read_csv(p), "r_age_dependent", "r_markovian",
                "service reliability",
                f"Fig. 2 — {delay} network delay",
                os.path.join(out, f"fig2_{delay}.png"), plt)
    p = os.path.join(results, "fig3_surface.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        plot_surface(rows, "t_mean", "Fig. 3(a): T-bar(L12, L21)",
                     os.path.join(out, "fig3a_mean.png"), plt)
        plot_surface(rows, "qos", "Fig. 3(b): QoS(L12, L21)",
                     os.path.join(out, "fig3b_qos.png"), plt)
    p = os.path.join(results, "fig4_reliability.csv")
    if os.path.exists(p):
        plot_fig4(read_csv(p), os.path.join(out, "fig4c.png"), plt)


if __name__ == "__main__":
    main()
