#!/usr/bin/env bash
# Single entry point for the agedtr static-analysis gate (docs/STATIC_ANALYSIS.md).
#
# Stages, in order:
#   1. agedtr-lint        line-local determinism/contract checker (python3;
#                         always runs, self-test first)
#   2. agedtr-analyze     graph-aware passes: layering DAG vs docs/
#                         layering.toml, static lock-order cycles,
#                         determinism dataflow (python3; always runs,
#                         self-test first; writes DOT/JSON artifacts)
#   3. format             clang-format dry-run over the tree (skips with a
#                         notice when clang-format is not installed)
#   4. clang-tidy         curated .clang-tidy profile against a checked-in
#                         baseline; only NEW findings fail the gate (skips
#                         with a notice when clang-tidy is not installed)
#
# Usage:
#   scripts/run_static_analysis.sh [--regen-baseline] [--report FILE]
#
#   --regen-baseline   rewrite scripts/clang_tidy_baseline.txt from the
#                      current tree (use after deliberately accepting a
#                      finding; justify in the commit message)
#   --report FILE      also write the raw clang-tidy output to FILE
#                      (uploaded as a CI artifact)
#
# The include-graph and lock-order artifacts land in
# $AGEDTR_ANALYSIS_DIR (default: build/analysis) for CI upload.
#
# Exit status: 0 = clean (skipped stages do not fail), 1 = violations.
set -u -o pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BASELINE="$ROOT/scripts/clang_tidy_baseline.txt"
BUILD_DIR="${AGEDTR_TIDY_BUILD_DIR:-$ROOT/build-tidy}"
REGEN=0
REPORT=""

while [ $# -gt 0 ]; do
  case "$1" in
    --regen-baseline) REGEN=1 ;;
    --report) REPORT="$2"; shift ;;
    -h|--help) sed -n '2,22p' "$0"; exit 0 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

failures=0

note() { printf '== %s\n' "$*"; }

JOBS="$(nproc 2>/dev/null || echo 4)"

# ---------------------------------------------------------------- agedtr-lint
note "agedtr-lint (determinism/contract checker)"
# The self-test proves each rule still catches its seeded violation before
# the real tree gets the "clean" verdict.
if python3 "$ROOT/scripts/agedtr_lint.py" --self-test &&
    python3 "$ROOT/scripts/agedtr_lint.py" --jobs "$JOBS" "$ROOT/src"; then
  :
else
  failures=$((failures + 1))
fi

# ------------------------------------------------------------- agedtr-analyze
note "agedtr-analyze (layering DAG / lock order / determinism dataflow)"
ANALYSIS_DIR="${AGEDTR_ANALYSIS_DIR:-$ROOT/build/analysis}"
if python3 "$ROOT/scripts/agedtr_analyze.py" --self-test &&
    python3 "$ROOT/scripts/agedtr_analyze.py" --jobs "$JOBS" \
      --artifacts "$ANALYSIS_DIR"; then
  note "analysis artifacts: $ANALYSIS_DIR (include_graph / lock_order .json+.dot)"
else
  failures=$((failures + 1))
fi

# --------------------------------------------------------------------- format
note "clang-format check"
if command -v clang-format >/dev/null 2>&1; then
  if "$ROOT/scripts/check_format.sh"; then
    :
  else
    failures=$((failures + 1))
  fi
else
  note "SKIP: clang-format not installed (see docs/STATIC_ANALYSIS.md)"
fi

# ----------------------------------------------------------------- clang-tidy
note "clang-tidy (curated profile, baseline-gated)"
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    note "configuring $BUILD_DIR for compile_commands.json"
    cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 2
  fi

  tidy_raw="$(mktemp)"
  # run-clang-tidy parallelizes across the compilation database; fall back
  # to a serial loop when only the bare binary is present.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "$ROOT/(src|bench|tests)/" \
      >"$tidy_raw" 2>/dev/null
  else
    git -C "$ROOT" ls-files 'src/**/*.cpp' 'bench/*.cpp' 'tests/*.cpp' |
      while read -r f; do
        clang-tidy -quiet -p "$BUILD_DIR" "$ROOT/$f" 2>/dev/null
      done >"$tidy_raw"
  fi
  [ -n "$REPORT" ] && cp "$tidy_raw" "$REPORT"

  # Fingerprint findings as file:[check] message — line numbers are dropped
  # so unrelated edits above a known finding do not churn the baseline.
  fingerprints="$(mktemp)"
  sed -nE "s|^$ROOT/([^:]+):[0-9]+:[0-9]+: (warning\|error): (.*) (\[[a-z0-9.,-]+\])\$|\1: \4 \3|p" \
    "$tidy_raw" | LC_ALL=C sort -u >"$fingerprints"

  if [ "$REGEN" -eq 1 ]; then
    {
      echo "# clang-tidy accepted-findings baseline (docs/STATIC_ANALYSIS.md)."
      echo "# Regenerate with scripts/run_static_analysis.sh --regen-baseline."
      echo "# Every entry is a deliberately accepted finding; new findings"
      echo "# (anything not listed here) fail the static-analysis gate."
      cat "$fingerprints"
    } >"$BASELINE"
    note "baseline regenerated: $(grep -cv '^#' "$BASELINE") finding(s)"
  else
    new_findings="$(grep -v '^#' "$BASELINE" 2>/dev/null |
      LC_ALL=C comm -13 - "$fingerprints")"
    if [ -n "$new_findings" ]; then
      echo "new clang-tidy findings (not in $BASELINE):"
      echo "$new_findings"
      failures=$((failures + 1))
    else
      note "clang-tidy: no findings beyond baseline"
    fi
  fi
  rm -f "$tidy_raw" "$fingerprints"
else
  note "SKIP: clang-tidy not installed (see docs/STATIC_ANALYSIS.md)"
fi

# ---------------------------------------------------------------------- total
if [ "$failures" -gt 0 ]; then
  note "static analysis FAILED ($failures stage(s))"
  exit 1
fi
note "static analysis OK"
