#include "agedtr/service/socket.hpp"

#if !defined(_WIN32)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "agedtr/service/daemon.hpp"
#include "agedtr/service/json.hpp"
#include "agedtr/service/protocol.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::service {

namespace {

/// Blocking fd reader with the socket's SO_RCVTIMEO as its clock. Returns
/// false on EOF, timeout, or error — all of which end the connection.
bool read_exact(int fd, char* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, out + done, n - done);
    if (got <= 0) return false;  // EOF, timeout (EAGAIN), or error
    done += static_cast<std::size_t>(got);
  }
  return true;
}

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote <= 0) return false;
    done += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Frame reader over a raw fd (mirrors protocol.cpp's stream form).
FrameStatus read_frame_fd(int fd, std::string& payload,
                          std::size_t max_frame_bytes) {
  payload.clear();
  std::string digits;
  for (;;) {
    char c = 0;
    const ssize_t got = ::read(fd, &c, 1);
    if (got <= 0) {
      return digits.empty() ? FrameStatus::kEof : FrameStatus::kMalformed;
    }
    if (c == '\n') break;
    if (c < '0' || c > '9' || digits.size() >= kMaxLengthDigits) {
      return FrameStatus::kMalformed;
    }
    digits.push_back(c);
  }
  if (digits.empty()) return FrameStatus::kMalformed;
  std::size_t length = 0;
  for (const char d : digits) {
    length = length * 10 + static_cast<std::size_t>(d - '0');
  }
  if (length > max_frame_bytes) return FrameStatus::kOversize;
  payload.resize(length);
  if (length > 0 && !read_exact(fd, payload.data(), length)) {
    payload.clear();
    return FrameStatus::kMalformed;
  }
  return FrameStatus::kOk;
}

bool write_frame_fd(int fd, const std::string& payload) {
  const std::string header = std::to_string(payload.size()) + "\n";
  return write_all(fd, header.data(), header.size()) &&
         write_all(fd, payload.data(), payload.size());
}

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      std::lround((seconds - std::floor(seconds)) * 1e6));
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

SocketServer::SocketServer(Daemon& daemon, SocketServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {
  AGEDTR_REQUIRE(!options_.path.empty(),
                 "SocketServer: a socket path is required");
  sockaddr_un address{};
  AGEDTR_REQUIRE(options_.path.size() < sizeof(address.sun_path),
                 "SocketServer: socket path longer than sockaddr_un allows");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  AGEDTR_REQUIRE(listen_fd_ >= 0, "SocketServer: socket() failed: " +
                                      std::string(std::strerror(errno)));
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, options_.path.c_str(),
              options_.path.size() + 1);
  (void)::unlink(options_.path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    AGEDTR_REQUIRE(false, "SocketServer: cannot listen on '" +
                              options_.path + "': " + reason);
  }
}

SocketServer::~SocketServer() {
  stop();
  // serve() joins the handlers; if serve() never ran, join here.
  std::vector<std::thread> handlers;
  {
    MutexLock lock(&mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    (void)::unlink(options_.path.c_str());
  }
}

void SocketServer::stop() {
  MutexLock lock(&mutex_);
  stopping_ = true;
}

void SocketServer::serve() {
  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) break;
    }
    if (daemon_.shutdown_requested()) break;

    pollfd waiter{};
    waiter.fd = listen_fd_;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_io_timeout(fd, options_.io_timeout_seconds);
    MutexLock lock(&mutex_);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }

  std::vector<std::thread> handlers;
  {
    MutexLock lock(&mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::handle_connection(int fd) {
  std::string payload;
  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) break;
    }
    const FrameStatus status =
        read_frame_fd(fd, payload, daemon_.options().max_frame_bytes);
    if (status == FrameStatus::kEof) break;
    if (status != FrameStatus::kOk) {
      Json body = Json::object();
      body.set("id", Json());
      body.set("status", Json::string("malformed_frame"));
      body.set("error",
               Json::string("unreadable frame (" +
                            frame_status_name(status) +
                            "); closing the connection"));
      (void)write_frame_fd(fd, body.dump());
      break;
    }
    std::future<std::string> future = daemon_.submit(payload);
    if (!write_frame_fd(fd, future.get())) break;
    if (daemon_.shutdown_requested()) break;
  }
  ::close(fd);
}

}  // namespace agedtr::service

#else  // _WIN32

#include "agedtr/service/daemon.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::service {

SocketServer::SocketServer(Daemon& daemon, SocketServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {
  AGEDTR_REQUIRE(false,
                 "SocketServer: AF_UNIX transport is not available on this "
                 "platform; use the stdio transport");
}

SocketServer::~SocketServer() = default;
void SocketServer::serve() {}
void SocketServer::stop() {}
void SocketServer::handle_connection(int) {}

}  // namespace agedtr::service

#endif
