#include "agedtr/service/protocol.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "agedtr/util/error.hpp"

namespace agedtr::service {

std::string frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kEof:
      return "eof";
    case FrameStatus::kMalformed:
      return "malformed";
    case FrameStatus::kOversize:
      return "oversize";
  }
  return "unknown";
}

FrameStatus read_frame(std::istream& in, std::string& payload,
                       std::size_t max_frame_bytes) {
  payload.clear();
  // Length line: 1..kMaxLengthDigits ASCII digits, then '\n'.
  std::string digits;
  for (;;) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      return digits.empty() ? FrameStatus::kEof : FrameStatus::kMalformed;
    }
    if (c == '\n') break;
    if (c < '0' || c > '9' || digits.size() >= kMaxLengthDigits) {
      return FrameStatus::kMalformed;
    }
    digits.push_back(static_cast<char>(c));
  }
  if (digits.empty()) return FrameStatus::kMalformed;
  std::size_t length = 0;
  for (const char d : digits) {
    length = length * 10 + static_cast<std::size_t>(d - '0');
  }
  if (length > max_frame_bytes) return FrameStatus::kOversize;
  payload.resize(length);
  if (length > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(length));
    if (static_cast<std::size_t>(in.gcount()) != length) {
      payload.clear();
      return FrameStatus::kMalformed;
    }
  }
  return FrameStatus::kOk;
}

void write_frame(std::ostream& out, const std::string& payload) {
  AGEDTR_REQUIRE(out.good(), "write_frame: output stream is not writable");
  out << payload.size() << '\n';
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

}  // namespace agedtr::service
