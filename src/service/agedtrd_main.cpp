// agedtrd — the long-running reallocation service binary.
//
// Transports: --socket <path> serves a UNIX-domain socket; --stdio serves
// one framed session on stdin/stdout (also the form a supervisor like
// systemd's socket activation or an inetd-style runner wants). Exactly one
// must be chosen.
//
// Crash recovery: --journal <path> journals completed searches; restart
// with the same path and --resume to answer re-sent requests from the
// journal (docs/OPERATIONS.md, "Running agedtrd").
#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <iostream>
#include <string>
#include <thread>

#include "agedtr/service/daemon.hpp"
#include "agedtr/service/socket.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/metrics.hpp"

namespace {

std::atomic<bool> g_terminate{false};

void handle_signal(int) { g_terminate.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace agedtr;
  using service::Daemon;
  using service::DaemonOptions;

  CliParser cli(
      "agedtrd: evaluation/search service over the warm agedtr stack");
  cli.add_option("socket", "", "UNIX socket path to serve (exclusive with "
                               "--stdio)");
  cli.add_flag("stdio", "serve one framed session on stdin/stdout");
  cli.add_option("journal", "", "crash-recovery journal path (empty = none)");
  cli.add_flag("no-resume", "ignore an existing journal at start");
  cli.add_option("queue-capacity", "256", "hard admission queue bound");
  cli.add_option("batch-watermark", "192",
                 "queue depth above which batch-class requests are shed");
  cli.add_option("degrade-watermark", "128",
                 "queue depth above which requests take the resilient chain "
                 "(0 = never)");
  cli.add_option("max-eval-seconds", "2.0",
                 "server-side wall cap per evaluation (0 = uncapped)");
  cli.add_option("batch-max", "16", "requests per dispatched batch");
  cli.add_option("max-retries", "1", "supervisor retries per request");
  cli.add_option("poison-strikes", "2",
                 "quarantine strikes before a fingerprint is fast-rejected");
  cli.add_option("lattice-cells", "0",
                 "convolution lattice cells (0 = library default)");
  cli.add_flag("enable-test-faults",
               "accept the test-only 'fault' request field");
  cli.add_option("metrics", "",
                 "write a metrics report here on shutdown (empty = off)");

  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::string socket_path = cli.get_string("socket");
    const bool stdio = cli.get_flag("stdio");
    if (stdio == !socket_path.empty()) {
      std::cerr << "agedtrd: choose exactly one transport: --socket <path> "
                   "or --stdio\n";
      return 2;
    }

    metrics::ScopedExport metrics_export(cli.get_string("metrics"));

    DaemonOptions options;
    options.queue_capacity =
        static_cast<std::size_t>(cli.get_int("queue-capacity"));
    options.batch_watermark =
        static_cast<std::size_t>(cli.get_int("batch-watermark"));
    options.degrade_watermark =
        static_cast<std::size_t>(cli.get_int("degrade-watermark"));
    options.max_eval_seconds = cli.get_double("max-eval-seconds");
    options.batch_max = static_cast<std::size_t>(cli.get_int("batch-max"));
    options.max_retries = static_cast<int>(cli.get_int("max-retries"));
    options.poison_strikes =
        static_cast<int>(cli.get_int("poison-strikes"));
    options.journal_path = cli.get_string("journal");
    options.resume = !cli.get_flag("no-resume");
    options.enable_test_faults = cli.get_flag("enable-test-faults");
    const long long cells = cli.get_int("lattice-cells");
    if (cells > 0) options.conv.cells = static_cast<std::size_t>(cells);

    Daemon daemon(options);

    if (stdio) {
      daemon.serve_stream(std::cin, std::cout);
      daemon.stop();
      return 0;
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    service::SocketServerOptions socket_options;
    socket_options.path = socket_path;
    service::SocketServer server(daemon, socket_options);
    std::cerr << "agedtrd: serving on " << socket_path << "\n";

    // serve() returns on stop() or once a `shutdown` request lands; the
    // main thread watches for signals (a handler must not take locks).
    std::thread server_thread([&server] { server.serve(); });
    while (!g_terminate.load() && !daemon.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
    server_thread.join();
    daemon.stop();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "agedtrd: fatal: " << e.what() << "\n";
    return 1;
  }
}
