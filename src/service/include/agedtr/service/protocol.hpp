// The agedtrd wire framing: `<decimal-byte-length>\n<payload>`.
//
// A frame is an ASCII decimal payload length (no sign, no leading zeros
// required), a single '\n', then exactly that many payload bytes — the
// JSON request or reply. Length-prefixing lets the server read untrusted
// client bytes with a hard memory bound: the length line is capped at
// kMaxLengthDigits characters and the payload at max_frame_bytes, so a
// hostile or broken client can neither balloon memory nor stall the
// reader indefinitely (socket reads additionally carry SO_RCVTIMEO).
//
// read_frame() never throws on client bytes: every outcome is a
// FrameStatus the caller turns into a structured reply (`malformed_frame`)
// or a clean connection close. A clean EOF before the first length byte is
// kEof (the client hung up between requests); EOF anywhere inside a frame
// is kMalformed (the client died mid-send).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace agedtr::service {

/// Hard cap on the length line — 19 digits already covers anything a
/// 64-bit length could express.
inline constexpr std::size_t kMaxLengthDigits = 19;

/// Default payload cap; DaemonOptions::max_frame_bytes can lower it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameStatus {
  kOk,
  /// Clean end of stream before any byte of a new frame.
  kEof,
  /// Non-digit length line, missing '\n', or EOF inside the frame.
  kMalformed,
  /// Well-formed length exceeding the payload cap. The payload bytes were
  /// NOT consumed; the connection must be closed (resync is impossible).
  kOversize,
};

[[nodiscard]] std::string frame_status_name(FrameStatus status);

/// Reads one frame from `in` into `payload` (cleared first).
[[nodiscard]] FrameStatus read_frame(
    std::istream& in, std::string& payload,
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Writes one frame. Does not flush; callers flush once per reply batch.
void write_frame(std::ostream& out, const std::string& payload);

}  // namespace agedtr::service
