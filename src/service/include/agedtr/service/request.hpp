// The agedtrd request schema: untrusted JSON -> a validated Request.
//
// parse_request() is the service's trust boundary. Everything a client can
// put on the wire is checked here — kinds, classes, objectives, model
// families, task counts, matrix shapes, deadline signs — and every
// violation throws InvalidArgument with a message naming the offending
// field, which the daemon turns into a structured `invalid_request` reply.
// Past this function the rest of the service handles only well-formed
// requests (the scenario itself is revalidated by DcsScenario::validate()
// when built, as defense in depth).
//
// Fingerprints. Two fingerprints are derived from a request's *semantic*
// content (transport details — id, class, deadline — are excluded, so the
// same work re-submitted under a new id hits the same caches):
//   * scenario_fingerprint: the evaluation substrate (servers, laws,
//     objective, model flags) — the key of the daemon's warm-engine cache.
//   * work_fingerprint: scenario_fingerprint + kind + policy + fault — the
//     identity of one unit of work; the key of the crash-recovery journal
//     and of the poisoned-request fast-reject table.
#pragma once

#include <string>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/service/json.hpp"

namespace agedtr::service {

enum class RequestKind { kEvaluate, kSearch, kPing, kStats, kShutdown };
enum class RequestClass { kInteractive, kBatch };

[[nodiscard]] std::string request_kind_name(RequestKind kind);
[[nodiscard]] std::string request_class_name(RequestClass klass);

/// One server of the scenario spec, by model family and mean.
struct ServerSpecRequest {
  int tasks = 0;
  std::string service_model;  // dist::parse_model_family name
  double service_mean = 1.0;
  /// Mean of an exponential failure law; 0 = reliable server.
  double failure_mean = 0.0;
};

/// A fully validated request. `policy` is the n x n reallocation matrix
/// for kEvaluate; kSearch optimizes over the 2-server grid instead.
struct Request {
  std::string id;
  RequestKind kind = RequestKind::kPing;
  RequestClass klass = RequestClass::kBatch;
  /// Client deadline in milliseconds from admission; 0 = none.
  double deadline_ms = 0.0;

  std::vector<ServerSpecRequest> servers;
  std::string transfer_model = "exponential";
  double transfer_mean = 1.0;

  std::string objective = "mean";  // mean | qos | reliability
  double qos_deadline = 0.0;
  bool markovian = false;
  /// Route straight to the graceful-degradation chain.
  bool resilient = false;

  std::vector<std::vector<int>> policy;  // kEvaluate only

  /// Test-only fault injection ("flaky:<k>", "always_fail"); rejected
  /// unless DaemonOptions::enable_test_faults is set.
  std::string fault;
};

/// Parses and validates one request document. Throws InvalidArgument
/// naming the offending field on any violation.
[[nodiscard]] Request parse_request(const Json& document);

/// Builds (and validates) the scenario a request describes. Requires a
/// kind that carries a scenario (kEvaluate/kSearch).
[[nodiscard]] core::DcsScenario build_scenario(const Request& request);

/// The request's reallocation matrix as a core::DtrPolicy (kEvaluate).
[[nodiscard]] core::DtrPolicy build_policy(const Request& request);

/// FNV-1a 64 hex fingerprint of the evaluation substrate (see file
/// comment). Stable across processes — the crash-recovery journal depends
/// on it.
[[nodiscard]] std::string scenario_fingerprint(const Request& request);

/// FNV-1a 64 hex fingerprint of the full unit of work (see file comment).
[[nodiscard]] std::string work_fingerprint(const Request& request);

}  // namespace agedtr::service
