// A minimal JSON value for the agedtrd wire protocol.
//
// The service speaks length-prefixed JSON frames (docs/OPERATIONS.md) and
// nothing else in the tree needs JSON, so this is a deliberately small
// hand-rolled value type instead of a vendored parser: null, bool, number
// (double — the tree's uniform numeric type), string, array, and object.
// Objects preserve insertion order, so dump() output is deterministic for
// a given build sequence — replies can be compared byte-for-byte across a
// daemon restart, which the crash-recovery tests rely on.
//
// parse() is a strict recursive-descent reader: it rejects trailing
// garbage, unescaped control characters, bad escapes, and inputs nested
// deeper than kMaxDepth, throwing InvalidArgument (via AGEDTR_REQUIRE)
// with the byte offset of the problem. Malformed client bytes must surface
// as a structured `invalid_request` reply, never as a crash or a hang.
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <string_view>
#include <utility>
#include <vector>

namespace agedtr::service {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Nesting cap for parse(): deeper inputs are a malformed-input error,
  /// not a stack overflow.
  static constexpr std::size_t kMaxDepth = 64;

  Json() = default;

  [[nodiscard]] static Json boolean(bool v);
  [[nodiscard]] static Json number(double v);
  [[nodiscard]] static Json string(std::string v);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  /// Strict parse of exactly one JSON document (trailing whitespace
  /// allowed, trailing garbage rejected). Throws InvalidArgument with the
  /// byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; the wrong type is a caller error (InvalidArgument).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array/object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const;

  /// Array element (requires is_array() and index < size()).
  [[nodiscard]] const Json& at(std::size_t index) const;

  /// Object member by key, nullptr when absent (requires is_object()).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Object members in insertion order.
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Appends to an array (requires is_array()).
  void push_back(Json value);
  /// Sets (or replaces) an object member, preserving first-insertion order
  /// (requires is_object()).
  void set(std::string key, Json value);

  /// Compact single-line serialization. Numbers round-trip: integral
  /// values in the exactly-representable range print without a fraction,
  /// everything else with 17 significant digits.
  [[nodiscard]] std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// Json values nest recursively through the array/object vectors; a throwing
// move would deep-copy whole reply subtrees during parse/build (rule
// `noexcept-move`, docs/layering.toml).
static_assert(std::is_nothrow_move_constructible_v<Json>);

}  // namespace agedtr::service
