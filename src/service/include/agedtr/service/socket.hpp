// UNIX-domain socket transport for agedtrd.
//
// One listener thread accepts connections; each connection gets a handler
// thread that reads `<length>\n<json>` frames, submits them to the Daemon,
// and writes the reply frame. Per-connection defenses:
//
//   * SO_RCVTIMEO / SO_SNDTIMEO (io_timeout_seconds): a slow or stalled
//     client times its own connection out — it cannot pin a handler
//     thread forever or wedge the accept loop.
//   * A malformed or oversize frame is answered with one structured
//     `malformed_frame` reply and the connection is closed (the framing
//     offers no resync point).
//
// POSIX-only (guarded at the build level); the stdio transport in
// Daemon::serve_stream covers platforms without AF_UNIX.
#pragma once

#include <string>
#include <thread>
#include <vector>

#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::service {

class Daemon;

struct SocketServerOptions {
  /// Filesystem path of the listening socket. A stale file at the path is
  /// unlinked at bind (single-instance management is the operator's job).
  std::string path;
  /// Per-read/-write timeout for one client connection.
  double io_timeout_seconds = 10.0;
  /// listen(2) backlog.
  int backlog = 16;
};

class SocketServer {
 public:
  /// Binds and listens immediately; throws InvalidArgument on any socket
  /// error (bad path, bind failure).
  SocketServer(Daemon& daemon, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept loop; returns after stop() or once the daemon acknowledges a
  /// `shutdown` request. Joins every connection handler before returning.
  void serve();

  /// Asynchronously ends serve(). Safe from any thread or signal context
  /// is NOT assumed — call from a thread (the main loop polls a flag).
  void stop();

  [[nodiscard]] const std::string& path() const { return options_.path; }

 private:
  void handle_connection(int fd);

  Daemon& daemon_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  mutable Mutex mutex_;
  bool stopping_ AGEDTR_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> handlers_ AGEDTR_GUARDED_BY(mutex_);
};

}  // namespace agedtr::service
