// agedtrd: the long-running reallocation service (ROADMAP item 2).
//
// One warm evaluation stack — a LatticeWorkspace-backed EvaluationEngine
// cache keyed by scenario fingerprint — answers scenario-evaluation and
// policy-search requests submitted as JSON documents. The Daemon is
// transport-agnostic: submit() takes one request's bytes and returns a
// future for the reply's bytes; serve_stream() and the SocketServer are
// thin framing loops over it.
//
// Robustness contract (docs/OPERATIONS.md "Running agedtrd"):
//
//   Admission control.  submit() never blocks. The work queue is bounded
//   (queue_capacity); a full queue sheds with a structured `overloaded`
//   reply carrying the depth, and `batch`-class requests are shed earlier
//   (batch_watermark) so background load cannot starve interactive
//   traffic.
//
//   Deadline propagation.  A request's deadline_ms becomes an absolute
//   deadline at admission and flows into the evaluation as a
//   util::EvalBudget wall cap (min of the remaining deadline and the
//   server-side max_eval_seconds). An expired deadline is answered with
//   `deadline_exceeded` — detected before, during (the budget timer), or
//   after the evaluation — never silently dropped. The dispatcher's
//   Supervisor watchdog is the backstop for evaluations that stop polling.
//
//   Graceful degradation.  When the fast path trips its budget with
//   deadline left, when the client asks (`resilient`), or when the queue
//   is deep (degrade_watermark), the request is answered through the
//   policy::ResilientEvaluator chain and the reply's `tier` names the
//   solver family that actually answered.
//
//   Retry / quarantine.  The dispatcher runs each batch under a
//   util::Supervisor: transient failures retry with exponential backoff,
//   repeat offenders are quarantined and answered with `failed`, and the
//   offending work_fingerprint earns a strike. Fingerprints reaching
//   poison_strikes are fast-rejected at admission (`poisoned`) without
//   touching the solver again.
//
//   Crash recovery.  Completed `search` requests are journaled through
//   util::Checkpoint (key = work_fingerprint) before the reply is
//   released, so an acknowledged result is by construction on disk; after
//   a SIGKILL a daemon restarted with the same journal answers the
//   re-sent request from the journal (`replayed: true`) bit-identically.
//
// Exactly-once: every future submit() hands out is fulfilled exactly once,
// on every path — admission shed, validation failure, quarantine,
// shutdown drain. The dispatcher owns each request until its promise is
// set; no code path drops a Pending on the floor.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/service/json.hpp"
#include "agedtr/service/request.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/thread_annotations.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {
class EvaluationEngine;
class ResilientEvaluator;
}  // namespace agedtr::policy

namespace agedtr::core {
class LatticeWorkspace;
}  // namespace agedtr::core

namespace agedtr::service {

struct DaemonOptions {
  /// Hard queue bound; at this depth every class is shed (`overloaded`).
  std::size_t queue_capacity = 256;
  /// Depth at which `batch`-class requests are shed while interactive
  /// ones are still admitted. Clamped to queue_capacity.
  std::size_t batch_watermark = 192;
  /// Depth at which admitted requests are answered through the resilient
  /// chain instead of the exact fast path (0 = never degrade on depth).
  std::size_t degrade_watermark = 128;

  /// Server-side wall cap per evaluation (seconds); the effective budget
  /// is min(this, remaining client deadline). 0 = uncapped.
  double max_eval_seconds = 2.0;
  /// Requests the dispatcher drains per supervised batch (amortizes the
  /// Supervisor's watchdog thread over the batch).
  std::size_t batch_max = 16;
  /// Supervisor retries granted per request for transient failures.
  int max_retries = 1;
  /// First retry delay (seconds); grows exponentially with jitter.
  double backoff_initial_seconds = 0.002;
  /// Strikes (quarantined attempts of one work_fingerprint) before the
  /// fingerprint is fast-rejected at admission.
  int poison_strikes = 2;

  /// Lattice tuning shared by every warm engine. budget is overwritten
  /// per request from max_eval_seconds and the deadline.
  core::ConvolutionOptions conv;

  /// Crash-recovery journal for completed searches; empty = no journal.
  std::string journal_path;
  /// Restore the journal at start (false ignores what is on disk).
  bool resume = true;

  /// Accept the test-only `fault` request field (bench/fault-injection
  /// runs). Off in production: fault requests are rejected as invalid.
  bool enable_test_faults = false;

  /// Payload cap for transports that frame through this daemon
  /// (protocol.hpp kDefaultMaxFrameBytes).
  std::size_t max_frame_bytes = 1u << 20;
};

/// One row of Daemon::stats_snapshot() / the `stats` reply.
struct DaemonStats {
  std::size_t accepted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t invalid = 0;
  std::size_t failed = 0;
  std::size_t poisoned = 0;
  std::size_t degraded = 0;
  std::size_t replayed = 0;
  std::size_t engine_cache_hits = 0;
  std::size_t engine_cache_misses = 0;
  std::size_t queue_depth = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  /// Drains the queue (every pending promise is fulfilled) and joins the
  /// dispatcher.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Admits one request (raw JSON bytes) and returns the future reply
  /// (JSON bytes). Never blocks and never throws on client bytes: parse
  /// and admission failures are structured replies. After a `shutdown`
  /// request (or stop()), new submissions are answered `shutting_down`.
  [[nodiscard]] std::future<std::string> submit(std::string request_text);

  /// Serves `<length>\n<json>` frames from `in` until EOF, a malformed
  /// frame, or a `shutdown` request, writing one reply frame per request
  /// in order. The stdio transport and the unit-test harness.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Stops admitting, drains the queue, joins the dispatcher. Idempotent.
  void stop();

  /// True once a `shutdown` request was admitted or stop() began.
  [[nodiscard]] bool shutdown_requested() const;

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] DaemonStats stats_snapshot() const;
  [[nodiscard]] const DaemonOptions& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    std::shared_ptr<std::promise<std::string>> promise;
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    bool replied = false;  // owned by the attempt running this request
    int attempts = 0;      // fault-injection schedule (flaky:<k>)
  };

  struct EngineEntry;

  void dispatcher_loop();
  void process(Pending& pending);
  void reply(Pending& pending, Json body);
  [[nodiscard]] Json reply_skeleton(const Request& request,
                                    const std::string& status) const;
  void handle_evaluate(Pending& pending, double budget_seconds,
                       bool degrade);
  void handle_search(Pending& pending, double budget_seconds, bool degrade);
  [[nodiscard]] std::shared_ptr<EngineEntry> engine_for(
      const Request& request);
  void register_strike(const Request& request);

  DaemonOptions options_;
  std::optional<Checkpoint> journal_;

  mutable Mutex mutex_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ AGEDTR_GUARDED_BY(mutex_);
  bool stopping_ AGEDTR_GUARDED_BY(mutex_) = false;
  bool shutdown_requested_ AGEDTR_GUARDED_BY(mutex_) = false;
  DaemonStats stats_ AGEDTR_GUARDED_BY(mutex_);
  /// work_fingerprint -> quarantine strikes (poison fast-reject table).
  std::map<std::string, int> strikes_ AGEDTR_GUARDED_BY(mutex_);
  /// scenario_fingerprint+flags -> warm engine.
  std::map<std::string, std::shared_ptr<EngineEntry>> engines_
      AGEDTR_GUARDED_BY(mutex_);

  std::thread dispatcher_;
};

}  // namespace agedtr::service
