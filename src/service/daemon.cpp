#include "agedtr/service/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <future>
#include <istream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/resilient_eval.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/service/protocol.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/supervisor.hpp"

namespace agedtr::service {

namespace {

metrics::Counter& requests_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.requests_total", "requests admitted by agedtrd");
  return c;
}

metrics::Counter& shed_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.shed_total", "requests shed by admission control");
  return c;
}

metrics::Counter& deadline_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.deadline_exceeded_total",
      "requests answered deadline_exceeded");
  return c;
}

metrics::Counter& degraded_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.degraded_total",
      "requests answered through the resilient fallback chain");
  return c;
}

metrics::Counter& replayed_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.replayed_total",
      "search requests answered from the crash-recovery journal");
  return c;
}

metrics::Counter& poisoned_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.poisoned_total",
      "requests fast-rejected by the poison fingerprint table");
  return c;
}

metrics::Counter& failed_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.failed_total", "requests quarantined after retries");
  return c;
}

metrics::Counter& cache_hit_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.engine_cache_hits_total",
      "requests answered from a warm EvaluationEngine");
  return c;
}

metrics::Counter& cache_miss_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "service.engine_cache_misses_total",
      "requests that built a fresh EvaluationEngine");
  return c;
}

metrics::Histogram& request_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "service.request_seconds", metrics::exponential_buckets(1e-5, 4.0, 14),
      "admission-to-reply latency of one request");
  return h;
}

metrics::Gauge& queue_depth_gauge() {
  static metrics::Gauge& g = metrics::MetricsRegistry::global().gauge(
      "service.queue_depth", "requests waiting for the dispatcher");
  return g;
}

constexpr const char* kJournalTag = "agedtrd-journal-v1";

policy::Objective objective_of(const Request& request) {
  if (request.objective == "qos") return policy::Objective::kQos;
  if (request.objective == "reliability") {
    return policy::Objective::kReliability;
  }
  return policy::Objective::kMeanExecutionTime;
}

/// JSON value for a metric result; non-finite values are encoded as
/// strings because JSON numbers cannot carry them.
Json json_metric(double value) {
  if (std::isfinite(value)) return Json::number(value);
  if (std::isnan(value)) return Json::string("nan");
  return Json::string(value > 0 ? "inf" : "-inf");
}

/// Injected test faults: "always_fail" never succeeds, "flaky:<k>" fails
/// the first k attempts. Both throw transient errors so they exercise the
/// retry/backoff/quarantine machinery exactly like a real solver hiccup.
void maybe_inject_fault(const Request& request, int attempt) {
  if (request.fault.empty()) return;
  if (request.fault == "always_fail") {
    throw std::runtime_error("injected fault: always_fail");
  }
  const std::string prefix = "flaky:";
  if (request.fault.compare(0, prefix.size(), prefix) == 0) {
    const int failures = std::stoi(request.fault.substr(prefix.size()));
    if (attempt <= failures) {
      throw std::runtime_error("injected fault: flaky attempt " +
                               std::to_string(attempt));
    }
  }
}

}  // namespace

/// One warm evaluation substrate: the validated scenario, its shared
/// lattice workspace, and an engine whose budget is the server-side cap.
/// Requests with a tighter remaining deadline build a transient engine
/// over the same workspace, so the lattice work is shared either way.
struct Daemon::EngineEntry {
  core::DcsScenario scenario;
  std::shared_ptr<core::LatticeWorkspace> workspace;
  std::shared_ptr<const policy::EvaluationEngine> engine;
  policy::EvaluationEngineOptions engine_options;
};

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  AGEDTR_REQUIRE(options_.queue_capacity >= 1,
                 "DaemonOptions: queue_capacity must be >= 1");
  AGEDTR_REQUIRE(options_.batch_max >= 1,
                 "DaemonOptions: batch_max must be >= 1");
  AGEDTR_REQUIRE(options_.poison_strikes >= 1,
                 "DaemonOptions: poison_strikes must be >= 1");
  options_.batch_watermark =
      std::min(options_.batch_watermark, options_.queue_capacity);
  if (!options_.journal_path.empty()) {
    journal_.emplace(options_.journal_path, kJournalTag, options_.resume);
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Daemon::~Daemon() { stop(); }

void Daemon::stop() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
    shutdown_requested_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool Daemon::shutdown_requested() const {
  MutexLock lock(&mutex_);
  return shutdown_requested_;
}

std::size_t Daemon::queue_depth() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

DaemonStats Daemon::stats_snapshot() const {
  MutexLock lock(&mutex_);
  DaemonStats stats = stats_;
  stats.queue_depth = queue_.size();
  return stats;
}

Json Daemon::reply_skeleton(const Request& request,
                            const std::string& status) const {
  Json body = Json::object();
  body.set("id", Json::string(request.id));
  body.set("status", Json::string(status));
  body.set("kind", Json::string(request_kind_name(request.kind)));
  return body;
}

std::future<std::string> Daemon::submit(std::string request_text) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();

  // Trust boundary: malformed bytes become a structured reply, never an
  // exception out of submit().
  Request request;
  try {
    const Json document = Json::parse(request_text);
    request = parse_request(document);
    AGEDTR_REQUIRE(request.fault.empty() || options_.enable_test_faults,
                   "request field 'fault' is test-only and this daemon does "
                   "not enable test faults");
  } catch (const std::exception& e) {
    Json body = Json::object();
    // Best effort to echo the id of a request that parsed as JSON but
    // failed validation.
    std::string id;
    try {
      const Json document = Json::parse(request_text);
      if (document.is_object()) {
        const Json* found = document.find("id");
        if (found != nullptr && found->is_string()) id = found->as_string();
      }
    } catch (const std::exception&) {
      // Not even JSON: reply with an empty id.
    }
    body.set("id", Json::string(id));
    body.set("status", Json::string("invalid_request"));
    body.set("error", Json::string(e.what()));
    {
      MutexLock lock(&mutex_);
      ++stats_.invalid;
    }
    promise->set_value(body.dump());
    return future;
  }

  requests_counter().add();

  // Control-plane kinds are answered inline; they must work even when the
  // queue is saturated (that is when an operator needs `stats` most).
  if (request.kind == RequestKind::kPing) {
    promise->set_value(reply_skeleton(request, "ok").dump());
    return future;
  }
  if (request.kind == RequestKind::kStats) {
    const DaemonStats stats = stats_snapshot();
    Json body = reply_skeleton(request, "ok");
    body.set("accepted", Json::number(static_cast<double>(stats.accepted)));
    body.set("completed", Json::number(static_cast<double>(stats.completed)));
    body.set("shed", Json::number(static_cast<double>(stats.shed)));
    body.set("deadline_exceeded",
             Json::number(static_cast<double>(stats.deadline_exceeded)));
    body.set("invalid", Json::number(static_cast<double>(stats.invalid)));
    body.set("failed", Json::number(static_cast<double>(stats.failed)));
    body.set("poisoned", Json::number(static_cast<double>(stats.poisoned)));
    body.set("degraded", Json::number(static_cast<double>(stats.degraded)));
    body.set("replayed", Json::number(static_cast<double>(stats.replayed)));
    body.set("engine_cache_hits",
             Json::number(static_cast<double>(stats.engine_cache_hits)));
    body.set("engine_cache_misses",
             Json::number(static_cast<double>(stats.engine_cache_misses)));
    body.set("queue_depth",
             Json::number(static_cast<double>(stats.queue_depth)));
    promise->set_value(body.dump());
    return future;
  }
  if (request.kind == RequestKind::kShutdown) {
    {
      MutexLock lock(&mutex_);
      shutdown_requested_ = true;
    }
    promise->set_value(reply_skeleton(request, "ok").dump());
    return future;
  }

  // Admission. Everything below is decided under the lock and answered
  // without blocking: shed, fast-reject, or enqueue.
  const std::string poison_key = work_fingerprint(request);
  {
    MutexLock lock(&mutex_);
    if (stopping_ || shutdown_requested_) {
      Json body = reply_skeleton(request, "shutting_down");
      body.set("error", Json::string("daemon is shutting down"));
      promise->set_value(body.dump());
      return future;
    }
    const auto strikes = strikes_.find(poison_key);
    if (strikes != strikes_.end() &&
        strikes->second >= options_.poison_strikes) {
      ++stats_.poisoned;
      poisoned_counter().add();
      Json body = reply_skeleton(request, "poisoned");
      body.set("error",
               Json::string("work fingerprint " + poison_key + " reached " +
                            std::to_string(strikes->second) +
                            " quarantine strikes; fast-rejected"));
      body.set("fingerprint", Json::string(poison_key));
      promise->set_value(body.dump());
      return future;
    }
    const std::size_t depth = queue_.size();
    const bool shed_hard = depth >= options_.queue_capacity;
    const bool shed_batch = request.klass == RequestClass::kBatch &&
                            depth >= options_.batch_watermark;
    if (shed_hard || shed_batch) {
      ++stats_.shed;
      shed_counter().add();
      Json body = reply_skeleton(request, "overloaded");
      body.set("error", Json::string(
                            shed_hard
                                ? "queue at capacity"
                                : "queue above the batch-class watermark"));
      body.set("queue_depth", Json::number(static_cast<double>(depth)));
      body.set("retry_after_ms", Json::number(50.0));
      promise->set_value(body.dump());
      return future;
    }

    Pending pending;
    pending.request = std::move(request);
    pending.promise = promise;
    pending.admitted = std::chrono::steady_clock::now();
    pending.has_deadline = pending.request.deadline_ms > 0.0;
    if (pending.has_deadline) {
      pending.deadline =
          pending.admitted +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(pending.request.deadline_ms /
                                            1000.0));
    }
    queue_.push_back(std::move(pending));
    ++stats_.accepted;
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

void Daemon::dispatcher_loop() {
  SupervisorOptions supervise;
  supervise.max_retries = options_.max_retries;
  supervise.backoff_initial_seconds = options_.backoff_initial_seconds;
  // Watchdog backstop: generous multiple of the per-evaluation cap, for
  // evaluations that stop polling their budget. Precise deadlines are the
  // per-request EvalBudget's job.
  supervise.deadline_seconds =
      options_.max_eval_seconds > 0.0
          ? std::max(8.0 * options_.max_eval_seconds, 1.0)
          : 0.0;

  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(&mutex_);
      while (queue_.empty() && !stopping_) {
        queue_cv_.wait(mutex_);
      }
      if (queue_.empty() && stopping_) break;
      while (!queue_.empty() && batch.size() < options_.batch_max) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }

    // One Supervisor run per batch amortizes the watchdog thread over
    // batch_max requests instead of paying it per request.
    const SupervisionReport report = Supervisor(supervise).run(
        batch.size(), [&](std::size_t i, const CancelToken& token) {
          token.check("agedtrd dispatcher");
          process(batch[i]);
        });

    for (const QuarantineEntry& entry : report.quarantined) {
      Pending& pending = batch[entry.index];
      if (pending.replied) continue;
      register_strike(pending.request);
      failed_counter().add();
      {
        MutexLock lock(&mutex_);
        ++stats_.failed;
      }
      Json body = reply_skeleton(pending.request, "failed");
      body.set("error", Json::string(entry.error));
      body.set("attempts", Json::number(static_cast<double>(entry.attempts)));
      body.set("fingerprint", Json::string(work_fingerprint(pending.request)));
      reply(pending, std::move(body));
    }
    // Invariant: the dispatcher owns every drained request until its
    // promise is set; a batch can leave this loop only fully answered.
    for (Pending& pending : batch) {
      AGEDTR_ASSERT(pending.replied);
    }
  }

  // Drain on stop(): everything still queued is answered, never dropped.
  std::deque<Pending> leftover;
  {
    MutexLock lock(&mutex_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    Json body = reply_skeleton(pending.request, "shutting_down");
    body.set("error",
             Json::string("daemon stopped before the request was served"));
    reply(pending, std::move(body));
  }
}

void Daemon::reply(Pending& pending, Json body) {
  if (pending.replied) return;
  pending.replied = true;
  {
    MutexLock lock(&mutex_);
    ++stats_.completed;
  }
  request_seconds().observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending.admitted)
          .count());
  pending.promise->set_value(body.dump());
}

void Daemon::process(Pending& pending) {
  if (pending.replied) return;  // a late retry of an answered request
  ++pending.attempts;
  const Request& request = pending.request;

  // Deadline propagation, step 1: a request whose deadline passed while
  // queued is answered deadline_exceeded, not silently dropped and not
  // pointlessly evaluated.
  double remaining = std::numeric_limits<double>::infinity();
  if (pending.has_deadline) {
    remaining = std::chrono::duration<double>(
                    pending.deadline - std::chrono::steady_clock::now())
                    .count();
    if (remaining <= 0.0) {
      deadline_counter().add();
      {
        MutexLock lock(&mutex_);
        ++stats_.deadline_exceeded;
      }
      Json body = reply_skeleton(request, "deadline_exceeded");
      body.set("error", Json::string("deadline expired while queued"));
      reply(pending, std::move(body));
      return;
    }
  }

  // Injected faults throw transient errors *before* any reply, exercising
  // the Supervisor's retry/backoff and the quarantine + poison path.
  maybe_inject_fault(request, pending.attempts);

  // Deadline propagation, step 2: the evaluation budget is the tighter of
  // the server-side cap and the remaining client deadline.
  double budget_seconds =
      options_.max_eval_seconds > 0.0 ? options_.max_eval_seconds : 0.0;
  if (pending.has_deadline &&
      (budget_seconds == 0.0 || remaining < budget_seconds)) {
    budget_seconds = remaining;
  }

  const bool degrade =
      request.resilient || (options_.degrade_watermark > 0 &&
                            queue_depth() >= options_.degrade_watermark);

  try {
    if (request.kind == RequestKind::kEvaluate) {
      handle_evaluate(pending, budget_seconds, degrade);
    } else {
      handle_search(pending, budget_seconds, degrade);
    }
  } catch (const InvalidArgument& e) {
    // Validation at a deeper layer (scenario/policy feasibility): a
    // permanent property of the request, answered as such.
    {
      MutexLock lock(&mutex_);
      ++stats_.invalid;
    }
    Json body = reply_skeleton(request, "invalid_request");
    body.set("error", Json::string(e.what()));
    reply(pending, std::move(body));
  }
}

std::shared_ptr<Daemon::EngineEntry> Daemon::engine_for(
    const Request& request) {
  const std::string key = scenario_fingerprint(request);
  MutexLock lock(&mutex_);
  const auto found = engines_.find(key);
  if (found != engines_.end()) {
    ++stats_.engine_cache_hits;
    cache_hit_counter().add();
    return found->second;
  }
  ++stats_.engine_cache_misses;
  cache_miss_counter().add();
  auto entry = std::make_shared<EngineEntry>();
  entry->scenario = build_scenario(request);
  entry->workspace = std::make_shared<core::LatticeWorkspace>();
  policy::EvaluationEngineOptions engine_options;
  engine_options.objective = objective_of(request);
  engine_options.deadline = request.qos_deadline;
  engine_options.markovian = request.markovian;
  engine_options.conv = options_.conv;
  engine_options.conv.budget.max_seconds = options_.max_eval_seconds;
  entry->engine_options = engine_options;
  entry->engine = std::make_shared<const policy::EvaluationEngine>(
      entry->scenario, engine_options, entry->workspace);
  engines_.emplace(key, entry);
  return entry;
}

namespace {

/// The resilient fallback chain for one request, sharing the warm
/// workspace so the chain's convolution tier reuses the fast path's
/// lattice work.
policy::ResilientEvaluator make_resilient(
    const core::DcsScenario& scenario,
    const policy::EvaluationEngineOptions& engine_options,
    const std::shared_ptr<core::LatticeWorkspace>& workspace,
    double budget_seconds) {
  policy::ResilientEvalOptions resilient;
  resilient.objective = engine_options.objective;
  resilient.deadline = engine_options.deadline;
  // The reference recursion is a reproduction tool, not a serving tier.
  resilient.try_regenerative = false;
  resilient.convolution = engine_options.conv;
  resilient.convolution.budget.max_seconds = budget_seconds;
  resilient.workspace = workspace;
  resilient.monte_carlo.replications = 1000;
  return policy::ResilientEvaluator(scenario, resilient);
}

}  // namespace

void Daemon::handle_evaluate(Pending& pending, double budget_seconds,
                             bool degrade) {
  const Request& request = pending.request;
  const std::shared_ptr<EngineEntry> entry =
      engine_for(request);
  const core::DtrPolicy policy = build_policy(request);
  const std::string fast_tier =
      request.markovian ? "markovian" : "convolution";

  if (!degrade) {
    try {
      double value = 0.0;
      if (budget_seconds == entry->engine_options.conv.budget.max_seconds) {
        value = entry->engine->evaluate(policy);
      } else {
        // Tighter remaining deadline than the warm engine's cap: a
        // transient engine over the same workspace enforces it exactly.
        policy::EvaluationEngineOptions tight = entry->engine_options;
        tight.conv.budget.max_seconds = budget_seconds;
        const policy::EvaluationEngine engine(entry->scenario, tight,
                                              entry->workspace);
        value = engine.evaluate(policy);
      }
      Json body = reply_skeleton(request, "ok");
      body.set("value", json_metric(value));
      body.set("tier", Json::string(fast_tier));
      reply(pending, std::move(body));
      return;
    } catch (const BudgetExceeded& e) {
      // Deadline propagation, step 3: the budget timer fired mid-solve.
      // Out of deadline -> deadline_exceeded; otherwise degrade.
      if (pending.has_deadline &&
          std::chrono::steady_clock::now() >= pending.deadline) {
        deadline_counter().add();
        {
          MutexLock lock(&mutex_);
          ++stats_.deadline_exceeded;
        }
        Json body = reply_skeleton(request, "deadline_exceeded");
        body.set("error", Json::string(e.what()));
        reply(pending, std::move(body));
        return;
      }
    }
  }

  // Graceful degradation: the chain never throws; some tier answers or
  // the outcome reports an all-tiers failure.
  degraded_counter().add();
  {
    MutexLock lock(&mutex_);
    ++stats_.degraded;
  }
  const policy::ResilientEvaluator resilient =
      make_resilient(entry->scenario, entry->engine_options,
                     entry->workspace, budget_seconds);
  const policy::EvalOutcome outcome = resilient.evaluate(policy);
  if (!outcome.ok) {
    {
      MutexLock lock(&mutex_);
      ++stats_.failed;
    }
    failed_counter().add();
    Json body = reply_skeleton(request, "failed");
    body.set("error", Json::string(outcome.describe()));
    reply(pending, std::move(body));
    return;
  }
  Json body = reply_skeleton(request, "ok");
  body.set("value", json_metric(outcome.value));
  body.set("tier", Json::string(policy::eval_tier_name(outcome.tier)));
  body.set("degraded", Json::boolean(true));
  reply(pending, std::move(body));
}

void Daemon::handle_search(Pending& pending, double budget_seconds,
                           bool degrade) {
  const Request& request = pending.request;
  const std::string key = work_fingerprint(request);

  // Crash recovery: a journaled result is the answer — computed by this
  // process or by a predecessor that was SIGKILLed after acknowledging.
  if (journal_.has_value()) {
    const std::optional<std::string> journaled = journal_->find(key);
    if (journaled.has_value()) {
      const std::vector<std::string> fields = split_fields(*journaled);
      AGEDTR_ASSERT(fields.size() == 5);
      replayed_counter().add();
      {
        MutexLock lock(&mutex_);
        ++stats_.replayed;
      }
      Json body = reply_skeleton(request, "ok");
      body.set("l12", Json::number(std::stod(fields[0])));
      body.set("l21", Json::number(std::stod(fields[1])));
      body.set("value", Json::number(std::stod(fields[2])));
      body.set("evaluations", Json::number(std::stod(fields[3])));
      body.set("tier", Json::string(fields[4]));
      body.set("replayed", Json::boolean(true));
      reply(pending, std::move(body));
      return;
    }
  }

  const std::shared_ptr<EngineEntry> entry =
      engine_for(request);
  const int m1 = request.servers[0].tasks;
  const int m2 = request.servers[1].tasks;
  const policy::TwoServerPolicySearch search(m1, m2);
  const bool maximize =
      policy::is_maximization(entry->engine_options.objective);
  const double evaluations = static_cast<double>((m1 + 1) * (m2 + 1));

  policy::PolicyPoint best;
  std::string tier = request.markovian ? "markovian" : "convolution";
  bool solved = false;
  if (!degrade) {
    try {
      if (budget_seconds == entry->engine_options.conv.budget.max_seconds) {
        best = search.optimize(*entry->engine, maximize);
      } else {
        policy::EvaluationEngineOptions tight = entry->engine_options;
        tight.conv.budget.max_seconds = budget_seconds;
        const policy::EvaluationEngine engine(entry->scenario, tight,
                                              entry->workspace);
        best = search.optimize(engine, maximize);
      }
      solved = true;
    } catch (const BudgetExceeded& e) {
      if (pending.has_deadline &&
          std::chrono::steady_clock::now() >= pending.deadline) {
        deadline_counter().add();
        {
          MutexLock lock(&mutex_);
          ++stats_.deadline_exceeded;
        }
        Json body = reply_skeleton(request, "deadline_exceeded");
        body.set("error", Json::string(e.what()));
        reply(pending, std::move(body));
        return;
      }
    }
  }
  if (!solved) {
    degraded_counter().add();
    {
      MutexLock lock(&mutex_);
      ++stats_.degraded;
    }
    const policy::ResilientEvaluator resilient =
        make_resilient(entry->scenario, entry->engine_options,
                       entry->workspace, budget_seconds);
    best = search.optimize(resilient.as_policy_evaluator(), maximize);
    // Name the tier that scores the winning policy (the chain is
    // per-evaluation; the optimum's own outcome is the honest label).
    const policy::EvalOutcome outcome =
        resilient.evaluate(policy::make_two_server_policy(best.l12, best.l21));
    tier = outcome.ok ? policy::eval_tier_name(outcome.tier) : "none";
  }

  // Record-then-acknowledge: the reply is released only after the journal
  // holds the result, so an acknowledged search survives SIGKILL. A
  // persist failure throws CheckpointError (transient): the Supervisor
  // retries, and a daemon that cannot persist answers `failed`, never an
  // unrecoverable "ok".
  if (journal_.has_value()) {
    journal_->record(
        key, join_fields({std::to_string(best.l12), std::to_string(best.l21),
                          Json::number(best.value).dump(),
                          Json::number(evaluations).dump(), tier}));
  }

  Json body = reply_skeleton(request, "ok");
  body.set("l12", Json::number(static_cast<double>(best.l12)));
  body.set("l21", Json::number(static_cast<double>(best.l21)));
  body.set("value", json_metric(best.value));
  body.set("evaluations", Json::number(evaluations));
  body.set("tier", Json::string(tier));
  body.set("replayed", Json::boolean(false));
  reply(pending, std::move(body));
}

void Daemon::register_strike(const Request& request) {
  const std::string key = work_fingerprint(request);
  MutexLock lock(&mutex_);
  ++strikes_[key];
}

void Daemon::serve_stream(std::istream& in, std::ostream& out) {
  std::string payload;
  for (;;) {
    const FrameStatus status =
        read_frame(in, payload, options_.max_frame_bytes);
    if (status == FrameStatus::kEof) break;
    if (status != FrameStatus::kOk) {
      Json body = Json::object();
      body.set("id", Json());
      body.set("status", Json::string("malformed_frame"));
      body.set("error",
               Json::string("unreadable frame (" +
                            frame_status_name(status) +
                            "); closing the connection"));
      write_frame(out, body.dump());
      out.flush();
      break;
    }
    std::future<std::string> future = submit(payload);
    write_frame(out, future.get());
    out.flush();
    if (shutdown_requested()) break;
  }
}

}  // namespace agedtr::service
