#include "agedtr/service/request.hpp"

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::service {

namespace {

constexpr int kMaxServers = 64;
constexpr int kMaxTasksPerServer = 100000;

double require_number(const Json& object, const char* key,
                      double fallback) {
  const Json* value = object.find(key);
  if (value == nullptr) return fallback;
  AGEDTR_REQUIRE(value->is_number(),
                 std::string("request field '") + key + "' must be a number");
  return value->as_number();
}

std::string require_string(const Json& object, const char* key,
                           const std::string& fallback) {
  const Json* value = object.find(key);
  if (value == nullptr) return fallback;
  AGEDTR_REQUIRE(value->is_string(),
                 std::string("request field '") + key + "' must be a string");
  return value->as_string();
}

bool require_bool(const Json& object, const char* key, bool fallback) {
  const Json* value = object.find(key);
  if (value == nullptr) return fallback;
  AGEDTR_REQUIRE(value->is_bool(),
                 std::string("request field '") + key + "' must be a boolean");
  return value->as_bool();
}

int require_int(const Json& object, const char* key, int fallback) {
  const double value =
      require_number(object, key, static_cast<double>(fallback));
  AGEDTR_REQUIRE(std::nearbyint(value) == value,
                 std::string("request field '") + key +
                     "' must be an integer");
  return static_cast<int>(value);
}

RequestKind parse_kind(const std::string& name) {
  if (name == "evaluate") return RequestKind::kEvaluate;
  if (name == "search") return RequestKind::kSearch;
  if (name == "ping") return RequestKind::kPing;
  if (name == "stats") return RequestKind::kStats;
  if (name == "shutdown") return RequestKind::kShutdown;
  AGEDTR_REQUIRE(false, "request field 'kind' must be one of evaluate | "
                        "search | ping | stats | shutdown, got '" +
                            name + "'");
  return RequestKind::kPing;  // unreachable
}

RequestClass parse_class(const std::string& name) {
  if (name == "interactive") return RequestClass::kInteractive;
  if (name == "batch") return RequestClass::kBatch;
  AGEDTR_REQUIRE(false, "request field 'class' must be interactive | batch, "
                        "got '" +
                            name + "'");
  return RequestClass::kBatch;  // unreachable
}

void parse_scenario_fields(const Json& document, Request& request) {
  const Json* scenario = document.find("scenario");
  AGEDTR_REQUIRE(scenario != nullptr && scenario->is_object(),
                 "request field 'scenario' must be an object for "
                 "evaluate/search requests");
  const Json* servers = scenario->find("servers");
  AGEDTR_REQUIRE(servers != nullptr && servers->is_array() &&
                     servers->size() >= 1,
                 "scenario field 'servers' must be a non-empty array");
  AGEDTR_REQUIRE(servers->size() <= kMaxServers,
                 "scenario has more than " + std::to_string(kMaxServers) +
                     " servers");
  for (std::size_t j = 0; j < servers->size(); ++j) {
    const Json& entry = servers->at(j);
    AGEDTR_REQUIRE(entry.is_object(),
                   "scenario server " + std::to_string(j) +
                       " must be an object");
    ServerSpecRequest spec;
    spec.tasks = require_int(entry, "tasks", -1);
    AGEDTR_REQUIRE(spec.tasks >= 0 && spec.tasks <= kMaxTasksPerServer,
                   "scenario server " + std::to_string(j) +
                       ": 'tasks' must be in [0, " +
                       std::to_string(kMaxTasksPerServer) + "]");
    spec.service_model =
        require_string(entry, "service_model", "exponential");
    // Resolves or throws with the unknown name.
    (void)dist::parse_model_family(spec.service_model);
    spec.service_mean = require_number(entry, "service_mean", 1.0);
    AGEDTR_REQUIRE(spec.service_mean > 0.0 &&
                       std::isfinite(spec.service_mean),
                   "scenario server " + std::to_string(j) +
                       ": 'service_mean' must be positive and finite");
    spec.failure_mean = require_number(entry, "failure_mean", 0.0);
    AGEDTR_REQUIRE(spec.failure_mean >= 0.0 &&
                       std::isfinite(spec.failure_mean),
                   "scenario server " + std::to_string(j) +
                       ": 'failure_mean' must be >= 0 (0 = reliable)");
    request.servers.push_back(spec);
  }
  request.transfer_model =
      require_string(*scenario, "transfer_model", "exponential");
  (void)dist::parse_model_family(request.transfer_model);
  request.transfer_mean = require_number(*scenario, "transfer_mean", 1.0);
  AGEDTR_REQUIRE(request.transfer_mean > 0.0 &&
                     std::isfinite(request.transfer_mean),
                 "scenario field 'transfer_mean' must be positive and finite");
}

void parse_policy_field(const Json& document, Request& request) {
  const Json* policy = document.find("policy");
  AGEDTR_REQUIRE(policy != nullptr && policy->is_array(),
                 "evaluate requests need a 'policy' matrix (n x n array of "
                 "arrays)");
  const std::size_t n = request.servers.size();
  AGEDTR_REQUIRE(policy->size() == n,
                 "'policy' must have one row per server (" +
                     std::to_string(n) + ")");
  for (std::size_t i = 0; i < n; ++i) {
    const Json& row = policy->at(i);
    AGEDTR_REQUIRE(row.is_array() && row.size() == n,
                   "'policy' row " + std::to_string(i) + " must have " +
                       std::to_string(n) + " entries");
    std::vector<int> cells;
    for (std::size_t j = 0; j < n; ++j) {
      const Json& cell = row.at(j);
      AGEDTR_REQUIRE(cell.is_number() &&
                         std::nearbyint(cell.as_number()) == cell.as_number(),
                     "'policy' entries must be integers");
      const int moved = static_cast<int>(cell.as_number());
      AGEDTR_REQUIRE(moved >= 0, "'policy' entries must be >= 0");
      AGEDTR_REQUIRE(i != j || moved == 0,
                     "'policy' diagonal entries must be 0 (tasks do not move "
                     "to their own server)");
      cells.push_back(moved);
    }
    request.policy.push_back(std::move(cells));
  }
}

/// FNV-1a 64 over a canonical byte string.
std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

/// Canonical semantic spelling of the evaluation substrate. Uses dump()'s
/// deterministic number formatting so the string (and hence the hash) is
/// bit-stable across processes and restarts.
std::string scenario_canonical(const Request& request) {
  std::string out = "v1|obj=" + request.objective +
                    "|qos=" + Json::number(request.qos_deadline).dump() +
                    "|markov=" + (request.markovian ? "1" : "0") +
                    "|net=" + request.transfer_model + ":" +
                    Json::number(request.transfer_mean).dump();
  for (const ServerSpecRequest& s : request.servers) {
    out += "|srv=" + std::to_string(s.tasks) + ":" + s.service_model + ":" +
           Json::number(s.service_mean).dump() + ":" +
           Json::number(s.failure_mean).dump();
  }
  return out;
}

std::string work_canonical(const Request& request) {
  std::string out =
      scenario_canonical(request) + "|kind=" +
      request_kind_name(request.kind) +
      "|resilient=" + (request.resilient ? "1" : "0");
  for (const std::vector<int>& row : request.policy) {
    out += "|row=";
    for (const int cell : row) out += std::to_string(cell) + ",";
  }
  if (!request.fault.empty()) out += "|fault=" + request.fault;
  return out;
}

}  // namespace

std::string request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kEvaluate:
      return "evaluate";
    case RequestKind::kSearch:
      return "search";
    case RequestKind::kPing:
      return "ping";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string request_class_name(RequestClass klass) {
  return klass == RequestClass::kInteractive ? "interactive" : "batch";
}

Request parse_request(const Json& document) {
  AGEDTR_REQUIRE(document.is_object(), "a request must be a JSON object");
  Request request;
  request.id = require_string(document, "id", "");
  AGEDTR_REQUIRE(!request.id.empty() && request.id.size() <= 128,
                 "request field 'id' must be a non-empty string of at most "
                 "128 bytes");
  request.kind = parse_kind(require_string(document, "kind", ""));
  request.klass = parse_class(require_string(document, "class", "batch"));
  request.deadline_ms = require_number(document, "deadline_ms", 0.0);
  AGEDTR_REQUIRE(request.deadline_ms >= 0.0 &&
                     std::isfinite(request.deadline_ms),
                 "request field 'deadline_ms' must be >= 0 (0 = none)");
  request.fault = require_string(document, "fault", "");

  if (request.kind == RequestKind::kPing ||
      request.kind == RequestKind::kStats ||
      request.kind == RequestKind::kShutdown) {
    return request;
  }

  parse_scenario_fields(document, request);
  request.objective = require_string(document, "objective", "mean");
  AGEDTR_REQUIRE(request.objective == "mean" || request.objective == "qos" ||
                     request.objective == "reliability",
                 "request field 'objective' must be mean | qos | "
                 "reliability, got '" +
                     request.objective + "'");
  request.qos_deadline = require_number(document, "qos_deadline", 0.0);
  AGEDTR_REQUIRE(request.objective != "qos" ||
                     (request.qos_deadline > 0.0 &&
                      std::isfinite(request.qos_deadline)),
                 "objective 'qos' needs a positive finite 'qos_deadline'");
  request.markovian = require_bool(document, "markovian", false);
  request.resilient = require_bool(document, "resilient", false);

  if (request.kind == RequestKind::kEvaluate) {
    parse_policy_field(document, request);
  } else {
    AGEDTR_REQUIRE(request.servers.size() == 2,
                   "search requests optimize the 2-server grid; got " +
                       std::to_string(request.servers.size()) + " servers");
  }
  return request;
}

core::DcsScenario build_scenario(const Request& request) {
  AGEDTR_REQUIRE(request.kind == RequestKind::kEvaluate ||
                     request.kind == RequestKind::kSearch,
                 "only evaluate/search requests carry a scenario");
  std::vector<core::ServerSpec> servers;
  for (const ServerSpecRequest& s : request.servers) {
    core::ServerSpec spec;
    spec.initial_tasks = s.tasks;
    spec.service = dist::make_model_distribution(
        dist::parse_model_family(s.service_model), s.service_mean);
    if (s.failure_mean > 0.0) {
      spec.failure = dist::Exponential::with_mean(s.failure_mean);
    }
    servers.push_back(std::move(spec));
  }
  core::DcsScenario scenario = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(
          dist::parse_model_family(request.transfer_model),
          request.transfer_mean),
      dist::Exponential::with_mean(1.0));
  scenario.validate();
  return scenario;
}

core::DtrPolicy build_policy(const Request& request) {
  AGEDTR_REQUIRE(request.kind == RequestKind::kEvaluate,
                 "only evaluate requests carry a policy matrix");
  const std::size_t n = request.servers.size();
  core::DtrPolicy policy(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) policy.set(i, j, request.policy[i][j]);
    }
  }
  return policy;
}

std::string scenario_fingerprint(const Request& request) {
  return hex64(fnv1a64(scenario_canonical(request)));
}

std::string work_fingerprint(const Request& request) {
  return hex64(fnv1a64(work_canonical(request)));
}

}  // namespace agedtr::service
