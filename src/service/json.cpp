#include "agedtr/service/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::service {

namespace {

/// Recursive-descent reader over one document. Positions are byte offsets
/// into the original text so error messages point at the problem.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  Json read_document() {
    Json value = read_value(0);
    skip_whitespace();
    AGEDTR_REQUIRE(pos_ == text_.size(),
                   "Json::parse: trailing garbage at byte " +
                       std::to_string(pos_));
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_whitespace();
    AGEDTR_REQUIRE(pos_ < text_.size(),
                   "Json::parse: unexpected end of input at byte " +
                       std::to_string(pos_));
    return text_[pos_];
  }

  void expect(char c) {
    AGEDTR_REQUIRE(peek() == c, "Json::parse: expected '" +
                                    std::string(1, c) + "' at byte " +
                                    std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json read_value(std::size_t depth) {
    AGEDTR_REQUIRE(depth < Json::kMaxDepth,
                   "Json::parse: nesting deeper than kMaxDepth");
    const char c = peek();
    switch (c) {
      case '{':
        return read_object(depth);
      case '[':
        return read_array(depth);
      case '"':
        return Json::string(read_string());
      case 't':
        AGEDTR_REQUIRE(consume_literal("true"),
                       "Json::parse: bad literal at byte " +
                           std::to_string(pos_));
        return Json::boolean(true);
      case 'f':
        AGEDTR_REQUIRE(consume_literal("false"),
                       "Json::parse: bad literal at byte " +
                           std::to_string(pos_));
        return Json::boolean(false);
      case 'n':
        AGEDTR_REQUIRE(consume_literal("null"),
                       "Json::parse: bad literal at byte " +
                           std::to_string(pos_));
        return Json();
      default:
        return read_number();
    }
  }

  Json read_object(std::size_t depth) {
    expect('{');
    Json object = Json::object();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      AGEDTR_REQUIRE(peek() == '"', "Json::parse: object key must be a "
                                    "string at byte " +
                                        std::to_string(pos_));
      std::string key = read_string();
      expect(':');
      object.set(std::move(key), read_value(depth + 1));
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      AGEDTR_REQUIRE(c == ',', "Json::parse: expected ',' or '}' at byte " +
                                   std::to_string(pos_ - 1));
    }
  }

  Json read_array(std::size_t depth) {
    expect('[');
    Json array = Json::array();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(read_value(depth + 1));
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      AGEDTR_REQUIRE(c == ',', "Json::parse: expected ',' or ']' at byte " +
                                   std::to_string(pos_ - 1));
    }
  }

  std::string read_string() {
    expect('"');
    std::string out;
    for (;;) {
      AGEDTR_REQUIRE(pos_ < text_.size(),
                     "Json::parse: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      AGEDTR_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                     "Json::parse: unescaped control character at byte " +
                         std::to_string(pos_ - 1));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      AGEDTR_REQUIRE(pos_ < text_.size(), "Json::parse: dangling escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_utf8(out, read_hex4());
          break;
        default:
          AGEDTR_REQUIRE(false, "Json::parse: bad escape '\\" +
                                    std::string(1, escape) + "' at byte " +
                                    std::to_string(pos_ - 1));
      }
    }
  }

  unsigned read_hex4() {
    AGEDTR_REQUIRE(pos_ + 4 <= text_.size(),
                   "Json::parse: truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        AGEDTR_REQUIRE(false, "Json::parse: bad hex digit in \\u escape");
      }
    }
    return value;
  }

  /// BMP code point -> UTF-8. Surrogates are passed through as the
  /// replacement character: the wire protocol's identifiers are ASCII and
  /// a lone surrogate must not corrupt the output byte stream.
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json read_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    AGEDTR_REQUIRE(!token.empty() && token != "-",
                   "Json::parse: expected a value at byte " +
                       std::to_string(start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    AGEDTR_REQUIRE(end == token.c_str() + token.size() &&
                       std::isfinite(value),
                   "Json::parse: bad number '" + token + "' at byte " +
                       std::to_string(start));
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  // Integral doubles in the exactly-representable range print without a
  // fraction so ids and counts stay integers on the wire.
  if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  AGEDTR_REQUIRE(std::isfinite(v),
                 "Json::number: JSON has no representation for non-finite "
                 "values; encode them explicitly");
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::parse(std::string_view text) {
  return Reader(text).read_document();
}

bool Json::as_bool() const {
  AGEDTR_REQUIRE(is_bool(), "Json::as_bool: value is not a boolean");
  return bool_;
}

double Json::as_number() const {
  AGEDTR_REQUIRE(is_number(), "Json::as_number: value is not a number");
  return number_;
}

const std::string& Json::as_string() const {
  AGEDTR_REQUIRE(is_string(), "Json::as_string: value is not a string");
  return string_;
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  AGEDTR_REQUIRE(is_array() && index < array_.size(),
                 "Json::at: index out of range or value is not an array");
  return array_[index];
}

const Json* Json::find(std::string_view key) const {
  AGEDTR_REQUIRE(is_object(), "Json::find: value is not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  AGEDTR_REQUIRE(is_object(), "Json::members: value is not an object");
  return object_;
}

void Json::push_back(Json value) {
  AGEDTR_REQUIRE(is_array(), "Json::push_back: value is not an array");
  array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  AGEDTR_REQUIRE(is_object(), "Json::set: value is not an object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_escaped(out, object_[i].first);
        out.push_back(':');
        out += object_[i].second.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

}  // namespace agedtr::service
