// Deterministic, platform-independent random number generation.
//
// Engines:
//   * SplitMix64 — seeding and cheap stream derivation.
//   * Xoshiro256pp — the default simulation engine (xoshiro256++ 1.0,
//     Blackman & Vigna), with jump() for 2^128 non-overlapping subsequences.
//   * Philox4x32 — counter-based engine; any (key, counter) pair is an
//     independent stream, which makes replication-indexed Monte Carlo
//     reproducible regardless of thread scheduling.
//
// All engines satisfy std::uniform_random_bit_generator and supply
// next_double() returning a uniform deviate in [0, 1) with 53-bit
// resolution.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace agedtr::random {

/// Fast 64-bit mixer used for seeding (Steele, Lea & Flood's SplitMix64).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 — default engine for the discrete-event simulator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64, as its authors recommend.
  explicit Xoshiro256pp(std::uint64_t seed);

  std::uint64_t operator()();

  /// Uniform double in [0, 1) using the top 53 bits.
  double next_double() { return to_unit_double((*this)()); }

  /// Advances the state by 2^128 steps: successive jump()ed copies give
  /// non-overlapping parallel streams.
  void jump();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Converts a 64-bit word to a uniform double in [0, 1).
  static double to_unit_double(std::uint64_t word) {
    return static_cast<double>(word >> 11) * 0x1.0p-53;
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Philox4x32-10 counter-based engine (Salmon et al., SC'11).
///
/// Construct with (key, stream); every distinct pair yields a statistically
/// independent sequence, so parallel replications can be indexed directly.
class Philox4x32 {
 public:
  using result_type = std::uint64_t;

  explicit Philox4x32(std::uint64_t key, std::uint64_t stream = 0);

  std::uint64_t operator()();

  double next_double() { return Xoshiro256pp::to_unit_double((*this)()); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

 private:
  void refill();

  std::array<std::uint32_t, 2> key_;
  std::array<std::uint32_t, 4> counter_;
  std::array<std::uint32_t, 4> output_{};
  int have_ = 0;  // 32-bit words remaining in output_
};

/// The library-wide default engine alias.
using Rng = Xoshiro256pp;

/// Derives the engine for replication `rep` of a run seeded with `seed`:
/// deterministic and independent of thread assignment.
[[nodiscard]] Rng make_replication_rng(std::uint64_t seed, std::uint64_t rep);

/// Counter-based stream derivation: seeds the default engine from
/// Philox4x32(seed, stream), so the mapping (seed, stream) -> engine state
/// is a pure function with cryptographic-quality stream separation — no
/// shared mutable seeding state, no dependence on evaluation order. This is
/// the sub-stream factory Monte-Carlo uses under StreamSplit::kCounter.
[[nodiscard]] Rng make_counter_rng(std::uint64_t seed, std::uint64_t stream);

}  // namespace agedtr::random
