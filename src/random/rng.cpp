#include "agedtr/random/rng.hpp"

#include <array>
#include <cstdint>

namespace agedtr::random {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm();
}

std::uint64_t Xoshiro256pp::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256pp::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Philox4x32::Philox4x32(std::uint64_t key, std::uint64_t stream) {
  key_ = {static_cast<std::uint32_t>(key),
          static_cast<std::uint32_t>(key >> 32)};
  counter_ = {0, 0, static_cast<std::uint32_t>(stream),
              static_cast<std::uint32_t>(stream >> 32)};
}

void Philox4x32::refill() {
  constexpr std::uint32_t kMul0 = 0xD2511F53u;
  constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;
  std::array<std::uint32_t, 4> ctr = counter_;
  std::array<std::uint32_t, 2> key = key_;
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * ctr[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * ctr[2];
    const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
    const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
    const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
    const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
    ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  output_ = ctr;
  have_ = 4;
  // Advance the 64-bit block counter held in counter_[0..1].
  if (++counter_[0] == 0) ++counter_[1];
}

std::uint64_t Philox4x32::operator()() {
  if (have_ < 2) refill();
  const std::uint32_t lo = output_[4 - have_];
  const std::uint32_t hi = output_[5 - have_];
  have_ -= 2;
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

Rng make_replication_rng(std::uint64_t seed, std::uint64_t rep) {
  // Mix (seed, rep) through SplitMix64 so neighbouring replication indices
  // land in unrelated regions of the seed space.
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (rep + 1)));
  return Rng(sm());
}

Rng make_counter_rng(std::uint64_t seed, std::uint64_t stream) {
  Philox4x32 philox(seed, stream);
  return Rng(philox());
}

}  // namespace agedtr::random
