// Emulation of the paper's Internet-connected two-server testbed
// (Section III-B). The physical testbed enters the paper only as a sampler
// of service/transfer realizations whose empirical laws were found to be
// Pareto (service) and shifted Gamma (transfers, FN packets); this module
// reproduces the whole experimental pipeline against a DES-backed stand-in:
//
//   1. ground truth: laws at the paper's fitted means (shape parameters,
//      which the paper omits, are pinned here and documented in DESIGN.md),
//      plus optional multiplicative measurement jitter so "experimental"
//      samples deviate from the ideal law the way real measurements do;
//   2. characterization: normalized histograms, per-family MLE, and
//      minimum-squared-error model selection (Fig. 4(a,b));
//   3. prediction and validation: optimal DTR policy from the fitted laws,
//      theoretical reliability, 10 000-rep MC at the fitted laws, and
//      500-rep "experiments" on the ground-truth testbed (Fig. 4(c)).
#pragma once

#include <cstdint>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/stats/model_select.hpp"

namespace agedtr::testbed {

struct TestbedOptions {
  /// Initial workload (paper: m1 = 50, m2 = 25).
  int m1 = 50;
  int m2 = 25;
  /// Failure means in seconds (paper: 300 and 150, exponential).
  double failure_mean_1 = 300.0;
  double failure_mean_2 = 150.0;
  /// Pareto tail index for the service laws. The paper's fit omits it; we
  /// pin 1.2 — a heavy tail — because reliability then approaches the
  /// paper's reported level (most service draws sit near the Pareto minimum
  /// while rare giants carry the mean, lifting P{C < Y} well above the
  /// exponential-equivalent value); lighter tails drive it toward ~0.3.
  double service_alpha = 1.2;
  /// Shifted-Gamma decomposition for transfers: shift = shift_fraction·mean,
  /// Gamma part carries the rest with the given shape.
  double transfer_shift_fraction = 0.5;
  double transfer_shape = 2.0;
  /// Multiplicative lognormal measurement jitter σ applied when drawing
  /// "experimental" samples (0 disables; realizes sampling imperfections a
  /// live testbed exhibits).
  double measurement_jitter_sigma = 0.01;
};

/// The ground-truth testbed: means from the paper's Section III-B fits.
///   service: Pareto, means 4.858 s and 2.357 s;
///   task transfers: shifted Gamma, means 1.207 s (1→2) and 0.803 s (2→1);
///   FN transfers: shifted Gamma, means 0.313 s and 0.145 s;
///   failures: exponential, means 300 s and 150 s.
[[nodiscard]] core::DcsScenario make_testbed_scenario(
    const TestbedOptions& options = {});

/// What gets measured on the testbed.
enum class MeasuredTime {
  kService1,
  kService2,
  kTransfer12,
  kTransfer21,
  kFn12,
  kFn21,
};

/// Draws `count` "measured" samples of the given random time from the
/// ground-truth law, with the configured measurement jitter applied.
[[nodiscard]] std::vector<double> measure(const core::DcsScenario& truth,
                                          MeasuredTime what,
                                          std::size_t count,
                                          std::uint64_t seed,
                                          const TestbedOptions& options = {});

/// Per-quantity characterization results (Fig. 4(a,b)).
struct Characterization {
  std::vector<double> samples;
  stats::ModelSelection selection;
};

/// The characterized testbed: each law replaced by its best fit.
struct CharacterizedTestbed {
  core::DcsScenario fitted;  // scenario with fitted laws
  Characterization service1, service2;
  Characterization transfer12, transfer21;
  Characterization fn12, fn21;
};

/// Runs the full measurement → fit → select pipeline with `samples_per_law`
/// measurements of each random time.
[[nodiscard]] CharacterizedTestbed characterize_testbed(
    std::size_t samples_per_law, std::uint64_t seed,
    const TestbedOptions& options = {});

/// One point of the Fig. 4(c) validation: the "experimental" service
/// reliability of the *ground-truth* testbed under the policy, averaged
/// over `replications` independent runs (the paper uses 500).
[[nodiscard]] stats::ConfidenceInterval run_experiment(
    const core::DcsScenario& truth, const core::DtrPolicy& policy,
    std::size_t replications, std::uint64_t seed);

}  // namespace agedtr::testbed
