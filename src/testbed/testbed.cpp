#include "agedtr/testbed/testbed.hpp"

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/numerics/special.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::testbed {
namespace {

// Paper-fitted means (Section III-B).
constexpr double kServiceMean1 = 4.858;
constexpr double kServiceMean2 = 2.357;
constexpr double kTransferMean12 = 1.207;
constexpr double kTransferMean21 = 0.803;
constexpr double kFnMean12 = 0.313;
constexpr double kFnMean21 = 0.145;

dist::DistPtr shifted_gamma_with_mean(double mean,
                                      const TestbedOptions& options) {
  const double shift = options.transfer_shift_fraction * mean;
  const double gamma_mean = mean - shift;
  AGEDTR_REQUIRE(gamma_mean > 0.0,
                 "testbed: transfer shift fraction must be < 1");
  return std::make_shared<dist::ShiftedGamma>(
      shift, options.transfer_shape, gamma_mean / options.transfer_shape);
}

}  // namespace

core::DcsScenario make_testbed_scenario(const TestbedOptions& options) {
  AGEDTR_REQUIRE(options.m1 >= 0 && options.m2 >= 0,
                 "testbed: task counts must be nonnegative");
  core::DcsScenario scenario;
  scenario.servers = {
      core::ServerSpec{options.m1,
                       dist::Pareto::with_mean(kServiceMean1,
                                               options.service_alpha),
                       dist::Exponential::with_mean(options.failure_mean_1)},
      core::ServerSpec{options.m2,
                       dist::Pareto::with_mean(kServiceMean2,
                                               options.service_alpha),
                       dist::Exponential::with_mean(options.failure_mean_2)},
  };
  scenario.transfer = {
      {nullptr, shifted_gamma_with_mean(kTransferMean12, options)},
      {shifted_gamma_with_mean(kTransferMean21, options), nullptr}};
  scenario.fn_transfer = {
      {nullptr, shifted_gamma_with_mean(kFnMean12, options)},
      {shifted_gamma_with_mean(kFnMean21, options), nullptr}};
  scenario.validate();
  return scenario;
}

std::vector<double> measure(const core::DcsScenario& truth, MeasuredTime what,
                            std::size_t count, std::uint64_t seed,
                            const TestbedOptions& options) {
  AGEDTR_REQUIRE(count >= 2, "measure: need at least two samples");
  const dist::DistPtr* law = nullptr;
  switch (what) {
    case MeasuredTime::kService1:
      law = &truth.servers[0].service;
      break;
    case MeasuredTime::kService2:
      law = &truth.servers[1].service;
      break;
    case MeasuredTime::kTransfer12:
      law = &truth.transfer[0][1];
      break;
    case MeasuredTime::kTransfer21:
      law = &truth.transfer[1][0];
      break;
    case MeasuredTime::kFn12:
      law = &truth.fn_transfer[0][1];
      break;
    case MeasuredTime::kFn21:
      law = &truth.fn_transfer[1][0];
      break;
  }
  AGEDTR_REQUIRE(law != nullptr && *law != nullptr,
                 "measure: the requested law is absent from the scenario");
  random::Rng rng = random::make_replication_rng(
      seed, static_cast<std::uint64_t>(what) + 101);
  std::vector<double> samples(count);
  const double sigma = options.measurement_jitter_sigma;
  for (double& s : samples) {
    s = (*law)->sample(rng);
    if (sigma > 0.0) {
      double u = rng.next_double();
      if (u <= 0.0) u = 1e-300;
      if (u >= 1.0) u = 1.0 - 1e-16;
      s *= std::exp(sigma * numerics::normal_quantile(u));
    }
  }
  return samples;
}

CharacterizedTestbed characterize_testbed(std::size_t samples_per_law,
                                          std::uint64_t seed,
                                          const TestbedOptions& options) {
  const core::DcsScenario truth = make_testbed_scenario(options);
  CharacterizedTestbed out;
  const auto characterize = [&](MeasuredTime what) {
    Characterization c;
    c.samples = measure(truth, what, samples_per_law, seed, options);
    c.selection = stats::select_model(c.samples);
    return c;
  };
  out.service1 = characterize(MeasuredTime::kService1);
  out.service2 = characterize(MeasuredTime::kService2);
  out.transfer12 = characterize(MeasuredTime::kTransfer12);
  out.transfer21 = characterize(MeasuredTime::kTransfer21);
  out.fn12 = characterize(MeasuredTime::kFn12);
  out.fn21 = characterize(MeasuredTime::kFn21);

  out.fitted = truth;  // copy topology, failure laws and task counts
  out.fitted.servers[0].service = out.service1.selection.best().distribution;
  out.fitted.servers[1].service = out.service2.selection.best().distribution;
  out.fitted.transfer[0][1] = out.transfer12.selection.best().distribution;
  out.fitted.transfer[1][0] = out.transfer21.selection.best().distribution;
  out.fitted.fn_transfer[0][1] = out.fn12.selection.best().distribution;
  out.fitted.fn_transfer[1][0] = out.fn21.selection.best().distribution;
  return out;
}

stats::ConfidenceInterval run_experiment(const core::DcsScenario& truth,
                                         const core::DtrPolicy& policy,
                                         std::size_t replications,
                                         std::uint64_t seed) {
  sim::MonteCarloOptions mc;
  mc.replications = replications;
  mc.seed = seed;
  const sim::MonteCarloMetrics metrics =
      sim::run_monte_carlo(truth, policy, mc);
  return metrics.reliability;
}

}  // namespace agedtr::testbed
