#include "agedtr/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::stats {

Histogram::Histogram(const std::vector<double>& samples, double lo, double hi,
                     std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      n_(samples.size()), counts_(bins, 0), density_(bins, 0.0) {
  AGEDTR_REQUIRE(!samples.empty(), "Histogram: no samples");
  AGEDTR_REQUIRE(bins >= 1, "Histogram: need at least one bin");
  AGEDTR_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  for (double s : samples) {
    auto idx = static_cast<long long>(std::floor((s - lo_) / width_));
    idx = std::clamp<long long>(idx, 0, static_cast<long long>(bins) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
  }
  const double norm = 1.0 / (static_cast<double>(n_) * width_);
  for (std::size_t i = 0; i < bins; ++i) {
    density_[i] = static_cast<double>(counts_[i]) * norm;
  }
}

namespace {

std::size_t sturges(std::size_t n) {
  return static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(n)) + 1.0));
}

}  // namespace

Histogram::Histogram(const std::vector<double>& samples)
    : Histogram(samples,
                *std::min_element(samples.begin(), samples.end()),
                std::nextafter(
                    *std::max_element(samples.begin(), samples.end()),
                    std::numeric_limits<double>::infinity()),
                std::max<std::size_t>(sturges(samples.size()), 4)) {}

double Histogram::bin_center(std::size_t i) const {
  AGEDTR_REQUIRE(i < density_.size(), "Histogram: bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::squared_error_vs(const dist::Distribution& d) const {
  double err = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double lo = lo_ + static_cast<double>(i) * width_;
    const double candidate = (d.cdf(lo + width_) - d.cdf(lo)) / width_;
    const double diff = density_[i] - candidate;
    err += diff * diff;
  }
  return err;
}

}  // namespace agedtr::stats
