#include "agedtr/stats/model_select.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/stats/fit.hpp"
#include "agedtr/stats/summary.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::stats {

ModelSelection select_model(const std::vector<double>& samples) {
  AGEDTR_REQUIRE(samples.size() >= 10,
                 "select_model: need at least 10 samples");
  // Build the criterion histogram over the bulk of the data (through the
  // 99.5th percentile): heavy-tailed samples otherwise stretch the bin
  // layout until every candidate looks alike. The MLE fits still use every
  // sample; only the squared-error comparison is restricted to the bulk.
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut =
      std::max<std::size_t>(10, static_cast<std::size_t>(
                                    0.995 * static_cast<double>(sorted.size())));
  sorted.resize(std::min(cut, sorted.size()));
  // Resolution: ~1 bin per 100 bulk samples, clamped to [16, 64] — enough
  // to see the density's shape without starving individual bins.
  const std::size_t bins = std::clamp<std::size_t>(sorted.size() / 100, 16, 64);
  const Histogram histogram(sorted, sorted.front(),
                            std::nextafter(sorted.back(),
                                           sorted.back() + 1.0),
                            bins);
  return select_model(samples, histogram);
}

ModelSelection select_model(const std::vector<double>& samples,
                            const Histogram& histogram) {
  AGEDTR_REQUIRE(samples.size() >= 10,
                 "select_model: need at least 10 samples");
  using Fitter = FitResult (*)(const std::vector<double>&);
  static const std::vector<std::pair<std::string, Fitter>> kCandidates = {
      {"exponential", &fit_exponential},
      {"shifted_exponential", &fit_shifted_exponential},
      {"uniform", &fit_uniform},
      {"pareto", &fit_pareto},
      {"gamma", &fit_gamma},
      {"shifted_gamma", &fit_shifted_gamma},
      {"weibull", &fit_weibull},
      {"lognormal", &fit_lognormal},
  };
  ModelSelection result;
  for (const auto& [family, fitter] : kCandidates) {
    FitResult fit;
    try {
      fit = fitter(samples);
    } catch (const InvalidArgument&) {
      continue;  // family rejects this data (e.g. Pareto needs positive data)
    } catch (const ConvergenceError&) {
      continue;
    }
    CandidateFit entry;
    entry.family = family;
    entry.squared_error = histogram.squared_error_vs(*fit.distribution);
    entry.log_likelihood = fit.log_likelihood;
    const auto& d = *fit.distribution;
    entry.ks = ks_distance(samples, [&d](double x) { return d.cdf(x); });
    entry.distribution = std::move(fit.distribution);
    result.ranked.push_back(std::move(entry));
  }
  AGEDTR_REQUIRE(!result.ranked.empty(),
                 "select_model: every candidate family rejected the data");
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const CandidateFit& a, const CandidateFit& b) {
                     return a.squared_error < b.squared_error;
                   });
  return result;
}

}  // namespace agedtr::stats
