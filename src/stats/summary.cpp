#include "agedtr/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "agedtr/numerics/special.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::stats {

Summary summarize(const std::vector<double>& samples) {
  AGEDTR_REQUIRE(!samples.empty(), "summarize: no samples");
  Summary s;
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.front();
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t n = 0;
  for (double x : samples) {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = mean;
  s.variance = s.count > 1 ? m2 / static_cast<double>(s.count - 1) : 0.0;
  s.std_dev = std::sqrt(s.variance);
  return s;
}

ConfidenceInterval mean_confidence_interval(const std::vector<double>& samples,
                                            double level) {
  AGEDTR_REQUIRE(samples.size() >= 2,
                 "mean_confidence_interval: need at least two samples");
  AGEDTR_REQUIRE(level > 0.0 && level < 1.0,
                 "mean_confidence_interval: level must be in (0, 1)");
  const Summary s = summarize(samples);
  const double z = numerics::normal_quantile(0.5 + 0.5 * level);
  const double half =
      z * s.std_dev / std::sqrt(static_cast<double>(s.count));
  return {s.mean, s.mean - half, s.mean + half};
}

ConfidenceInterval proportion_confidence_interval(std::size_t successes,
                                                  std::size_t n,
                                                  double level) {
  AGEDTR_REQUIRE(n >= 1, "proportion_confidence_interval: n must be >= 1");
  AGEDTR_REQUIRE(successes <= n,
                 "proportion_confidence_interval: successes exceed n");
  AGEDTR_REQUIRE(level > 0.0 && level < 1.0,
                 "proportion_confidence_interval: level must be in (0, 1)");
  const double z = numerics::normal_quantile(0.5 + 0.5 * level);
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  return {p, std::max(center - half, 0.0), std::min(center + half, 1.0)};
}

double ks_distance(std::vector<double> samples,
                   const std::function<double(double)>& cdf) {
  AGEDTR_REQUIRE(!samples.empty(), "ks_distance: no samples");
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double ecdf_hi = static_cast<double>(i + 1) / n;
    const double ecdf_lo = static_cast<double>(i) / n;
    d = std::max({d, std::fabs(ecdf_hi - f), std::fabs(f - ecdf_lo)});
  }
  return d;
}

}  // namespace agedtr::stats
