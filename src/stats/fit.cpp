#include "agedtr/stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/lognormal.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/dist/weibull.hpp"
#include "agedtr/numerics/optimize.hpp"
#include "agedtr/numerics/roots.hpp"
#include "agedtr/numerics/special.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::stats {
namespace {

struct Moments {
  double n;
  double mean;
  double min;
  double max;
  double mean_log;  // (1/n) Σ ln x; NaN if any x <= 0
};

Moments moments(const std::vector<double>& samples) {
  AGEDTR_REQUIRE(samples.size() >= 2, "fit: need at least two samples");
  Moments m{static_cast<double>(samples.size()), 0.0, samples[0], samples[0],
            0.0};
  bool has_nonpositive = false;
  for (double x : samples) {
    AGEDTR_REQUIRE(x >= 0.0 && std::isfinite(x),
                   "fit: samples must be nonnegative and finite");
    m.mean += x;
    m.min = std::min(m.min, x);
    m.max = std::max(m.max, x);
    if (x <= 0.0) {
      has_nonpositive = true;
    } else {
      m.mean_log += std::log(x);
    }
  }
  m.mean /= m.n;
  m.mean_log = has_nonpositive
                   ? std::numeric_limits<double>::quiet_NaN()
                   : m.mean_log / m.n;
  return m;
}

FitResult finish(dist::DistPtr d, const std::vector<double>& samples) {
  const double ll = log_likelihood(*d, samples);
  return {std::move(d), ll};
}

// Gamma shape MLE for data already shifted to start near 0; returns
// (shape, scale). `s` is ln x̄ − mean(ln x) >= 0.
std::pair<double, double> gamma_shape_scale(double mean, double s) {
  AGEDTR_REQUIRE(std::isfinite(s) && s > 0.0,
                 "fit_gamma: degenerate data (zero or constant samples)");
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
             (12.0 * s);
  k = std::clamp(k, 1e-3, 1e6);
  for (int it = 0; it < 100; ++it) {
    const double g = std::log(k) - numerics::digamma(k) - s;
    const double gp = 1.0 / k - numerics::trigamma(k);
    double kn = k - g / gp;
    if (!(kn > 0.0)) kn = 0.5 * k;
    if (std::fabs(kn - k) < 1e-12 * k) {
      k = kn;
      break;
    }
    k = kn;
  }
  return {k, mean / k};
}

}  // namespace

double log_likelihood(const dist::Distribution& d,
                      const std::vector<double>& samples) {
  double ll = 0.0;
  for (double x : samples) {
    const double f = d.pdf(x);
    if (!(f > 0.0)) return -std::numeric_limits<double>::infinity();
    ll += std::log(f);
  }
  return ll;
}

FitResult fit_exponential(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  AGEDTR_REQUIRE(m.mean > 0.0, "fit_exponential: zero-mean data");
  return finish(std::make_shared<dist::Exponential>(1.0 / m.mean), samples);
}

FitResult fit_shifted_exponential(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  const double shift = m.min;
  const double residual_mean = m.mean - shift;
  AGEDTR_REQUIRE(residual_mean > 0.0,
                 "fit_shifted_exponential: constant samples");
  return finish(
      std::make_shared<dist::ShiftedExponential>(shift, 1.0 / residual_mean),
      samples);
}

FitResult fit_uniform(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  AGEDTR_REQUIRE(m.max > m.min, "fit_uniform: constant samples");
  // Widen the support by half a ulp so the extreme samples stay interior.
  return finish(std::make_shared<dist::Uniform>(
                    m.min, std::nextafter(m.max, m.max + 1.0)),
                samples);
}

FitResult fit_pareto(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  AGEDTR_REQUIRE(m.min > 0.0, "fit_pareto: requires strictly positive data");
  double sum_log_ratio = 0.0;
  for (double x : samples) sum_log_ratio += std::log(x / m.min);
  AGEDTR_REQUIRE(sum_log_ratio > 0.0, "fit_pareto: constant samples");
  const double alpha = std::max(m.n / sum_log_ratio, 1.0 + 1e-6);
  return finish(std::make_shared<dist::Pareto>(m.min, alpha), samples);
}

FitResult fit_gamma(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  AGEDTR_REQUIRE(std::isfinite(m.mean_log),
                 "fit_gamma: requires strictly positive data");
  const double s = std::log(m.mean) - m.mean_log;
  const auto [shape, scale] = gamma_shape_scale(m.mean, s);
  return finish(std::make_shared<dist::Gamma>(shape, scale), samples);
}

FitResult fit_shifted_gamma(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  AGEDTR_REQUIRE(m.max > m.min, "fit_shifted_gamma: constant samples");
  const double c_max = m.min * (1.0 - 1e-6);
  if (!(c_max > 0.0)) return fit_gamma(samples);  // data reach zero: no shift

  std::vector<double> shifted(samples.size());
  const auto profile_negll = [&](double c) {
    double mean = 0.0;
    double mean_log = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      shifted[i] = samples[i] - c;
      mean += shifted[i];
      mean_log += std::log(shifted[i]);
    }
    mean /= m.n;
    mean_log /= m.n;
    const double s = std::log(mean) - mean_log;
    if (!(s > 0.0) || !std::isfinite(s)) {
      return std::numeric_limits<double>::infinity();
    }
    const auto [shape, scale] = gamma_shape_scale(mean, s);
    const dist::Gamma g(shape, scale);
    return -log_likelihood(g, shifted);
  };
  const auto best = numerics::minimize_scalar(profile_negll, 0.0, c_max, 1e-9);
  const double c = best.x;
  double mean = 0.0;
  double mean_log = 0.0;
  for (double x : samples) {
    mean += x - c;
    mean_log += std::log(x - c);
  }
  mean /= m.n;
  mean_log /= m.n;
  const auto [shape, scale] =
      gamma_shape_scale(mean, std::log(mean) - mean_log);
  return finish(std::make_shared<dist::ShiftedGamma>(c, shape, scale),
                samples);
}

FitResult fit_weibull(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  AGEDTR_REQUIRE(std::isfinite(m.mean_log),
                 "fit_weibull: requires strictly positive data");
  const auto profile = [&](double k) {
    double sum_xk = 0.0;
    double sum_xk_logx = 0.0;
    for (double x : samples) {
      const double xk = std::pow(x, k);
      sum_xk += xk;
      sum_xk_logx += xk * std::log(x);
    }
    return sum_xk_logx / sum_xk - 1.0 / k - m.mean_log;
  };
  const auto bracket = numerics::expand_bracket(profile, 0.05, 5.0);
  const double k = numerics::brent_root(profile, bracket.a, bracket.b, 1e-12);
  double sum_xk = 0.0;
  for (double x : samples) sum_xk += std::pow(x, k);
  const double lambda = std::pow(sum_xk / m.n, 1.0 / k);
  return finish(std::make_shared<dist::Weibull>(k, lambda), samples);
}

FitResult fit_lognormal(const std::vector<double>& samples) {
  const Moments m = moments(samples);
  AGEDTR_REQUIRE(std::isfinite(m.mean_log),
                 "fit_lognormal: requires strictly positive data");
  double ss = 0.0;
  for (double x : samples) {
    const double d = std::log(x) - m.mean_log;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / m.n);
  AGEDTR_REQUIRE(sigma > 0.0, "fit_lognormal: constant samples");
  return finish(std::make_shared<dist::LogNormal>(m.mean_log, sigma),
                samples);
}

}  // namespace agedtr::stats
