// Maximum-likelihood fitters for the candidate families of the testbed
// characterization (Section III-B: "The parameters of the fitted pdfs were
// estimated using maximum likelihood estimators").
//
// Each fitter returns the fitted distribution plus its log-likelihood on the
// data. Boundary-parameter families (shifted exponential, Pareto, uniform)
// use the standard boundary MLEs (shift/xm/min at the sample minimum).
#pragma once

#include <vector>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::stats {

struct FitResult {
  dist::DistPtr distribution;
  double log_likelihood = 0.0;
};

/// Log-likelihood of `d` on the samples (−inf if any sample has zero
/// density).
[[nodiscard]] double log_likelihood(const dist::Distribution& d,
                                    const std::vector<double>& samples);

/// λ̂ = 1/x̄.
[[nodiscard]] FitResult fit_exponential(const std::vector<double>& samples);

/// shift = min(x), rate = 1/(x̄ − shift).
[[nodiscard]] FitResult fit_shifted_exponential(
    const std::vector<double>& samples);

/// [a, b] = [min(x), max(x)].
[[nodiscard]] FitResult fit_uniform(const std::vector<double>& samples);

/// xm = min(x), α = n / Σ ln(x/xm). α is clamped to > 1 so that the fitted
/// law has a finite mean as required by the workload-time model.
[[nodiscard]] FitResult fit_pareto(const std::vector<double>& samples);

/// Shape by Newton on ln k − ψ(k) = ln x̄ − (1/n)Σ ln x, scale = x̄/k.
[[nodiscard]] FitResult fit_gamma(const std::vector<double>& samples);

/// Profile likelihood over the shift; inner gamma MLE. The shift search is
/// restricted to [0, min(x)·(1 − 1e−6)] to avoid the boundary divergence of
/// the three-parameter likelihood.
[[nodiscard]] FitResult fit_shifted_gamma(const std::vector<double>& samples);

/// Shape by Brent on the Weibull profile equation, then closed-form scale.
[[nodiscard]] FitResult fit_weibull(const std::vector<double>& samples);

/// μ = mean(ln x), σ² = (1/n)Σ(ln x − μ)². Requires strictly positive data.
[[nodiscard]] FitResult fit_lognormal(const std::vector<double>& samples);

}  // namespace agedtr::stats
