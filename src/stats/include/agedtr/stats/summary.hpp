// Summary statistics and confidence intervals for Monte-Carlo outputs. The
// paper reports "centers of 95% confidence intervals" for Table II and
// averages of success/failure outcomes for Fig. 4(c); these helpers compute
// both, including the Wilson interval for proportions.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace agedtr::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased (n − 1) estimate
  double std_dev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One-pass (Welford) summary of the samples; requires at least one sample.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

struct ConfidenceInterval {
  double center = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  /// Half-width; center ± half_width == (lower, upper) for symmetric CIs.
  [[nodiscard]] double half_width() const { return 0.5 * (upper - lower); }
};

/// Normal-approximation CI for the mean at the given confidence level
/// (default 0.95). Requires at least two samples.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(
    const std::vector<double>& samples, double level = 0.95);

/// Wilson score interval for a binomial proportion: `successes` out of `n`.
[[nodiscard]] ConfidenceInterval proportion_confidence_interval(
    std::size_t successes, std::size_t n, double level = 0.95);

/// Kolmogorov–Smirnov distance between the empirical CDF of the samples and
/// a reference CDF supplied as a callable.
[[nodiscard]] double ks_distance(std::vector<double> samples,
                                 const std::function<double(double)>& cdf);

}  // namespace agedtr::stats
