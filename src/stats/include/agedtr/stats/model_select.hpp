// The paper's model-selection procedure (Section III-B): fit every candidate
// family by maximum likelihood, then pick the family whose fitted pdf has
// the minimum total squared error against the normalized histogram of the
// data. KS distance and log-likelihood are recorded per candidate so users
// can apply alternative criteria.
#pragma once

#include <string>
#include <vector>

#include "agedtr/dist/distribution.hpp"
#include "agedtr/stats/histogram.hpp"

namespace agedtr::stats {

struct CandidateFit {
  std::string family;
  dist::DistPtr distribution;
  double squared_error = 0.0;   // vs the normalized histogram (paper's rule)
  double log_likelihood = 0.0;
  double ks = 0.0;              // Kolmogorov–Smirnov distance
};

struct ModelSelection {
  /// Candidates ranked by ascending squared error; entry 0 is the winner.
  std::vector<CandidateFit> ranked;

  [[nodiscard]] const CandidateFit& best() const { return ranked.front(); }
};

/// Fits {exponential, shifted-exponential, uniform, pareto, gamma,
/// shifted-gamma, weibull, lognormal} to the samples (candidates whose
/// fitters reject the data are skipped) and ranks them by the histogram
/// squared-error criterion. Requires at least 10 samples.
[[nodiscard]] ModelSelection select_model(const std::vector<double>& samples);

/// Same, with an explicit histogram (bin layout affects the criterion).
[[nodiscard]] ModelSelection select_model(const std::vector<double>& samples,
                                          const Histogram& histogram);

}  // namespace agedtr::stats
