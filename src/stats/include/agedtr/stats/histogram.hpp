// Normalized histograms — the representation the paper fits pdfs against
// ("the normalized histograms as well as fitted pdfs", Fig. 4(a,b)), and the
// total-squared-error criterion it selects models with.
#pragma once

#include <vector>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::stats {

/// An equal-width normalized histogram: density[i] integrates to the bin's
/// probability mass, so the histogram is a piecewise-constant density.
class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal cells; samples outside are clamped to
  /// the boundary bins. Requires bins >= 1 and hi > lo.
  Histogram(const std::vector<double>& samples, double lo, double hi,
            std::size_t bins);

  /// Convenience: spans [min, max] of the samples with a Sturges bin count.
  explicit Histogram(const std::vector<double>& samples);

  [[nodiscard]] std::size_t bins() const { return density_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  /// Normalized density of bin i (integrates to 1 over all bins).
  [[nodiscard]] double density(std::size_t i) const { return density_[i]; }
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t total_count() const { return n_; }

  /// Total squared error between the normalized histogram and a candidate
  /// density — the paper's model-selection criterion (Section III-B). The
  /// candidate's density for bin i is its *bin average*
  /// (F(hi) − F(lo))/width, not the pdf at the center: peaked densities
  /// (Pareto near its minimum) would otherwise be misjudged in wide bins.
  [[nodiscard]] double squared_error_vs(const dist::Distribution& d) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::size_t n_;
  std::vector<std::size_t> counts_;
  std::vector<double> density_;
};

}  // namespace agedtr::stats
