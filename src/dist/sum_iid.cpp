#include "agedtr/dist/sum_iid.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/numerics/kernels.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::dist {
namespace {

Mutex g_lattice_mutex;  // guards the lazy lattice build

}  // namespace

SumIid::SumIid(DistPtr base, unsigned count, std::size_t cells)
    : base_(std::move(base)), count_(count), cells_(cells) {
  AGEDTR_REQUIRE(base_ != nullptr, "SumIid: base distribution is null");
  AGEDTR_REQUIRE(count_ >= 1, "SumIid: count must be >= 1");
  AGEDTR_REQUIRE(cells_ >= 256, "SumIid: need at least 256 lattice cells");
}

void SumIid::ensure_lattice() const {
  MutexLock lock(&g_lattice_mutex);
  if (lattice_) return;
  const double horizon =
      suggest_horizon(*base_, count_, /*tail_budget=*/1e-9) * 1.5;
  const double dt = horizon / static_cast<double>(cells_);
  auto lattice = std::make_shared<numerics::LatticeDensity>(
      discretize(*base_, dt, cells_).convolve_power(count_));
  // CDF interpolant at cell edges for smooth pdf/cdf evaluation: one
  // vectorized prefix sum over the mass vector, clamped into [_, 1].
  const std::size_t n = lattice->size();
  std::vector<double> xs(n + 1), ys(n + 1);
  xs[0] = 0.0;
  ys[0] = 0.0;
  numerics::kernels::prefix_sum(lattice->masses().data(), ys.data() + 1, n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i + 1] = (static_cast<double>(i) + 0.5) * dt;
    ys[i + 1] = std::min(ys[i + 1], 1.0);
  }
  cdf_interp_ = std::make_shared<numerics::PchipInterpolator>(std::move(xs),
                                                              std::move(ys));
  lattice_ = std::move(lattice);
}

double SumIid::pdf(double x) const {
  if (x < lower_bound()) return 0.0;
  ensure_lattice();
  return std::max(cdf_interp_->derivative(x), 0.0);
}

double SumIid::cdf(double x) const {
  if (x < lower_bound()) return 0.0;
  ensure_lattice();
  const double grid_max =
      lattice_->dt() * static_cast<double>(lattice_->size());
  if (x >= grid_max) return 1.0 - sf(x);
  return std::clamp((*cdf_interp_)(x), 0.0, 1.0);
}

double SumIid::sf(double x) const {
  if (x < lower_bound()) return 1.0;
  ensure_lattice();
  const double grid_max =
      lattice_->dt() * static_cast<double>(lattice_->size());
  if (x < grid_max) return std::clamp(1.0 - (*cdf_interp_)(x), 0.0, 1.0);
  // Beyond the grid: one-big-jump estimate, capped by the tracked tail.
  const double shifted =
      x - static_cast<double>(count_ - 1) * base_->mean();
  const double estimate =
      static_cast<double>(count_) * base_->sf(std::max(shifted, 0.0));
  return std::min(estimate, lattice_->tail());
}

double SumIid::mean() const {
  return static_cast<double>(count_) * base_->mean();
}

double SumIid::variance() const {
  return static_cast<double>(count_) * base_->variance();
}

double SumIid::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return Distribution::quantile(p);
}

double SumIid::sample(random::Rng& rng) const {
  double total = 0.0;
  for (unsigned i = 0; i < count_; ++i) total += base_->sample(rng);
  return total;
}

double SumIid::lower_bound() const {
  return static_cast<double>(count_) * base_->lower_bound();
}

double SumIid::integral_sf(double t) const {
  if (t < 0.0) return -t + integral_sf(0.0);
  ensure_lattice();
  const double grid_max =
      lattice_->dt() * static_cast<double>(lattice_->size());
  if (t >= grid_max) {
    const double shifted =
        t - static_cast<double>(count_ - 1) * base_->mean();
    return static_cast<double>(count_) *
           base_->integral_sf(std::max(shifted, 0.0));
  }
  // Grid part by the lattice rectangle rule plus the analytic tail.
  double acc = 0.0;
  const double dt = lattice_->dt();
  const auto start = static_cast<std::size_t>(t / dt);
  for (std::size_t i = start; i < lattice_->size(); ++i) {
    acc += (1.0 - lattice_->cdf(i)) * dt;
  }
  return acc + integral_sf(grid_max) - 0.0;
}

double SumIid::laplace(double s) const {
  return std::pow(base_->laplace(s), static_cast<double>(count_));
}

std::string SumIid::describe() const {
  return "sum_iid(" + base_->describe() + ", count=" +
         std::to_string(count_) + ")";
}

DistPtr sum_iid(DistPtr base, unsigned count) {
  AGEDTR_REQUIRE(base != nullptr, "sum_iid: base distribution is null");
  AGEDTR_REQUIRE(count >= 1, "sum_iid: count must be >= 1");
  if (count == 1) return base;
  return std::make_shared<SumIid>(std::move(base), count);
}

}  // namespace agedtr::dist
