#include "agedtr/dist/lattice_bridge.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::dist {

numerics::LatticeDensity discretize(const Distribution& d, double dt,
                                    std::size_t n) {
  AGEDTR_REQUIRE(dt > 0.0, "discretize: dt must be positive");
  AGEDTR_REQUIRE(n >= 2, "discretize: need at least two cells");
  std::vector<double> mass(n, 0.0);
  double prev_cdf = 0.0;
  // Skip directly to the support: below lower_bound the CDF is zero.
  const double lb = d.lower_bound();
  std::size_t i0 = 0;
  if (lb > 0.0) {
    i0 = static_cast<std::size_t>(
        std::min(std::floor(lb / dt), static_cast<double>(n - 1)));
  }
  if (i0 > 0) prev_cdf = d.cdf((static_cast<double>(i0) - 0.5) * dt);
  for (std::size_t i = i0; i < n; ++i) {
    const double upper = (static_cast<double>(i) + 0.5) * dt;
    const double c = d.cdf(upper);
    mass[i] = std::max(c - prev_cdf, 0.0);
    prev_cdf = c;
  }
  const double tail = d.sf((static_cast<double>(n) - 0.5) * dt);
  // Guard against prev_cdf + tail slightly exceeding 1 from CDF round-off.
  double sum = 0.0;
  for (double m : mass) sum += m;
  if (sum + tail > 1.0) {
    const double scale = (1.0 - tail) / sum;
    if (scale > 0.0 && scale < 1.0) {
      for (double& m : mass) m *= scale;
    }
  }
  return numerics::LatticeDensity(dt, std::move(mass), tail);
}

double suggest_horizon(const Distribution& d, unsigned k,
                       double tail_budget) {
  AGEDTR_REQUIRE(tail_budget > 0.0 && tail_budget < 1.0,
                 "suggest_horizon: tail_budget must be in (0, 1)");
  if (k == 0) return 1.0;
  const double mean = d.mean();
  if (k == 1) return d.quantile(1.0 - tail_budget);
  // Subexponential heuristic: the k-fold sum's tail is dominated by one big
  // jump plus (k−1) typical summands.
  const double per_copy = tail_budget / static_cast<double>(k);
  const double q = d.quantile(1.0 - std::min(per_copy, 0.5));
  return static_cast<double>(k - 1) * mean + q;
}

}  // namespace agedtr::dist
