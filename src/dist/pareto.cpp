#include "agedtr/dist/pareto.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  AGEDTR_REQUIRE(xm > 0.0, "Pareto: xm must be positive");
  AGEDTR_REQUIRE(alpha > 1.0, "Pareto: alpha must exceed 1 (finite mean)");
}

double Pareto::pdf(double x) const {
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_ / x, alpha_) / x;
}

double Pareto::cdf(double x) const {
  return x < xm_ ? 0.0 : 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::sf(double x) const {
  return x < xm_ ? 1.0 : std::pow(xm_ / x, alpha_);
}

double Pareto::mean() const { return alpha_ * xm_ / (alpha_ - 1.0); }

double Pareto::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  return xm_ * xm_ * alpha_ /
         ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

double Pareto::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return xm_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double Pareto::sample(random::Rng& rng) const {
  const double u = rng.next_double();  // in [0, 1)
  return xm_ * std::pow(1.0 - u, -1.0 / alpha_);
}

double Pareto::integral_sf(double t) const {
  if (t <= xm_) {
    return (xm_ - t) + xm_ / (alpha_ - 1.0);
  }
  return std::pow(xm_ / t, alpha_) * t / (alpha_ - 1.0);
}

std::string Pareto::describe() const {
  return "pareto(xm=" + format_double(xm_) + ", alpha=" + format_double(alpha_) +
         ")";
}

DistPtr Pareto::with_mean(double mean, double alpha) {
  AGEDTR_REQUIRE(mean > 0.0, "Pareto::with_mean: mean must be positive");
  AGEDTR_REQUIRE(alpha > 1.0, "Pareto::with_mean: alpha must exceed 1");
  return std::make_shared<Pareto>(mean * (alpha - 1.0) / alpha, alpha);
}

Lomax::Lomax(double scale, double alpha) : scale_(scale), alpha_(alpha) {
  AGEDTR_REQUIRE(scale > 0.0, "Lomax: scale must be positive");
  AGEDTR_REQUIRE(alpha > 1.0, "Lomax: alpha must exceed 1 (finite mean)");
}

double Lomax::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return alpha_ / scale_ * std::pow(1.0 + x / scale_, -(alpha_ + 1.0));
}

double Lomax::cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::pow(1.0 + x / scale_, -alpha_);
}

double Lomax::sf(double x) const {
  return x < 0.0 ? 1.0 : std::pow(1.0 + x / scale_, -alpha_);
}

double Lomax::mean() const { return scale_ / (alpha_ - 1.0); }

double Lomax::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  return scale_ * scale_ * alpha_ /
         ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

double Lomax::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return scale_ * (std::pow(1.0 - p, -1.0 / alpha_) - 1.0);
}

double Lomax::sample(random::Rng& rng) const {
  const double u = rng.next_double();
  return scale_ * (std::pow(1.0 - u, -1.0 / alpha_) - 1.0);
}

double Lomax::integral_sf(double t) const {
  if (t < 0.0) return -t + mean();
  return scale_ * std::pow(1.0 + t / scale_, 1.0 - alpha_) / (alpha_ - 1.0);
}

std::string Lomax::describe() const {
  return "lomax(scale=" + format_double(scale_) +
         ", alpha=" + format_double(alpha_) + ")";
}

}  // namespace agedtr::dist
