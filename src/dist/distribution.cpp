#include "agedtr/dist/distribution.hpp"

#include <cmath>
#include <limits>

#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/numerics/roots.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::dist {

double Distribution::hazard(double x) const {
  const double s = sf(x);
  const double f = pdf(x);
  if (s <= 0.0) {
    return f > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return f / s;
}

double Distribution::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  // Bracket the quantile starting from [lower_bound, lower_bound + mean].
  const double lo0 = lower_bound();
  double hi0 = lo0 + std::max(mean(), 1.0);
  const auto g = [this, p](double x) { return cdf(x) - p; };
  double lo = lo0;
  double hi = hi0;
  for (int i = 0; i < 200 && g(hi) < 0.0; ++i) {
    lo = hi;
    hi = lo0 + 2.0 * (hi - lo0);
  }
  AGEDTR_REQUIRE(g(hi) >= 0.0, "quantile: failed to bracket");
  return numerics::brent_root(g, lo, hi, 1e-12);
}

double Distribution::sample(random::Rng& rng) const {
  // Uniform in (0, 1): shift away from exactly 0 to keep quantile() legal.
  double u = rng.next_double();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return quantile(u);
}

double Distribution::integral_sf(double t) const {
  const double lo = std::max(t, lower_bound());
  const double head = lo > t ? lo - t : 0.0;  // S == 1 below the support
  const double hi = upper_bound();
  if (std::isfinite(hi)) {
    if (lo >= hi) return head;
    return head + numerics::integrate([this](double u) { return sf(u); }, lo,
                                      hi)
                      .value;
  }
  return head +
         numerics::integrate_to_infinity([this](double u) { return sf(u); },
                                         lo)
             .value;
}

double Distribution::laplace(double s) const {
  AGEDTR_REQUIRE(s >= 0.0, "laplace requires s >= 0");
  if (s == 0.0) return 1.0;
  // E[e^{-sX}] = 1 − s·∫_0^∞ e^{-su} F̄(u) du ... simpler: integrate the
  // density directly; the exponential damping keeps the integrand benign.
  const double lo = lower_bound();
  const double hi = upper_bound();
  const auto g = [this, s](double u) { return std::exp(-s * u) * pdf(u); };
  if (std::isfinite(hi)) return numerics::integrate(g, lo, hi).value;
  return numerics::integrate_to_infinity(g, lo).value;
}

}  // namespace agedtr::dist
