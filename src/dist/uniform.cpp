#include "agedtr/dist/uniform.hpp"

#include <cmath>
#include <memory>
#include <string>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

Uniform::Uniform(double a, double b) : a_(a), b_(b) {
  AGEDTR_REQUIRE(a >= 0.0, "Uniform: a must be >= 0");
  AGEDTR_REQUIRE(b > a, "Uniform: b must exceed a");
}

double Uniform::pdf(double x) const {
  return (x < a_ || x > b_) ? 0.0 : 1.0 / (b_ - a_);
}

double Uniform::cdf(double x) const {
  if (x <= a_) return 0.0;
  if (x >= b_) return 1.0;
  return (x - a_) / (b_ - a_);
}

double Uniform::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return a_ + p * (b_ - a_);
}

double Uniform::sample(random::Rng& rng) const {
  return a_ + rng.next_double() * (b_ - a_);
}

double Uniform::integral_sf(double t) const {
  if (t >= b_) return 0.0;
  if (t <= a_) return (a_ - t) + 0.5 * (b_ - a_);
  const double r = b_ - t;
  return r * r / (2.0 * (b_ - a_));
}

double Uniform::laplace(double s) const {
  if (s == 0.0) return 1.0;
  return (std::exp(-s * a_) - std::exp(-s * b_)) / (s * (b_ - a_));
}

std::string Uniform::describe() const {
  return "uniform(a=" + format_double(a_) + ", b=" + format_double(b_) + ")";
}

DistPtr Uniform::with_mean(double mean) {
  AGEDTR_REQUIRE(mean > 0.0, "Uniform::with_mean: mean must be positive");
  return std::make_shared<Uniform>(0.0, 2.0 * mean);
}

}  // namespace agedtr::dist
