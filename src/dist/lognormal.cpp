#include "agedtr/dist/lognormal.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "agedtr/numerics/special.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  AGEDTR_REQUIRE(sigma > 0.0 && std::isfinite(sigma),
                 "LogNormal: sigma must be positive and finite");
  AGEDTR_REQUIRE(std::isfinite(mu), "LogNormal: mu must be finite");
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return numerics::normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return std::exp(mu_ + sigma_ * numerics::normal_quantile(p));
}

double LogNormal::sample(random::Rng& rng) const {
  double u = rng.next_double();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return quantile(u);
}

std::string LogNormal::describe() const {
  return "lognormal(mu=" + format_double(mu_) +
         ", sigma=" + format_double(sigma_) + ")";
}

}  // namespace agedtr::dist
