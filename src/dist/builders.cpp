#include "agedtr/dist/builders.hpp"

#include <string>
#include <vector>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/uniform.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::dist {

const std::vector<ModelFamily>& all_model_families() {
  static const std::vector<ModelFamily> families = {
      ModelFamily::kExponential, ModelFamily::kPareto1, ModelFamily::kPareto2,
      ModelFamily::kShiftedExponential, ModelFamily::kUniform};
  return families;
}

std::string model_family_name(ModelFamily family) {
  switch (family) {
    case ModelFamily::kExponential:
      return "Exponential";
    case ModelFamily::kPareto1:
      return "Pareto 1";
    case ModelFamily::kPareto2:
      return "Pareto 2";
    case ModelFamily::kShiftedExponential:
      return "Shifted-Exponential";
    case ModelFamily::kUniform:
      return "Uniform";
  }
  throw LogicError("model_family_name: unknown family");
}

ModelFamily parse_model_family(const std::string& name) {
  for (ModelFamily family : all_model_families()) {
    if (name == model_family_name(family)) return family;
  }
  if (name == "exponential") return ModelFamily::kExponential;
  if (name == "pareto1") return ModelFamily::kPareto1;
  if (name == "pareto2") return ModelFamily::kPareto2;
  if (name == "shifted_exponential") return ModelFamily::kShiftedExponential;
  if (name == "uniform") return ModelFamily::kUniform;
  AGEDTR_REQUIRE(false, "parse_model_family: unknown family: " + name);
}

DistPtr make_model_distribution(ModelFamily family, double mean) {
  AGEDTR_REQUIRE(mean > 0.0,
                 "make_model_distribution: mean must be positive");
  switch (family) {
    case ModelFamily::kExponential:
      return Exponential::with_mean(mean);
    case ModelFamily::kPareto1:
      return Pareto::with_mean(mean, kPareto1Alpha);
    case ModelFamily::kPareto2:
      return Pareto::with_mean(mean, kPareto2Alpha);
    case ModelFamily::kShiftedExponential:
      return ShiftedExponential::with_mean(mean);
    case ModelFamily::kUniform:
      return Uniform::with_mean(mean);
  }
  throw LogicError("make_model_distribution: unknown family");
}

}  // namespace agedtr::dist
