#include "agedtr/dist/weibull.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "agedtr/numerics/special.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  AGEDTR_REQUIRE(shape > 0.0 && std::isfinite(shape),
                 "Weibull: shape must be positive and finite");
  AGEDTR_REQUIRE(scale > 0.0 && std::isfinite(scale),
                 "Weibull: scale must be positive and finite");
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return std::numeric_limits<double>::infinity();
    return shape_ == 1.0 ? 1.0 / scale_ : 0.0;
  }
  const double z = x / scale_;
  return shape_ / scale_ * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  return x <= 0.0 ? 0.0 : -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::sf(double x) const {
  return x <= 0.0 ? 1.0 : std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::hazard(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return pdf(0.0);
  return shape_ / scale_ * std::pow(x / scale_, shape_ - 1.0);
}

double Weibull::mean() const {
  return scale_ * std::exp(numerics::log_gamma(1.0 + 1.0 / shape_));
}

double Weibull::variance() const {
  const double g1 = std::exp(numerics::log_gamma(1.0 + 1.0 / shape_));
  const double g2 = std::exp(numerics::log_gamma(1.0 + 2.0 / shape_));
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::sample(random::Rng& rng) const {
  return scale_ * std::pow(-std::log1p(-rng.next_double()), 1.0 / shape_);
}

std::string Weibull::describe() const {
  return "weibull(shape=" + format_double(shape_) +
         ", scale=" + format_double(scale_) + ")";
}

DistPtr Weibull::with_mean(double mean, double shape) {
  AGEDTR_REQUIRE(mean > 0.0, "Weibull::with_mean: mean must be positive");
  const double scale =
      mean / std::exp(numerics::log_gamma(1.0 + 1.0 / shape));
  return std::make_shared<Weibull>(shape, scale);
}

}  // namespace agedtr::dist
