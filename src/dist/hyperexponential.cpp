#include "agedtr/dist/hyperexponential.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

HyperExponential::HyperExponential(std::vector<double> weights,
                                   std::vector<double> rates)
    : weights_(std::move(weights)), rates_(std::move(rates)) {
  AGEDTR_REQUIRE(!weights_.empty() && weights_.size() == rates_.size(),
                 "HyperExponential: weights/rates size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    AGEDTR_REQUIRE(weights_[i] >= 0.0, "HyperExponential: negative weight");
    AGEDTR_REQUIRE(rates_[i] > 0.0 && std::isfinite(rates_[i]),
                   "HyperExponential: rates must be positive and finite");
    total += weights_[i];
  }
  AGEDTR_REQUIRE(std::fabs(total - 1.0) < 1e-9 || total > 0.0,
                 "HyperExponential: weights must have positive total");
  for (double& w : weights_) w /= total;
}

double HyperExponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  double f = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    f += weights_[i] * rates_[i] * std::exp(-rates_[i] * x);
  }
  return f;
}

double HyperExponential::cdf(double x) const { return 1.0 - sf(x); }

double HyperExponential::sf(double x) const {
  if (x < 0.0) return 1.0;
  double s = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    s += weights_[i] * std::exp(-rates_[i] * x);
  }
  return s;
}

double HyperExponential::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    m += weights_[i] / rates_[i];
  }
  return m;
}

double HyperExponential::variance() const {
  double m2 = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    m2 += 2.0 * weights_[i] / (rates_[i] * rates_[i]);
  }
  const double m = mean();
  return m2 - m * m;
}

double HyperExponential::scv() const {
  const double m = mean();
  return variance() / (m * m);
}

double HyperExponential::sample(random::Rng& rng) const {
  double u = rng.next_double();
  std::size_t phase = rates_.size() - 1;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (u < weights_[i]) {
      phase = i;
      break;
    }
    u -= weights_[i];
  }
  return -std::log1p(-rng.next_double()) / rates_[phase];
}

double HyperExponential::integral_sf(double t) const {
  if (t < 0.0) return -t + integral_sf(0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    acc += weights_[i] * std::exp(-rates_[i] * t) / rates_[i];
  }
  return acc;
}

double HyperExponential::laplace(double s) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    acc += weights_[i] * rates_[i] / (rates_[i] + s);
  }
  return acc;
}

std::string HyperExponential::describe() const {
  std::string out = "hyperexponential(";
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    if (i) out += ", ";
    out += format_double(weights_[i], 3) + "@rate=" +
           format_double(rates_[i], 3);
  }
  return out + ")";
}

DistPtr HyperExponential::with_mean_scv(double mean, double scv) {
  AGEDTR_REQUIRE(mean > 0.0, "with_mean_scv: mean must be positive");
  AGEDTR_REQUIRE(scv >= 1.0,
                 "with_mean_scv: a hyperexponential needs scv >= 1");
  if (scv == 1.0) {
    return std::make_shared<HyperExponential>(std::vector<double>{1.0},
                                              std::vector<double>{1.0 / mean});
  }
  // Balanced-means two-phase fit: p/λ1 = (1−p)/λ2 = mean/2.
  const double p =
      0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double lambda1 = 2.0 * p / mean;
  const double lambda2 = 2.0 * (1.0 - p) / mean;
  return std::make_shared<HyperExponential>(std::vector<double>{p, 1.0 - p},
                                            std::vector<double>{lambda1,
                                                                lambda2});
}

DistPtr fit_hyperexponential_em(const std::vector<double>& samples,
                                std::size_t phases, int iterations) {
  AGEDTR_REQUIRE(samples.size() >= 2 * phases,
                 "fit_hyperexponential_em: not enough samples");
  AGEDTR_REQUIRE(phases >= 1, "fit_hyperexponential_em: phases must be >= 1");
  for (double x : samples) {
    AGEDTR_REQUIRE(x >= 0.0 && std::isfinite(x),
                   "fit_hyperexponential_em: samples must be nonnegative");
  }
  const double sample_mean =
      std::accumulate(samples.begin(), samples.end(), 0.0) /
      static_cast<double>(samples.size());
  AGEDTR_REQUIRE(sample_mean > 0.0,
                 "fit_hyperexponential_em: degenerate all-zero data");

  // Initialization: rates spread geometrically around 1/mean.
  std::vector<double> weights(phases, 1.0 / static_cast<double>(phases));
  std::vector<double> rates(phases);
  for (std::size_t k = 0; k < phases; ++k) {
    rates[k] = std::pow(3.0, static_cast<double>(k) -
                                 static_cast<double>(phases - 1) / 2.0) /
               sample_mean;
  }

  std::vector<double> resp(phases);
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> new_weight(phases, 0.0);
    std::vector<double> weighted_sum(phases, 0.0);
    for (double x : samples) {
      double denom = 0.0;
      for (std::size_t k = 0; k < phases; ++k) {
        resp[k] = weights[k] * rates[k] * std::exp(-rates[k] * x);
        denom += resp[k];
      }
      if (!(denom > 0.0)) {
        throw ConvergenceError(
            "fit_hyperexponential_em: likelihood degenerated");
      }
      for (std::size_t k = 0; k < phases; ++k) {
        const double r = resp[k] / denom;
        new_weight[k] += r;
        weighted_sum[k] += r * x;
      }
    }
    double delta = 0.0;
    for (std::size_t k = 0; k < phases; ++k) {
      const double w = new_weight[k] / static_cast<double>(samples.size());
      const double phase_mean =
          new_weight[k] > 0.0 ? weighted_sum[k] / new_weight[k]
                              : sample_mean;
      const double rate = 1.0 / std::max(phase_mean, 1e-12 * sample_mean);
      delta = std::max(delta, std::fabs(w - weights[k]));
      delta = std::max(delta, std::fabs(rate - rates[k]) / rates[k]);
      weights[k] = w;
      rates[k] = rate;
    }
    if (delta < 1e-10) break;
  }
  return std::make_shared<HyperExponential>(std::move(weights),
                                            std::move(rates));
}

}  // namespace agedtr::dist
