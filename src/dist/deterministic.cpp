#include "agedtr/dist/deterministic.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

Deterministic::Deterministic(double c) : c_(c) {
  AGEDTR_REQUIRE(c >= 0.0 && std::isfinite(c),
                 "Deterministic: value must be nonnegative and finite");
}

double Deterministic::pdf(double) const { return 0.0; }

double Deterministic::cdf(double x) const { return x >= c_ ? 1.0 : 0.0; }

double Deterministic::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return c_;
}

double Deterministic::sample(random::Rng&) const { return c_; }

double Deterministic::integral_sf(double t) const {
  return std::max(c_ - t, 0.0);
}

double Deterministic::laplace(double s) const { return std::exp(-s * c_); }

std::string Deterministic::describe() const {
  return "deterministic(c=" + format_double(c_) + ")";
}

}  // namespace agedtr::dist
