#include "agedtr/dist/exponential.hpp"

#include <cmath>
#include <memory>
#include <string>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

Exponential::Exponential(double rate) : rate_(rate) {
  AGEDTR_REQUIRE(rate > 0.0 && std::isfinite(rate),
                 "Exponential: rate must be positive and finite");
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const {
  return x < 0.0 ? 0.0 : -std::expm1(-rate_ * x);
}

double Exponential::sf(double x) const {
  return x < 0.0 ? 1.0 : std::exp(-rate_ * x);
}

double Exponential::hazard(double x) const { return x < 0.0 ? 0.0 : rate_; }

double Exponential::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(random::Rng& rng) const {
  return -std::log1p(-rng.next_double()) / rate_;
}

double Exponential::integral_sf(double t) const {
  return t <= 0.0 ? -t + 1.0 / rate_ : std::exp(-rate_ * t) / rate_;
}

double Exponential::laplace(double s) const { return rate_ / (rate_ + s); }

std::string Exponential::describe() const {
  return "exponential(rate=" + format_double(rate_) + ")";
}

DistPtr Exponential::with_mean(double mean) {
  AGEDTR_REQUIRE(mean > 0.0, "Exponential::with_mean: mean must be positive");
  return std::make_shared<Exponential>(1.0 / mean);
}

ShiftedExponential::ShiftedExponential(double shift, double rate)
    : shift_(shift), rate_(rate) {
  AGEDTR_REQUIRE(shift >= 0.0, "ShiftedExponential: shift must be >= 0");
  AGEDTR_REQUIRE(rate > 0.0 && std::isfinite(rate),
                 "ShiftedExponential: rate must be positive and finite");
}

double ShiftedExponential::pdf(double x) const {
  return x < shift_ ? 0.0 : rate_ * std::exp(-rate_ * (x - shift_));
}

double ShiftedExponential::cdf(double x) const {
  return x < shift_ ? 0.0 : -std::expm1(-rate_ * (x - shift_));
}

double ShiftedExponential::sf(double x) const {
  return x < shift_ ? 1.0 : std::exp(-rate_ * (x - shift_));
}

double ShiftedExponential::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return shift_ - std::log1p(-p) / rate_;
}

double ShiftedExponential::sample(random::Rng& rng) const {
  return shift_ - std::log1p(-rng.next_double()) / rate_;
}

double ShiftedExponential::integral_sf(double t) const {
  if (t <= shift_) return (shift_ - t) + 1.0 / rate_;
  return std::exp(-rate_ * (t - shift_)) / rate_;
}

double ShiftedExponential::laplace(double s) const {
  return std::exp(-s * shift_) * rate_ / (rate_ + s);
}

std::string ShiftedExponential::describe() const {
  return "shifted_exponential(shift=" + format_double(shift_) +
         ", rate=" + format_double(rate_) + ")";
}

DistPtr ShiftedExponential::with_mean(double mean) {
  AGEDTR_REQUIRE(mean > 0.0,
                 "ShiftedExponential::with_mean: mean must be positive");
  return std::make_shared<ShiftedExponential>(mean / 2.0, 2.0 / mean);
}

}  // namespace agedtr::dist
