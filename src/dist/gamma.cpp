#include "agedtr/dist/gamma.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "agedtr/numerics/special.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

using numerics::gamma_p;
using numerics::gamma_p_inv;
using numerics::gamma_q;
using numerics::log_gamma;
using numerics::normal_quantile;

Gamma::Gamma(double shape, double scale)
    : shape_(shape),
      scale_(scale),
      log_norm_(-log_gamma(shape) - shape * std::log(scale)) {
  AGEDTR_REQUIRE(shape > 0.0 && std::isfinite(shape),
                 "Gamma: shape must be positive and finite");
  AGEDTR_REQUIRE(scale > 0.0 && std::isfinite(scale),
                 "Gamma: scale must be positive and finite");
}

double Gamma::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return std::numeric_limits<double>::infinity();
    return shape_ == 1.0 ? 1.0 / scale_ : 0.0;
  }
  return std::exp(log_norm_ + (shape_ - 1.0) * std::log(x) - x / scale_);
}

double Gamma::cdf(double x) const {
  return x <= 0.0 ? 0.0 : gamma_p(shape_, x / scale_);
}

double Gamma::sf(double x) const {
  return x <= 0.0 ? 1.0 : gamma_q(shape_, x / scale_);
}

double Gamma::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return scale_ * gamma_p_inv(shape_, p);
}

double Gamma::sample(random::Rng& rng) const {
  // Marsaglia–Tsang squeeze; the shape < 1 case uses the boost
  // Gamma(k) = Gamma(k+1)·U^{1/k}.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    double u = rng.next_double();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    boost = std::pow(u, 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double u = rng.next_double();
    if (u <= 0.0 || u >= 1.0) continue;
    const double z = normal_quantile(u);
    const double v_lin = 1.0 + c * z;
    if (v_lin <= 0.0) continue;
    const double v = v_lin * v_lin * v_lin;
    double u2 = rng.next_double();
    if (u2 <= 0.0) u2 = std::numeric_limits<double>::min();
    if (std::log(u2) < 0.5 * z * z + d - d * v + d * std::log(v)) {
      return boost * d * v * scale_;
    }
  }
}

double Gamma::integral_sf(double t) const {
  // E[(X − t)+] = kθ·Q(k+1, t/θ) − t·Q(k, t/θ).
  if (t <= 0.0) return -t + mean();
  const double x = t / scale_;
  return shape_ * scale_ * gamma_q(shape_ + 1.0, x) - t * gamma_q(shape_, x);
}

double Gamma::laplace(double s) const {
  return std::pow(1.0 + s * scale_, -shape_);
}

std::string Gamma::describe() const {
  return "gamma(shape=" + format_double(shape_) +
         ", scale=" + format_double(scale_) + ")";
}

ShiftedGamma::ShiftedGamma(double shift, double shape, double scale)
    : shift_(shift), gamma_(shape, scale) {
  AGEDTR_REQUIRE(shift >= 0.0, "ShiftedGamma: shift must be >= 0");
}

double ShiftedGamma::pdf(double x) const { return gamma_.pdf(x - shift_); }

double ShiftedGamma::cdf(double x) const { return gamma_.cdf(x - shift_); }

double ShiftedGamma::sf(double x) const { return gamma_.sf(x - shift_); }

double ShiftedGamma::quantile(double p) const {
  return shift_ + gamma_.quantile(p);
}

double ShiftedGamma::sample(random::Rng& rng) const {
  return shift_ + gamma_.sample(rng);
}

double ShiftedGamma::integral_sf(double t) const {
  if (t <= shift_) return (shift_ - t) + gamma_.integral_sf(0.0);
  return gamma_.integral_sf(t - shift_);
}

double ShiftedGamma::laplace(double s) const {
  return std::exp(-s * shift_) * gamma_.laplace(s);
}

std::string ShiftedGamma::describe() const {
  return "shifted_gamma(shift=" + format_double(shift_) +
         ", shape=" + format_double(shape()) +
         ", scale=" + format_double(scale()) + ")";
}

}  // namespace agedtr::dist
