// Log-normal law — included as a candidate family for the testbed
// characterization pipeline (heavy-ish tail, support (0, ∞)).
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

/// LogNormal(mu, sigma): ln X ~ N(mu, sigma²).
class LogNormal final : public Distribution {
 public:
  /// sigma > 0.
  LogNormal(double mu, double sigma);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "lognormal"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace agedtr::dist
