// Composition laws for the replication analysis: the scaled law c·X (a
// service law dilated by a worst-case slowdown factor), the independent sum
// A + B (a replica's transfer-plus-service completion time), and the
// minimum of independent laws (the cancel-on-first-completion race, whose
// survival function is the min-of-r product ∏ S_i the analytic bounds are
// built from).
//
// Scaled has closed forms throughout. Convolved evaluates its integrals by
// adaptive quadrature over the *first* operand's density, so pass the
// analytically cheap law (a transfer family) first and the lattice-backed
// one (a SumIid service sum) second. MinOf multiplies survivals and
// integrates for its moments.
#pragma once

#include <string>
#include <vector>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::dist {

class Scaled final : public Distribution {
 public:
  /// The law of factor·X; factor > 0 and finite.
  Scaled(DistPtr base, double factor);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double upper_bound() const override;
  [[nodiscard]] bool is_memoryless() const override;
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "scaled"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const DistPtr& base() const { return base_; }
  [[nodiscard]] double factor() const { return factor_; }

 private:
  DistPtr base_;
  double factor_;
};

class Convolved final : public Distribution {
 public:
  /// The law of A + B with A, B independent. Quadrature runs over A's
  /// density; point-mass operands (lower_bound == upper_bound) reduce to
  /// exact shifts.
  Convolved(DistPtr a, DistPtr b);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  /// Draws A then B (the order is part of the determinism contract).
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double upper_bound() const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "convolved"; }
  [[nodiscard]] std::string describe() const override;

 private:
  DistPtr a_;
  DistPtr b_;
};

class MinOf final : public Distribution {
 public:
  /// The law of min over independent components; at least one component.
  explicit MinOf(std::vector<DistPtr> components);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  /// The min-of-r product: S(x) = ∏ S_i(x).
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  /// Draws every component in order and keeps the smallest.
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double upper_bound() const override;
  [[nodiscard]] bool is_memoryless() const override;
  [[nodiscard]] std::string name() const override { return "min_of"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::vector<DistPtr>& components() const {
    return components_;
  }

 private:
  std::vector<DistPtr> components_;
};

class MaxOf final : public Distribution {
 public:
  /// The law of max over independent components; at least one component.
  explicit MaxOf(std::vector<DistPtr> components);

  [[nodiscard]] double pdf(double x) const override;
  /// The product of component CDFs: F(x) = ∏ F_i(x).
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  /// Draws every component in order and keeps the largest.
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double upper_bound() const override;
  [[nodiscard]] std::string name() const override { return "max_of"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::vector<DistPtr>& components() const {
    return components_;
  }

 private:
  std::vector<DistPtr> components_;
};

/// factor·X; returns `base` itself when factor == 1.
[[nodiscard]] DistPtr scaled(DistPtr base, double factor);

/// A + B with A, B independent.
[[nodiscard]] DistPtr convolved(DistPtr a, DistPtr b);

/// min of independent components; returns the sole component when there is
/// exactly one.
[[nodiscard]] DistPtr min_of(std::vector<DistPtr> components);

/// max of independent components; returns the sole component when there is
/// exactly one.
[[nodiscard]] DistPtr max_of(std::vector<DistPtr> components);

}  // namespace agedtr::dist
