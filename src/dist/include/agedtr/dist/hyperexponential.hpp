// Hyperexponential law: a finite mixture of exponentials. A classic model
// for task and transfer times whose coefficient of variation exceeds 1
// (bursty networks, bimodal service) while remaining analytically friendly
// — its Laplace transform, tail integral and hazard are closed-form, and it
// is a dense subclass of phase-type laws. Complements the paper's model
// zoo for ablations on tail weight at fixed mean.
#pragma once

#include <string>
#include <vector>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::dist {

class HyperExponential final : public Distribution {
 public:
  /// weights[i] >= 0 summing to 1 (renormalized within 1e-9), rates[i] > 0.
  HyperExponential(std::vector<double> weights, std::vector<double> rates);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override {
    return "hyperexponential";
  }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }
  [[nodiscard]] std::size_t phases() const { return rates_.size(); }

  /// Coefficient of variation squared (>= 1 for any hyperexponential).
  [[nodiscard]] double scv() const;

  /// Two-phase hyperexponential with the given mean and squared coefficient
  /// of variation scv >= 1, using balanced means (the standard two-moment
  /// fit): p/λ₁ = (1−p)/λ₂.
  [[nodiscard]] static DistPtr with_mean_scv(double mean, double scv);

 private:
  std::vector<double> weights_;
  std::vector<double> rates_;
};

/// EM fit of a k-phase hyperexponential to nonnegative samples. Returns the
/// fitted law; `iterations` bounds the EM sweeps. Throws ConvergenceError
/// when the likelihood degenerates (e.g. k too large for the data).
[[nodiscard]] DistPtr fit_hyperexponential_em(
    const std::vector<double>& samples, std::size_t phases = 2,
    int iterations = 200);

}  // namespace agedtr::dist
