// Bridges the continuous Distribution interface to the LatticeDensity used
// by the convolution solver: nearest-lattice-point discretization with an
// explicit tail, plus a helper that picks a grid horizon wide enough for a
// k-fold sum of a (possibly heavy-tailed) law.
#pragma once

#include <cstddef>

#include "agedtr/dist/distribution.hpp"
#include "agedtr/numerics/lattice.hpp"

namespace agedtr::dist {

/// Discretizes X onto {0, dt, …, (n−1)dt}:
/// mass[0] = F(dt/2), mass[i] = F((i+½)dt) − F((i−½)dt), tail = S((n−½)dt).
[[nodiscard]] numerics::LatticeDensity discretize(const Distribution& d,
                                                  double dt, std::size_t n);

/// Chooses a grid horizon t_max such that the k-fold i.i.d. sum of `d`
/// keeps at least 1 − tail_budget of its mass on [0, t_max]. Uses the exact
/// quantile for one copy and the subexponential bound
/// P{Σ_k X > t} ≲ k·S(t − (k−1)·E[X]) for the rest, then rounds up to a
/// whole number of cells.
[[nodiscard]] double suggest_horizon(const Distribution& d, unsigned k,
                                     double tail_budget);

}  // namespace agedtr::dist
