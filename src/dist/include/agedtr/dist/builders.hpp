// Builders for the paper's five comparison models (Section III-A), all
// constructed to share the same mean so the comparison isolates the effect
// of the distribution's *shape*:
//   Exponential           — the Markovian baseline
//   Pareto 1              — Pareto, finite variance   (α = 2.5)
//   Pareto 2              — Pareto, infinite variance (α = 1.5)
//   Shifted-Exponential   — shift = mean/2, exponential part mean/2
//   Uniform               — Uniform[0, 2·mean]
#pragma once

#include <string>
#include <vector>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::dist {

enum class ModelFamily {
  kExponential,
  kPareto1,
  kPareto2,
  kShiftedExponential,
  kUniform,
};

/// All five families, in the paper's presentation order.
[[nodiscard]] const std::vector<ModelFamily>& all_model_families();

/// Display name matching the paper's tables ("Exponential", "Pareto 1", ...).
[[nodiscard]] std::string model_family_name(ModelFamily family);

/// Parses a family from its display or snake_case name; throws on unknown.
[[nodiscard]] ModelFamily parse_model_family(const std::string& name);

/// Tail index conventions documented in DESIGN.md.
inline constexpr double kPareto1Alpha = 2.5;
inline constexpr double kPareto2Alpha = 1.5;

/// Builds the family's representative with the prescribed mean.
[[nodiscard]] DistPtr make_model_distribution(ModelFamily family, double mean);

}  // namespace agedtr::dist
