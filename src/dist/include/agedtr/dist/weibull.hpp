// Weibull law — not one of the paper's headline models, but a natural
// candidate family for the testbed characterization (increasing/decreasing
// hazard) and useful for ablations on hazard shape.
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

/// Weibull(shape k, scale λ): S(x) = exp(−(x/λ)^k), x >= 0.
class Weibull final : public Distribution {
 public:
  /// shape > 0, scale > 0.
  Weibull(double shape, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double hazard(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "weibull"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

  /// Weibull with the given mean at the given shape.
  [[nodiscard]] static DistPtr with_mean(double mean, double shape);

 private:
  double shape_;
  double scale_;
};

}  // namespace agedtr::dist
