// The law of the sum of `count` i.i.d. copies of a base distribution.
//
// Used for per-task transfer scaling: when the network is bandwidth-limited
// the transfer time of a group of L tasks is the sum of L per-task transfer
// times (the paper's low-delay discussion — "transferring 50 tasks from
// server 1 to server 2 takes 50 s" at a 1 s/task link — is exactly this
// law). Densities come from a cached lattice convolution; sampling draws
// the base law `count` times, which is exact.
#pragma once

#include <memory>
#include <string>

#include "agedtr/dist/distribution.hpp"
#include "agedtr/numerics/interp.hpp"
#include "agedtr/numerics/lattice.hpp"

namespace agedtr::dist {

class SumIid final : public Distribution {
 public:
  /// count >= 1; `cells` controls the internal lattice resolution.
  SumIid(DistPtr base, unsigned count, std::size_t cells = 1u << 14);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double quantile(double p) const override;
  /// Exact: the sum of `count` base draws.
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "sum_iid"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const DistPtr& base() const { return base_; }
  [[nodiscard]] unsigned count() const { return count_; }

 private:
  void ensure_lattice() const;

  DistPtr base_;
  unsigned count_;
  std::size_t cells_;
  // Lazily built lattice of the count-fold sum plus CDF interpolant.
  mutable std::shared_ptr<const numerics::LatticeDensity> lattice_;
  mutable std::shared_ptr<const numerics::PchipInterpolator> cdf_interp_;
};

/// Returns `base` itself for count == 1, otherwise a SumIid.
[[nodiscard]] DistPtr sum_iid(DistPtr base, unsigned count);

}  // namespace agedtr::dist
