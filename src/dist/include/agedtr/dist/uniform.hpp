// Uniform service/transfer law — one of the paper's comparison models
// ("in the Uniform model service and transfer times follow uniform
// distributions"), constructed on [0, 2·mean] so all models share a mean.
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

class Uniform final : public Distribution {
 public:
  /// Support [a, b], a < b, a >= 0.
  Uniform(double a, double b);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override { return 0.5 * (a_ + b_); }
  [[nodiscard]] double variance() const override {
    const double w = b_ - a_;
    return w * w / 12.0;
  }
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override { return a_; }
  [[nodiscard]] double upper_bound() const override { return b_; }
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "uniform"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }

  /// Paper convention: Uniform on [0, 2·mean].
  [[nodiscard]] static DistPtr with_mean(double mean);

 private:
  double a_;
  double b_;
};

}  // namespace agedtr::dist
