// The abstract interface every random-time law in the DCS model implements
// (Assumption A1 of the paper: service, failure, FN-transfer and task-group
// transfer times with known, general pdfs on [0, ∞)).
//
// Besides pdf/cdf, the model needs the survival function (competing-risk
// products), the hazard (aged densities), analytic tail integrals
// ∫_t^∞ S(u) du (heavy-tail mean corrections in the convolution solver) and
// the Laplace–Stieltjes transform (reliability under exponential failures).
// Sensible numeric defaults are provided; concrete families override what
// they can do in closed form.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "agedtr/random/rng.hpp"

namespace agedtr::dist {

class Distribution;
/// Distributions are immutable after construction and shared freely.
using DistPtr = std::shared_ptr<const Distribution>;

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density f(x). Zero outside the support.
  [[nodiscard]] virtual double pdf(double x) const = 0;

  /// Cumulative distribution F(x) = P{X <= x}.
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Survival S(x) = P{X > x}. Override when 1 − F loses precision.
  [[nodiscard]] virtual double sf(double x) const { return 1.0 - cdf(x); }

  /// Hazard rate h(x) = f(x)/S(x); +inf where S(x) == 0 and f(x) > 0.
  [[nodiscard]] virtual double hazard(double x) const;

  [[nodiscard]] virtual double mean() const = 0;

  /// Variance; +inf for infinite-variance laws (Pareto with α <= 2).
  [[nodiscard]] virtual double variance() const = 0;

  /// Quantile F⁻¹(p), p in (0, 1). Default: bracketed Brent inversion of
  /// cdf(); families with closed forms override.
  [[nodiscard]] virtual double quantile(double p) const;

  /// Draws one variate. Default: inverse-CDF sampling.
  [[nodiscard]] virtual double sample(random::Rng& rng) const;

  /// Infimum of the support (0 for unshifted laws).
  [[nodiscard]] virtual double lower_bound() const { return 0.0; }

  /// Supremum of the support (+inf unless bounded, e.g. Uniform).
  [[nodiscard]] virtual double upper_bound() const {
    return std::numeric_limits<double>::infinity();
  }

  /// True only for the exponential law: aging leaves it invariant, which is
  /// exactly the property that makes the Markovian model age-free.
  [[nodiscard]] virtual bool is_memoryless() const { return false; }

  /// ∫_t^∞ S(u) du = E[(X − t)⁺]. Default: adaptive quadrature.
  [[nodiscard]] virtual double integral_sf(double t) const;

  /// Laplace–Stieltjes transform E[e^{−sX}], s >= 0. Default quadrature.
  [[nodiscard]] virtual double laplace(double s) const;

  /// Family name, e.g. "pareto".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Human-readable description with parameters, e.g. "pareto(xm=1.2, alpha=2.5)".
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// The aged version T_a of T given {T > a}: f_{T_a}(t) = f(t + a)/S(a).
/// Collapses exponentials (memoryless) and nested agings (ages add).
/// Requires S(a) > 0.
[[nodiscard]] DistPtr aged(DistPtr base, double age);

}  // namespace agedtr::dist
