// Gamma and shifted-Gamma laws. The paper's testbed characterization found
// task-transfer and FN-transfer times following *shifted* Gamma
// distributions — the shift models the deterministic propagation component
// of the end-to-end delay, the Gamma part the queueing jitter.
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

/// Gamma(shape k, scale θ): pdf x^{k−1} e^{−x/θ} / (Γ(k) θ^k), x >= 0.
class Gamma final : public Distribution {
 public:
  /// shape > 0, scale > 0; mean = shape·scale.
  Gamma(double shape, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override { return shape_ * scale_; }
  [[nodiscard]] double variance() const override {
    return shape_ * scale_ * scale_;
  }
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "gamma"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
  double log_norm_;  // −ln Γ(k) − k ln θ, cached
};

/// X = shift + Gamma(shape, scale): support [shift, ∞).
class ShiftedGamma final : public Distribution {
 public:
  /// shift >= 0, shape > 0, scale > 0; mean = shift + shape·scale.
  ShiftedGamma(double shift, double shape, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override {
    return shift_ + gamma_.mean();
  }
  [[nodiscard]] double variance() const override { return gamma_.variance(); }
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override { return shift_; }
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "shifted_gamma"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double shift() const { return shift_; }
  [[nodiscard]] double shape() const { return gamma_.shape(); }
  [[nodiscard]] double scale() const { return gamma_.scale(); }

 private:
  double shift_;
  Gamma gamma_;
};

}  // namespace agedtr::dist
