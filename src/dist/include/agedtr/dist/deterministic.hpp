// Degenerate (deterministic) law: a point mass at c. Used for testing the
// solvers against hand-computable completion times and to model
// deterministic transfer assumptions from the parallel-computing literature
// the paper contrasts against.
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

class Deterministic final : public Distribution {
 public:
  /// c >= 0.
  explicit Deterministic(double c);

  /// The pdf is a Dirac delta; this returns 0 everywhere (the density does
  /// not exist) — competing-risk code paths must use cdf/sf for atoms.
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override { return c_; }
  [[nodiscard]] double variance() const override { return 0.0; }
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override { return c_; }
  [[nodiscard]] double upper_bound() const override { return c_; }
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "deterministic"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double value() const { return c_; }

 private:
  double c_;
};

}  // namespace agedtr::dist
