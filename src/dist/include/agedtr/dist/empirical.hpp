// Empirical distribution built from observed samples — the raw material of
// the testbed characterization pipeline (Section III-B): measured service
// and transfer times enter as Empirical, get fitted to parametric families,
// and the best fit drives the solvers.
#pragma once

#include <string>
#include <vector>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::dist {

class Empirical final : public Distribution {
 public:
  /// Requires at least two samples; all samples must be >= 0 and finite.
  explicit Empirical(std::vector<double> samples);

  /// Histogram-smoothed density (uniform within Freedman–Diaconis bins).
  [[nodiscard]] double pdf(double x) const override;
  /// The ECDF: fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return variance_; }
  /// Type-7 (linear interpolation) sample quantile.
  [[nodiscard]] double quantile(double p) const override;
  /// Bootstrap draw: a uniformly random observed sample.
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override {
    return sorted_.front();
  }
  [[nodiscard]] double upper_bound() const override { return sorted_.back(); }
  [[nodiscard]] std::string name() const override { return "empirical"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    return sorted_;
  }
  [[nodiscard]] std::size_t count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  double bin_width_ = 0.0;  // Freedman–Diaconis, for pdf()
};

}  // namespace agedtr::dist
