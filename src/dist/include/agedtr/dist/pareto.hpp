// Pareto laws. The paper's empirical characterization found service times
// following Pareto distributions; the "Pareto 1" comparison model is a
// finite-variance Pareto (α > 2) and "Pareto 2" an infinite-variance one
// (1 < α <= 2).
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

/// Pareto type I: S(x) = (xm/x)^α for x >= xm > 0.
class Pareto final : public Distribution {
 public:
  /// xm > 0 (scale = support minimum), alpha > 1 (finite mean required by
  /// the workload-time metrics).
  Pareto(double xm, double alpha);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override { return xm_; }
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] std::string name() const override { return "pareto"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double xm() const { return xm_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Pareto with the given mean and tail index: xm = mean·(α−1)/α.
  [[nodiscard]] static DistPtr with_mean(double mean, double alpha);

 private:
  double xm_;
  double alpha_;
};

/// Lomax (Pareto type II, shifted to start at 0):
/// S(x) = (1 + x/scale)^{−α} for x >= 0. Included for generality — a
/// heavy-tailed law whose support starts at zero, handy for transfer times
/// with no hard minimum.
class Lomax final : public Distribution {
 public:
  /// scale > 0, alpha > 1.
  Lomax(double scale, double alpha);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] std::string name() const override { return "lomax"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double scale_;
  double alpha_;
};

}  // namespace agedtr::dist
