// Continuous phase-type (PH) distribution: the absorption time of a CTMC
// with transient sub-generator T, initial row vector α and exit vector
// t₀ = −T·1. PH laws are dense in the nonnegative laws and close the gap
// between the paper's exponential baseline and fully general distributions:
// Erlang chains model low-variance service, hyperexponential mixtures
// high-variance transfers, Coxian chains anything in between — all with
// closed-form pdf/cdf/moments via the matrix exponential.
//
//   f(x) = α·e^{Tx}·t₀,   S(x) = α·e^{Tx}·1,   E[X^k] = k!·α·(−T)^{−k}·1.
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>
#include <vector>
#include "agedtr/numerics/matrix.hpp"

namespace agedtr::dist {

class PhaseType final : public Distribution {
 public:
  /// `alpha`: initial probabilities over the transient phases (sums to <= 1;
  /// any deficit is an atom at 0, which the workload model forbids — the
  /// constructor requires the sum to be 1 within 1e-9). `generator`: the
  /// transient sub-generator (negative diagonal, nonnegative off-diagonal,
  /// row sums <= 0 with at least one strictly negative exit path).
  PhaseType(std::vector<double> alpha, numerics::Matrix generator);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  /// CTMC simulation: exact sampling by playing the chain to absorption.
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "phase_type"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t phases() const { return alpha_.size(); }

  /// Erlang(k, rate): k exponential stages in series — the canonical
  /// low-variance PH law (scv = 1/k).
  [[nodiscard]] static DistPtr erlang(unsigned k, double rate);

  /// Coxian chain: stage i completes at `rates[i]` and then exits with
  /// probability 1 − `continue_prob[i]` (continue_prob has one fewer entry).
  [[nodiscard]] static DistPtr coxian(std::vector<double> rates,
                                      std::vector<double> continue_prob);

 private:
  /// k-th factorial moment coefficient: α·(−T)^{−k}·1.
  [[nodiscard]] double inverse_power_mass(unsigned k) const;

  std::vector<double> alpha_;
  numerics::Matrix generator_;
  std::vector<double> exit_;  // t₀ = −T·1
  // Embedded jump chain for sampling: per-phase total rate and transition
  // probabilities (to phases 0..n−1, index n = absorption).
  std::vector<double> jump_rate_;
  std::vector<std::vector<double>> jump_prob_;
};

}  // namespace agedtr::dist
