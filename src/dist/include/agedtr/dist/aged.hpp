// The aged view T_a of a random time T: the paper's central device
// (Section II-B1). Given that T has survived to age a (event {T >= a}),
// T_a = T − a has pdf f_{T_a}(t) = f_T(t + a)/S_T(a). For the exponential
// law T_a and T coincide (memorylessness), which is why the Markovian model
// needs no age matrix.
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

class Aged final : public Distribution {
 public:
  /// Requires S_base(age) > 0 (the conditioning event must be possible).
  Aged(DistPtr base, double age);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double hazard(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double upper_bound() const override;
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] std::string name() const override { return "aged"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const DistPtr& base() const { return base_; }
  [[nodiscard]] double age() const { return age_; }

 private:
  DistPtr base_;
  double age_;
  double survival_at_age_;  // S_base(age), cached normalizer
};

/// E[T − a | T ≥ a] — the mean of aged(base, age) without materializing the
/// law. The re-seeding path uses this to rank survivors by residual life
/// (and tests use it to pin the aged-mean identity).
[[nodiscard]] double residual_mean(const DistPtr& base, double age);

/// True when conditioning `base` on survival to `age` is well-posed
/// (S_base(age) > 0) — the precondition aged() and the scenario re-seed
/// machinery require. Age 0 is always admissible.
[[nodiscard]] bool can_age(const DistPtr& base, double age);

}  // namespace agedtr::dist
