// Exponential and shifted-exponential service/transfer/failure laws.
//
// Exponential(rate) is the Markovian baseline of [2],[7]; the shifted
// exponential is one of the paper's non-Markovian comparison models — it
// captures the minimum end-to-end propagation delay a real network always
// exhibits (Section I).
#pragma once

#include "agedtr/dist/distribution.hpp"

#include <string>

namespace agedtr::dist {

class Exponential final : public Distribution {
 public:
  /// rate > 0; mean = 1/rate.
  explicit Exponential(double rate);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double hazard(double x) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const override {
    return 1.0 / (rate_ * rate_);
  }
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] bool is_memoryless() const override { return true; }
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override { return "exponential"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double rate() const { return rate_; }

  /// Convenience: exponential with the given mean.
  [[nodiscard]] static DistPtr with_mean(double mean);

 private:
  double rate_;
};

/// X = shift + Exp(rate): support [shift, ∞).
class ShiftedExponential final : public Distribution {
 public:
  /// shift >= 0, rate > 0; mean = shift + 1/rate.
  ShiftedExponential(double shift, double rate);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sf(double x) const override;
  [[nodiscard]] double mean() const override { return shift_ + 1.0 / rate_; }
  [[nodiscard]] double variance() const override {
    return 1.0 / (rate_ * rate_);
  }
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(random::Rng& rng) const override;
  [[nodiscard]] double lower_bound() const override { return shift_; }
  [[nodiscard]] double integral_sf(double t) const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] std::string name() const override {
    return "shifted_exponential";
  }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double shift() const { return shift_; }
  [[nodiscard]] double rate() const { return rate_; }

  /// The paper's convention for the comparison models: shift = mean/2 and
  /// the exponential part carries the other half of the mean.
  [[nodiscard]] static DistPtr with_mean(double mean);

 private:
  double shift_;
  double rate_;
};

}  // namespace agedtr::dist
