#include "agedtr/dist/compose.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::dist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A law whose support is a single point behaves as an exact shift under
/// convolution; quadrature over its (delta) density would be meaningless.
bool is_point_mass(const Distribution& d) {
  const double lo = d.lower_bound();
  return std::isfinite(lo) && d.upper_bound() == lo;
}

}  // namespace

// ---------------------------------------------------------------- Scaled

Scaled::Scaled(DistPtr base, double factor)
    : base_(std::move(base)), factor_(factor) {
  AGEDTR_REQUIRE(base_ != nullptr, "Scaled: base distribution is null");
  AGEDTR_REQUIRE(factor_ > 0.0 && std::isfinite(factor_),
                 "Scaled: factor must be positive and finite");
}

double Scaled::pdf(double x) const { return base_->pdf(x / factor_) / factor_; }
double Scaled::cdf(double x) const { return base_->cdf(x / factor_); }
double Scaled::sf(double x) const { return base_->sf(x / factor_); }
double Scaled::mean() const { return factor_ * base_->mean(); }

double Scaled::variance() const {
  return factor_ * factor_ * base_->variance();
}

double Scaled::quantile(double p) const {
  return factor_ * base_->quantile(p);
}

double Scaled::sample(random::Rng& rng) const {
  return factor_ * base_->sample(rng);
}

double Scaled::lower_bound() const { return factor_ * base_->lower_bound(); }
double Scaled::upper_bound() const { return factor_ * base_->upper_bound(); }

bool Scaled::is_memoryless() const {
  // A scaled exponential is an exponential with rescaled rate.
  return base_->is_memoryless();
}

double Scaled::integral_sf(double t) const {
  // ∫_t^∞ S(u/c) du = c ∫_{t/c}^∞ S(v) dv.
  return factor_ * base_->integral_sf(t / factor_);
}

double Scaled::laplace(double s) const { return base_->laplace(factor_ * s); }

std::string Scaled::describe() const {
  return "scaled(" + base_->describe() +
         ", factor=" + std::to_string(factor_) + ")";
}

// ------------------------------------------------------------- Convolved

Convolved::Convolved(DistPtr a, DistPtr b)
    : a_(std::move(a)), b_(std::move(b)) {
  AGEDTR_REQUIRE(a_ != nullptr && b_ != nullptr,
                 "Convolved: operand distribution is null");
}

double Convolved::pdf(double x) const {
  if (x < lower_bound()) return 0.0;
  if (is_point_mass(*a_)) return b_->pdf(x - a_->lower_bound());
  if (is_point_mass(*b_)) return a_->pdf(x - b_->lower_bound());
  const double lo = a_->lower_bound();
  const double hi = std::min(a_->upper_bound(), x - b_->lower_bound());
  if (hi <= lo) return 0.0;
  return numerics::integrate(
             [this, x](double u) { return a_->pdf(u) * b_->pdf(x - u); },
             lo, hi, 1e-12, 1e-9)
      .value;
}

double Convolved::cdf(double x) const {
  if (x <= lower_bound()) return 0.0;
  return 1.0 - sf(x);
}

double Convolved::sf(double x) const {
  if (x <= lower_bound()) return 1.0;
  if (is_point_mass(*a_)) return b_->sf(x - a_->lower_bound());
  if (is_point_mass(*b_)) return a_->sf(x - b_->lower_bound());
  // P{A + B > x} = S_A(x) + ∫ f_A(u) S_B(x − u) du over A's support below x.
  const double lo = a_->lower_bound();
  const double hi = std::min(a_->upper_bound(), x);
  double value = a_->sf(x);
  if (hi > lo) {
    value += numerics::integrate(
                 [this, x](double u) { return a_->pdf(u) * b_->sf(x - u); },
                 lo, hi, 1e-12, 1e-9)
                 .value;
  }
  return std::clamp(value, 0.0, 1.0);
}

double Convolved::mean() const { return a_->mean() + b_->mean(); }

double Convolved::variance() const {
  return a_->variance() + b_->variance();
}

double Convolved::sample(random::Rng& rng) const {
  const double a = a_->sample(rng);
  return a + b_->sample(rng);
}

double Convolved::lower_bound() const {
  return a_->lower_bound() + b_->lower_bound();
}

double Convolved::upper_bound() const {
  const double ua = a_->upper_bound();
  const double ub = b_->upper_bound();
  if (!std::isfinite(ua) || !std::isfinite(ub)) return kInf;
  return ua + ub;
}

double Convolved::laplace(double s) const {
  return a_->laplace(s) * b_->laplace(s);
}

std::string Convolved::describe() const {
  return "convolved(" + a_->describe() + ", " + b_->describe() + ")";
}

// ----------------------------------------------------------------- MinOf

MinOf::MinOf(std::vector<DistPtr> components)
    : components_(std::move(components)) {
  AGEDTR_REQUIRE(!components_.empty(), "MinOf: need at least one component");
  for (const DistPtr& d : components_) {
    AGEDTR_REQUIRE(d != nullptr, "MinOf: component distribution is null");
  }
}

double MinOf::pdf(double x) const {
  // f(x) = Σ_i f_i(x) ∏_{j≠i} S_j(x) — the competing-risk density.
  double total = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    double term = components_[i]->pdf(x);
    if (term == 0.0) continue;
    for (std::size_t j = 0; j < components_.size() && term != 0.0; ++j) {
      if (j != i) term *= components_[j]->sf(x);
    }
    total += term;
  }
  return total;
}

double MinOf::cdf(double x) const { return 1.0 - sf(x); }

double MinOf::sf(double x) const {
  double surv = 1.0;
  for (const DistPtr& d : components_) {
    surv *= d->sf(x);
    if (surv == 0.0) return 0.0;
  }
  return surv;
}

double MinOf::mean() const {
  return numerics::integrate_to_infinity(
             [this](double t) { return sf(t); }, 0.0, 1e-11, 1e-9)
      .value;
}

double MinOf::variance() const {
  // E[X²] = 2 ∫ t·S(t) dt for a nonnegative variable.
  const double m = mean();
  const double second =
      2.0 * numerics::integrate_to_infinity(
                [this](double t) { return t * sf(t); }, 0.0, 1e-11, 1e-9)
                .value;
  return std::max(second - m * m, 0.0);
}

double MinOf::sample(random::Rng& rng) const {
  double best = kInf;
  for (const DistPtr& d : components_) {
    best = std::min(best, d->sample(rng));
  }
  return best;
}

double MinOf::lower_bound() const {
  double lo = kInf;
  for (const DistPtr& d : components_) lo = std::min(lo, d->lower_bound());
  return lo;
}

double MinOf::upper_bound() const {
  double hi = kInf;
  for (const DistPtr& d : components_) hi = std::min(hi, d->upper_bound());
  return hi;
}

bool MinOf::is_memoryless() const {
  // The minimum of independent exponentials is exponential.
  return std::all_of(components_.begin(), components_.end(),
                     [](const DistPtr& d) { return d->is_memoryless(); });
}

std::string MinOf::describe() const {
  std::string out = "min_of(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += ", ";
    out += components_[i]->describe();
  }
  return out + ")";
}

// ----------------------------------------------------------------- MaxOf

MaxOf::MaxOf(std::vector<DistPtr> components)
    : components_(std::move(components)) {
  AGEDTR_REQUIRE(!components_.empty(), "MaxOf: need at least one component");
  for (const DistPtr& d : components_) {
    AGEDTR_REQUIRE(d != nullptr, "MaxOf: component distribution is null");
  }
}

double MaxOf::pdf(double x) const {
  // f(x) = Σ_i f_i(x) ∏_{j≠i} F_j(x).
  double total = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    double term = components_[i]->pdf(x);
    if (term == 0.0) continue;
    for (std::size_t j = 0; j < components_.size() && term != 0.0; ++j) {
      if (j != i) term *= components_[j]->cdf(x);
    }
    total += term;
  }
  return total;
}

double MaxOf::cdf(double x) const {
  double prob = 1.0;
  for (const DistPtr& d : components_) {
    prob *= d->cdf(x);
    if (prob == 0.0) return 0.0;
  }
  return prob;
}

double MaxOf::sf(double x) const { return 1.0 - cdf(x); }

double MaxOf::mean() const {
  return numerics::integrate_to_infinity(
             [this](double t) { return sf(t); }, 0.0, 1e-11, 1e-9)
      .value;
}

double MaxOf::variance() const {
  const double m = mean();
  const double second =
      2.0 * numerics::integrate_to_infinity(
                [this](double t) { return t * sf(t); }, 0.0, 1e-11, 1e-9)
                .value;
  return std::max(second - m * m, 0.0);
}

double MaxOf::sample(random::Rng& rng) const {
  double best = -kInf;
  for (const DistPtr& d : components_) {
    best = std::max(best, d->sample(rng));
  }
  return best;
}

double MaxOf::lower_bound() const {
  double lo = 0.0;
  for (const DistPtr& d : components_) lo = std::max(lo, d->lower_bound());
  return lo;
}

double MaxOf::upper_bound() const {
  double hi = 0.0;
  for (const DistPtr& d : components_) hi = std::max(hi, d->upper_bound());
  return hi;
}

std::string MaxOf::describe() const {
  std::string out = "max_of(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += ", ";
    out += components_[i]->describe();
  }
  return out + ")";
}

// ------------------------------------------------------------- factories

DistPtr scaled(DistPtr base, double factor) {
  AGEDTR_REQUIRE(base != nullptr, "scaled: base distribution is null");
  if (factor == 1.0) return base;
  return std::make_shared<Scaled>(std::move(base), factor);
}

DistPtr convolved(DistPtr a, DistPtr b) {
  return std::make_shared<Convolved>(std::move(a), std::move(b));
}

DistPtr min_of(std::vector<DistPtr> components) {
  AGEDTR_REQUIRE(!components.empty(), "min_of: need at least one component");
  if (components.size() == 1) return std::move(components.front());
  return std::make_shared<MinOf>(std::move(components));
}

DistPtr max_of(std::vector<DistPtr> components) {
  AGEDTR_REQUIRE(!components.empty(), "max_of: need at least one component");
  if (components.size() == 1) return std::move(components.front());
  return std::make_shared<MaxOf>(std::move(components));
}

}  // namespace agedtr::dist
