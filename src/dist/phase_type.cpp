#include "agedtr/dist/phase_type.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

using numerics::Matrix;

PhaseType::PhaseType(std::vector<double> alpha, Matrix generator)
    : alpha_(std::move(alpha)), generator_(std::move(generator)) {
  const std::size_t n = alpha_.size();
  AGEDTR_REQUIRE(n >= 1, "PhaseType: need at least one phase");
  AGEDTR_REQUIRE(generator_.rows() == n && generator_.cols() == n,
                 "PhaseType: generator shape must match alpha");
  double total = 0.0;
  for (double a : alpha_) {
    AGEDTR_REQUIRE(a >= 0.0, "PhaseType: negative initial probability");
    total += a;
  }
  AGEDTR_REQUIRE(std::fabs(total - 1.0) < 1e-9,
                 "PhaseType: initial probabilities must sum to 1");
  exit_.assign(n, 0.0);
  jump_rate_.assign(n, 0.0);
  jump_prob_.assign(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    AGEDTR_REQUIRE(generator_(i, i) < 0.0,
                   "PhaseType: diagonal entries must be negative");
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        AGEDTR_REQUIRE(generator_(i, j) >= 0.0,
                       "PhaseType: off-diagonal entries must be >= 0");
      }
      row += generator_(i, j);
    }
    AGEDTR_REQUIRE(row <= 1e-12,
                   "PhaseType: generator row sums must be <= 0");
    exit_[i] = -row;
    jump_rate_[i] = -generator_(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) jump_prob_[i][j] = generator_(i, j) / jump_rate_[i];
    }
    jump_prob_[i][n] = exit_[i] / jump_rate_[i];
  }
  // At least one path to absorption must exist; the mean computation below
  // throws on a singular (−T), which covers the degenerate case.
  (void)mean();
}

double PhaseType::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const Matrix expo = numerics::matrix_exponential(generator_.scaled(x));
  const std::vector<double> row = expo.left_multiply(alpha_);
  double f = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) f += row[i] * exit_[i];
  return std::max(f, 0.0);
}

double PhaseType::sf(double x) const {
  if (x < 0.0) return 1.0;
  const Matrix expo = numerics::matrix_exponential(generator_.scaled(x));
  const std::vector<double> row = expo.left_multiply(alpha_);
  double s = 0.0;
  for (double v : row) s += v;
  return std::clamp(s, 0.0, 1.0);
}

double PhaseType::cdf(double x) const { return 1.0 - sf(x); }

double PhaseType::inverse_power_mass(unsigned k) const {
  // α·(−T)^{−k}·1 via repeated solves of (−T)·x = previous.
  const std::size_t n = alpha_.size();
  const Matrix neg_t = generator_.scaled(-1.0);
  std::vector<double> v(n, 1.0);
  for (unsigned it = 0; it < k; ++it) {
    v = numerics::solve_dense(neg_t, std::move(v));
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += alpha_[i] * v[i];
  return acc;
}

double PhaseType::mean() const { return inverse_power_mass(1); }

double PhaseType::variance() const {
  const double m = inverse_power_mass(1);
  return 2.0 * inverse_power_mass(2) - m * m;
}

double PhaseType::sample(random::Rng& rng) const {
  // Pick the initial phase, then play the embedded chain.
  const std::size_t n = alpha_.size();
  double u = rng.next_double();
  std::size_t phase = n - 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (u < alpha_[i]) {
      phase = i;
      break;
    }
    u -= alpha_[i];
  }
  double time = 0.0;
  for (int guard = 0; guard < 1'000'000; ++guard) {
    time += -std::log1p(-rng.next_double()) / jump_rate_[phase];
    double v = rng.next_double();
    std::size_t next = n;  // absorption by default
    for (std::size_t j = 0; j <= n; ++j) {
      if (v < jump_prob_[phase][j]) {
        next = j;
        break;
      }
      v -= jump_prob_[phase][j];
    }
    if (next == n) return time;
    phase = next;
  }
  throw LogicError("PhaseType::sample: chain failed to absorb");
}

double PhaseType::laplace(double s) const {
  AGEDTR_REQUIRE(s >= 0.0, "laplace requires s >= 0");
  if (s == 0.0) return 1.0;
  // α·(sI − T)^{−1}·t₀.
  const std::size_t n = alpha_.size();
  Matrix m = generator_.scaled(-1.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) += s;
  const std::vector<double> x = numerics::solve_dense(m, exit_);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += alpha_[i] * x[i];
  return acc;
}

std::string PhaseType::describe() const {
  return "phase_type(phases=" + std::to_string(alpha_.size()) +
         ", mean=" + format_double(mean()) + ")";
}

DistPtr PhaseType::erlang(unsigned k, double rate) {
  AGEDTR_REQUIRE(k >= 1, "PhaseType::erlang: k must be >= 1");
  AGEDTR_REQUIRE(rate > 0.0, "PhaseType::erlang: rate must be positive");
  std::vector<double> alpha(k, 0.0);
  alpha[0] = 1.0;
  Matrix t(k, k);
  for (unsigned i = 0; i < k; ++i) {
    t(i, i) = -rate;
    if (i + 1 < k) t(i, i + 1) = rate;
  }
  return std::make_shared<PhaseType>(std::move(alpha), std::move(t));
}

DistPtr PhaseType::coxian(std::vector<double> rates,
                          std::vector<double> continue_prob) {
  const std::size_t k = rates.size();
  AGEDTR_REQUIRE(k >= 1, "PhaseType::coxian: need at least one stage");
  AGEDTR_REQUIRE(continue_prob.size() == k - 1,
                 "PhaseType::coxian: continue_prob needs k-1 entries");
  std::vector<double> alpha(k, 0.0);
  alpha[0] = 1.0;
  Matrix t(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    AGEDTR_REQUIRE(rates[i] > 0.0, "PhaseType::coxian: rates must be > 0");
    t(i, i) = -rates[i];
    if (i + 1 < k) {
      AGEDTR_REQUIRE(continue_prob[i] >= 0.0 && continue_prob[i] <= 1.0,
                     "PhaseType::coxian: continue probabilities in [0, 1]");
      t(i, i + 1) = rates[i] * continue_prob[i];
    }
  }
  return std::make_shared<PhaseType>(std::move(alpha), std::move(t));
}

}  // namespace agedtr::dist
