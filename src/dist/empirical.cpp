#include "agedtr/dist/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

Empirical::Empirical(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  AGEDTR_REQUIRE(sorted_.size() >= 2, "Empirical: need at least two samples");
  for (double s : sorted_) {
    AGEDTR_REQUIRE(s >= 0.0 && std::isfinite(s),
                   "Empirical: samples must be nonnegative and finite");
  }
  std::sort(sorted_.begin(), sorted_.end());
  const double n = static_cast<double>(sorted_.size());
  double sum = 0.0;
  for (double s : sorted_) sum += s;
  mean_ = sum / n;
  double ss = 0.0;
  for (double s : sorted_) ss += (s - mean_) * (s - mean_);
  variance_ = ss / (n - 1.0);
  // Freedman–Diaconis bin width from the IQR.
  const auto order_stat = [this](double p) {
    const double h = p * (static_cast<double>(sorted_.size()) - 1.0);
    const auto lo = static_cast<std::size_t>(h);
    const double frac = h - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size()) return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
  };
  const double iqr = order_stat(0.75) - order_stat(0.25);
  bin_width_ = iqr > 0.0 ? 2.0 * iqr / std::cbrt(n)
                         : (sorted_.back() - sorted_.front()) / 10.0;
  if (bin_width_ <= 0.0) bin_width_ = 1.0;  // all samples identical
}

double Empirical::pdf(double x) const {
  if (x < sorted_.front() - 0.5 * bin_width_ ||
      x > sorted_.back() + 0.5 * bin_width_) {
    return 0.0;
  }
  // Count samples within half a bin of x (a boxcar kernel estimate).
  const auto lo = std::lower_bound(sorted_.begin(), sorted_.end(),
                                   x - 0.5 * bin_width_);
  const auto hi =
      std::upper_bound(sorted_.begin(), sorted_.end(), x + 0.5 * bin_width_);
  const double frac = static_cast<double>(hi - lo) /
                      static_cast<double>(sorted_.size());
  return frac / bin_width_;
}

double Empirical::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  const double h = p * (static_cast<double>(sorted_.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Empirical::sample(random::Rng& rng) const {
  const auto idx = static_cast<std::size_t>(rng.next_double() *
                                            static_cast<double>(sorted_.size()));
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::string Empirical::describe() const {
  return "empirical(n=" + std::to_string(sorted_.size()) +
         ", mean=" + format_double(mean_) + ")";
}

}  // namespace agedtr::dist
