#include "agedtr/dist/aged.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr::dist {

Aged::Aged(DistPtr base, double age)
    : base_(std::move(base)),
      age_(age),
      survival_at_age_(base_->sf(age)) {
  AGEDTR_REQUIRE(base_ != nullptr, "Aged: base distribution is null");
  AGEDTR_REQUIRE(age >= 0.0, "Aged: age must be >= 0");
  AGEDTR_REQUIRE(survival_at_age_ > 0.0,
                 "Aged: base distribution cannot survive to this age");
}

double Aged::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return base_->pdf(x + age_) / survival_at_age_;
}

double Aged::cdf(double x) const {
  if (x < 0.0) return 0.0;
  // F_a(t) = (F(t+a) − F(a))/S(a) = 1 − S(t+a)/S(a); the survival form is
  // numerically stable deep in the tail.
  return 1.0 - base_->sf(x + age_) / survival_at_age_;
}

double Aged::sf(double x) const {
  if (x < 0.0) return 1.0;
  return base_->sf(x + age_) / survival_at_age_;
}

double Aged::hazard(double x) const {
  return x < 0.0 ? 0.0 : base_->hazard(x + age_);
}

double Aged::mean() const {
  // E[T_a] = ∫_0^∞ S_a(t) dt = integral_sf(age)/S(age).
  return base_->integral_sf(age_) / survival_at_age_;
}

double Aged::variance() const {
  // E[T_a²] = 2∫_0^∞ t·S_a(t) dt, computed by quadrature on the base sf.
  const double m = mean();
  const auto integrand = [this](double t) { return t * sf(t); };
  const double second_moment =
      2.0 * numerics::integrate_to_infinity(integrand, 0.0).value;
  return std::max(second_moment - m * m, 0.0);
}

double Aged::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  // F_a(t) = p  ⇔  F(t + a) = F(a) + p·S(a).
  const double target = base_->cdf(age_) + p * survival_at_age_;
  if (target >= 1.0) return base_->upper_bound() - age_;
  return base_->quantile(target) - age_;
}

double Aged::lower_bound() const {
  return std::max(base_->lower_bound() - age_, 0.0);
}

double Aged::upper_bound() const {
  const double ub = base_->upper_bound();
  return std::isfinite(ub) ? std::max(ub - age_, 0.0)
                           : std::numeric_limits<double>::infinity();
}

double Aged::integral_sf(double t) const {
  if (t < 0.0) return -t + integral_sf(0.0);
  // ∫_t^∞ S(u+a)/S(a) du = integral_sf_base(t + a)/S(a).
  return base_->integral_sf(t + age_) / survival_at_age_;
}

std::string Aged::describe() const {
  return "aged(" + base_->describe() + ", age=" + format_double(age_) + ")";
}

double residual_mean(const DistPtr& base, double age) {
  AGEDTR_REQUIRE(base != nullptr, "residual_mean: base distribution is null");
  AGEDTR_REQUIRE(age >= 0.0, "residual_mean: age must be >= 0");
  if (age == 0.0 || base->is_memoryless()) return base->mean();
  const double survival = base->sf(age);
  AGEDTR_REQUIRE(survival > 0.0,
                 "residual_mean: base distribution cannot survive to this age");
  return base->integral_sf(age) / survival;
}

bool can_age(const DistPtr& base, double age) {
  if (!base || age < 0.0) return false;
  return age == 0.0 || base->sf(age) > 0.0;
}

DistPtr aged(DistPtr base, double age) {
  AGEDTR_REQUIRE(base != nullptr, "aged: base distribution is null");
  AGEDTR_REQUIRE(age >= 0.0, "aged: age must be >= 0");
  if (age == 0.0 || base->is_memoryless()) return base;
  if (const auto* nested = dynamic_cast<const Aged*>(base.get())) {
    return std::make_shared<Aged>(nested->base(), nested->age() + age);
  }
  return std::make_shared<Aged>(std::move(base), age);
}

}  // namespace agedtr::dist
