#include "agedtr/numerics/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::numerics {

ScalarMinResult minimize_scalar(const std::function<double(double)>& f,
                                double a, double b, double tol, int max_iter) {
  AGEDTR_REQUIRE(a < b, "minimize_scalar: need a < b");
  const double golden = 0.3819660112501051;
  double x = a + golden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  ScalarMinResult result;
  result.evaluations = 1;
  for (int iter = 0; iter < max_iter; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol1 = tol * std::fabs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - m) <= tol2 - 0.5 * (b - a)) break;
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Parabolic fit through x, v, w.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (m > x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m) ? b - x : a - x;
      d = golden * e;
    }
    const double u = (std::fabs(d) >= tol1) ? x + d
                                            : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    ++result.evaluations;
    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.value = fx;
  return result;
}

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, std::vector<double> scale, double tol,
    int max_iter) {
  const std::size_t n = x0.size();
  AGEDTR_REQUIRE(n >= 1, "nelder_mead: empty starting point");
  if (scale.empty()) {
    scale.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scale[i] = 0.1 * std::max(std::fabs(x0[i]), 1.0);
    }
  }
  AGEDTR_REQUIRE(scale.size() == n, "nelder_mead: scale size mismatch");

  std::vector<std::vector<double>> simplex(n + 1, x0);
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += scale[i];
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  NelderMeadResult result;
  std::vector<std::size_t> order(n + 1);
  for (int iter = 0; iter < max_iter; ++iter) {
    result.iterations = iter + 1;
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];
    if (std::fabs(values[worst] - values[best]) <=
        tol * (std::fabs(values[best]) + std::fabs(values[worst]) + 1e-300) +
            1e-300) {
      result.converged = true;
      result.x = simplex[best];
      result.value = values[best];
      return result;
    }
    // Centroid excluding the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t k = 0; k < n; ++k) centroid[k] += simplex[i][k];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    const auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t k = 0; k < n; ++k) {
        p[k] = centroid[k] + coeff * (simplex[worst][k] - centroid[k]);
      }
      return p;
    };

    std::vector<double> reflected = blend(-1.0);
    const double f_ref = f(reflected);
    if (f_ref < values[best]) {
      std::vector<double> expanded = blend(-2.0);
      const double f_exp = f(expanded);
      if (f_exp < f_ref) {
        simplex[worst] = std::move(expanded);
        values[worst] = f_exp;
      } else {
        simplex[worst] = std::move(reflected);
        values[worst] = f_ref;
      }
    } else if (f_ref < values[second_worst]) {
      simplex[worst] = std::move(reflected);
      values[worst] = f_ref;
    } else {
      std::vector<double> contracted = blend(f_ref < values[worst] ? -0.5 : 0.5);
      const double f_con = f(contracted);
      if (f_con < std::min(values[worst], f_ref)) {
        simplex[worst] = std::move(contracted);
        values[worst] = f_con;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t k = 0; k < n; ++k) {
            simplex[i][k] =
                simplex[best][k] + 0.5 * (simplex[i][k] - simplex[best][k]);
          }
          values[i] = f(simplex[i]);
        }
      }
    }
  }
  for (std::size_t i = 0; i <= n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  result.x = simplex[order[0]];
  result.value = values[order[0]];
  return result;
}

}  // namespace agedtr::numerics
