#include "agedtr/numerics/matrix.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::numerics {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  AGEDTR_REQUIRE(rows >= 1 && cols >= 1, "Matrix: empty shape");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  AGEDTR_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  AGEDTR_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::operator*(const Matrix& other) const {
  AGEDTR_REQUIRE(cols_ == other.rows_, "Matrix: shape mismatch in product");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  AGEDTR_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "Matrix: shape mismatch in sum");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  AGEDTR_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "Matrix: shape mismatch in difference");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= other.data_[i];
  }
  return out;
}

Matrix Matrix::scaled(double factor) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= factor;
  return out;
}

std::vector<double> Matrix::left_multiply(
    const std::vector<double>& v) const {
  AGEDTR_REQUIRE(v.size() == rows_, "Matrix: row-vector size mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    if (v[i] == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) {
      out[j] += v[i] * (*this)(i, j);
    }
  }
  return out;
}

std::vector<double> Matrix::right_multiply(
    const std::vector<double>& v) const {
  AGEDTR_REQUIRE(v.size() == cols_, "Matrix: column-vector size mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      acc += (*this)(i, j) * v[j];
    }
    out[i] = acc;
  }
  return out;
}

double Matrix::inf_norm() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      row += std::fabs((*this)(i, j));
    }
    worst = std::max(worst, row);
  }
  return worst;
}

Matrix matrix_exponential(const Matrix& a) {
  AGEDTR_REQUIRE(a.rows() == a.cols(),
                 "matrix_exponential: matrix must be square");
  // Scale so ||A/2^s|| <= 0.5, Padé(6,6), then square s times.
  const double norm = a.inf_norm();
  int s = 0;
  if (norm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
  }
  const Matrix x = a.scaled(std::pow(2.0, -s));

  // Padé(6,6): N = Σ c_k X^k, D = Σ (−1)^k c_k X^k.
  static const double c[7] = {1.0,          0.5,         5.0 / 44.0,
                              1.0 / 66.0,   1.0 / 792.0, 1.0 / 15840.0,
                              1.0 / 665280.0};
  const std::size_t n = a.rows();
  Matrix num(n, n);
  Matrix den(n, n);
  Matrix power = Matrix::identity(n);
  for (int k = 0; k <= 6; ++k) {
    const Matrix term = power.scaled(c[k]);
    num = num + term;
    den = (k % 2 == 0) ? den + term : den - term;
    if (k < 6) power = power * x;
  }
  // R = D^{-1} N, column by column.
  Matrix r(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = num(i, j);
    const std::vector<double> solved = solve_dense(den, std::move(col));
    for (std::size_t i = 0; i < n; ++i) r(i, j) = solved[i];
  }
  for (int i = 0; i < s; ++i) r = r * r;
  return r;
}

std::vector<double> solve_dense(Matrix a, std::vector<double> b) {
  AGEDTR_REQUIRE(a.rows() == a.cols(), "solve_dense: matrix must be square");
  AGEDTR_REQUIRE(b.size() == a.rows(), "solve_dense: rhs size mismatch");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  // LU with partial pivoting, in place.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::fabs(a(i, k)) > std::fabs(a(pivot, k))) pivot = i;
    }
    AGEDTR_REQUIRE(std::fabs(a(pivot, k)) > 1e-300,
                   "solve_dense: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(b[k], b[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) / a(k, k);
      a(i, k) = 0.0;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        a(i, j) -= factor * a(k, j);
      }
      b[i] -= factor * b[k];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      acc -= a(i, j) * x[j];
    }
    x[i] = acc / a(i, i);
  }
  return x;
}

}  // namespace agedtr::numerics
