// Numerical integration: fixed Gauss–Legendre panels, an adaptive
// Gauss–Kronrod 15(7) integrator with a worst-interval-first refinement
// queue, and semi-infinite integrals via the rational map x = a + t/(1−t).
//
// These are the kernels behind the regenerative recursion (Theorem 1), the
// distribution moment checks, and the reliability integrals ∫ f_C(t) S_Y(t) dt.
#pragma once

#include <functional>
#include <vector>

namespace agedtr::numerics {

/// Result of an adaptive quadrature: the value and the achieved error bound.
struct QuadratureResult {
  double value = 0.0;
  double error = 0.0;
  int evaluations = 0;
};

using Integrand = std::function<double(double)>;

/// Fixed-order Gauss–Legendre on [a, b]; n in {4, 8, 16, 32}.
[[nodiscard]] double gauss_legendre(const Integrand& f, double a, double b,
                                    int n);

/// Adaptive Gauss–Kronrod 15(7) on a finite interval. Splits the interval
/// with the largest error estimate until |error| <= max(abs_tol,
/// rel_tol*|value|) or the interval budget is exhausted (then returns the
/// best estimate with its error; no throw — callers inspect `error`).
[[nodiscard]] QuadratureResult integrate(const Integrand& f, double a,
                                         double b, double abs_tol = 1e-10,
                                         double rel_tol = 1e-8,
                                         int max_intervals = 2000);

/// Adaptive integral over [a, ∞) via x = a + t/(1−t), dx = dt/(1−t)².
[[nodiscard]] QuadratureResult integrate_to_infinity(const Integrand& f,
                                                     double a,
                                                     double abs_tol = 1e-10,
                                                     double rel_tol = 1e-8,
                                                     int max_intervals = 2000);

/// Gauss–Legendre abscissas/weights on [-1, 1] for order n (computed once
/// per order via Newton on the Legendre recurrence and cached).
struct GaussRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};
[[nodiscard]] const GaussRule& gauss_rule(int n);

}  // namespace agedtr::numerics
