// Portable SIMD kernels for the lattice hot loops.
//
// Every routine here is a flat loop over contiguous doubles (or interleaved
// complex doubles) annotated with `#pragma omp simd`: a vectorization
// *mandate* the compiler honours without any OpenMP runtime (CMake adds
// `-fopenmp-simd` for GNU/Clang, which recognizes the pragmas and nothing
// else). Reductions carry explicit reduction clauses, which licenses the
// reassociation a vector sum needs; the results are still deterministic for
// a fixed build, which is all the golden pins (rtol 1e-9) and the
// bit-identity checks in policy_search_bench require.
//
// The kernels are the single home for these loops — LatticeDensity,
// ConvolutionSolver, SumIid, and the FFT convolution path all call into
// them, and bench/micro_kernels.cpp pins their throughput.
#pragma once

#include <complex>
#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define AGEDTR_PRAGMA(...) _Pragma(#__VA_ARGS__)
#define AGEDTR_SIMD AGEDTR_PRAGMA(omp simd)
#else
#define AGEDTR_PRAGMA(...)
#define AGEDTR_SIMD
#endif

namespace agedtr::numerics::kernels {

/// Σ x[i].
[[nodiscard]] inline double sum(const double* x, std::size_t n) {
  double acc = 0.0;
  AGEDTR_PRAGMA(omp simd reduction(+ : acc))
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

/// Σ x[i]·y[i].
[[nodiscard]] inline double dot(const double* x, const double* y,
                                std::size_t n) {
  double acc = 0.0;
  AGEDTR_PRAGMA(omp simd reduction(+ : acc))
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

/// min over x[0..n); n must be >= 1.
[[nodiscard]] inline double min_value(const double* x, std::size_t n) {
  double m = x[0];
  AGEDTR_PRAGMA(omp simd reduction(min : m))
  for (std::size_t i = 1; i < n; ++i) m = x[i] < m ? x[i] : m;
  return m;
}

/// x[i] *= s.
inline void scale(double* x, std::size_t n, double s) {
  AGEDTR_SIMD
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

/// x[i] = max(x[i], 0): sponges up the ~1e-16 negatives FFT round-off
/// leaves on probability mass vectors.
inline void clamp_nonnegative(double* x, std::size_t n) {
  AGEDTR_SIMD
  for (std::size_t i = 0; i < n; ++i) x[i] = x[i] < 0.0 ? 0.0 : x[i];
}

/// a[i] *= b[i] (elementwise product of CDF columns and the like).
inline void mul_inplace(double* a, const double* b, std::size_t n) {
  AGEDTR_SIMD
  for (std::size_t i = 0; i < n; ++i) a[i] *= b[i];
}

/// a[i] *= b[i] over interleaved complex doubles: the frequency-domain
/// product at the heart of every FFT convolution. Accessing the re/im
/// planes through double lanes keeps the loop a clean 4-mul/2-add vector
/// body instead of a libstdc++ complex-multiply call (which guards against
/// NaN/Inf cross-terms the spectra of finite mass vectors cannot produce).
inline void pointwise_mul_inplace(std::complex<double>* a,
                                  const std::complex<double>* b,
                                  std::size_t n) {
  auto* ar = reinterpret_cast<double*>(a);
  const auto* br = reinterpret_cast<const double*>(b);
  AGEDTR_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double re = ar[2 * i] * br[2 * i] - ar[2 * i + 1] * br[2 * i + 1];
    const double im = ar[2 * i] * br[2 * i + 1] + ar[2 * i + 1] * br[2 * i];
    ar[2 * i] = re;
    ar[2 * i + 1] = im;
  }
}

/// Inclusive prefix sum: out[i] = Σ_{j<=i} x[j] (the CDF build). In-place
/// (out == x) is allowed.
inline void prefix_sum(const double* x, double* out, std::size_t n) {
  double acc = 0.0;
#if defined(__GNUC__) && !defined(__clang__)
  // GCC vectorizes the scan (omp 5.0 `inscan`, supported since GCC 10 under
  // -fopenmp-simd). Clang's cut-down -fopenmp-simd frontend has patchier
  // scan support across the versions CI builds with, so it takes the
  // scalar loop — correctness is identical, only throughput differs.
  AGEDTR_PRAGMA(omp simd reduction(inscan, + : acc))
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i];
    AGEDTR_PRAGMA(omp scan inclusive(acc))
    out[i] = acc;
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i];
    out[i] = acc;
  }
#endif
}

}  // namespace agedtr::numerics::kernels
