// Real-to-complex FFT transforms with a process-wide plan cache, and the
// linear-convolution helpers built on them.
//
// The lattice-density engine convolves probability mass vectors of length up
// to ~2^18. A convolution of real sequences only needs half the complex
// work: rfft packs the 2m reals into m complex points, runs one half-size
// complex FFT from precomputed twiddle tables, and unpacks the n/2+1
// independent bins of the Hermitian spectrum. Plans (bit-reversal tables +
// twiddles) are immutable and cached per transform size behind one atomic
// load, so every convolution in the process shares them; cache behaviour is
// observable through the `fft.plan_hit` / `fft.plan_miss` metrics counters.
//
// Densities that are convolved repeatedly (the LatticeWorkspace ladder
// rungs and k-fold sums) keep their forward spectrum cached alongside the
// mass vector — see LatticeDensity::ensure_spectrum — so a warm solve pays
// one pointwise multiply and one inverse transform per convolution.
#pragma once

#include <complex>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace agedtr::numerics {

/// In-place radix-2 decimation-in-time FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform and the 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// Smallest power of two >= n. Requires n >= 1 and n representable (n no
/// larger than the top power of two of std::size_t); throws InvalidArgument
/// otherwise — a silent wrap here would alias FFT convolutions.
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// The cached forward half-complex spectrum of a real sequence zero-padded
/// to `padded` points (`bins.size() == padded / 2 + 1`). `padded == 0`
/// means "not built".
struct Spectrum {
  std::size_t padded = 0;
  std::vector<std::complex<double>> bins;
};

// Spectra ride inside every cached LatticeDensity; a throwing move would
// turn workspace ladder growth into spectrum deep-copies (rule
// `noexcept-move`, docs/layering.toml). An aggregate keeps its implicit
// move, so pin the trait instead of declaring constructors.
static_assert(std::is_nothrow_move_constructible_v<Spectrum>);

/// Immutable transform plan for real length n (a power of two >= 2):
/// bit-reversal permutation and twiddle tables for the half-size complex
/// FFT, plus the split twiddles of the real<->half-complex repacking.
/// Thread-safe: execution only reads the tables.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  /// The real transform length.
  [[nodiscard]] std::size_t size() const { return n_; }
  /// Number of independent spectrum bins (n/2 + 1).
  [[nodiscard]] std::size_t bins() const { return half_ + 1; }

  /// Forward real-to-complex transform of in[0..len) zero-padded to
  /// size(); writes bins() complex values (Hermitian half-spectrum).
  void rfft(const double* in, std::size_t len, std::complex<double>* out) const;

  /// Inverse complex-to-real transform (includes the 1/size() scaling):
  /// reads bins() complex values, writes size() reals.
  void irfft(const std::complex<double>* in, double* out) const;

 private:
  void fft_half(std::complex<double>* a, bool inverse) const;

  std::size_t n_;     // real length (power of two)
  std::size_t half_;  // n_ / 2: the complex sub-transform size
  std::vector<std::uint32_t> rev_;           // bit-reversal over half_
  std::vector<std::complex<double>> roots_;  // exp(-2*pi*i*j/half_), j < half_/2
  std::vector<std::complex<double>> split_;  // exp(-2*pi*i*k/n_), k <= half_
};

// Plans are cached per size class; moving one must never copy its tables
// (rule `noexcept-move`, docs/layering.toml).
static_assert(std::is_nothrow_move_constructible_v<FftPlan>);

/// The process-wide plan for real length n (a power of two >= 2). Plans are
/// built once under a lock and published through an atomic slot per size
/// class, so the hot-path lookup is one relaxed load; `fft.plan_hit` /
/// `fft.plan_miss` count the outcomes. The reference stays valid for the
/// process lifetime.
[[nodiscard]] const FftPlan& fft_plan(std::size_t n);

/// Convenience forward/inverse real transforms (x.size() a power of two).
[[nodiscard]] std::vector<std::complex<double>> rfft(
    const std::vector<double>& x);
/// Inverse of rfft: `spectrum.size()` must be n/2 + 1 for the power-of-two
/// output length n.
[[nodiscard]] std::vector<double> irfft(
    const std::vector<std::complex<double>>& spectrum, std::size_t n);

/// Selects how linear convolutions are evaluated. kAuto picks the direct
/// O(n*m) sum for small products and the FFT path otherwise; kDirect /
/// kFft force one path everywhere. The forced modes exist for the
/// fft-vs-direct differential harness and the ablation bench — both paths
/// share the exact same truncation/tail semantics, so forcing kDirect
/// yields a slow exact reference for the FFT path.
enum class ConvolutionBackend { kAuto, kDirect, kFft };

/// Sets the process-wide convolution backend (atomic; intended for tests
/// and benches, not for concurrent flipping mid-solve).
void set_convolution_backend(ConvolutionBackend backend);
[[nodiscard]] ConvolutionBackend convolution_backend();

/// True if this (a_size, b_size) product should use the direct sum under
/// the current backend setting.
[[nodiscard]] bool use_direct_convolution(std::size_t a_size,
                                          std::size_t b_size);

/// Full linear convolution of two real sequences
/// (result.size() == a.size() + b.size() - 1). Honours the convolution
/// backend: direct O(n·m) sums for small inputs, rfft/irfft through the
/// plan cache otherwise. Tiny negative values produced by round-off are
/// clamped to zero when `clamp_nonnegative` is set (probability mass
/// vectors).
[[nodiscard]] std::vector<double> convolve(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           bool clamp_nonnegative = false);

}  // namespace agedtr::numerics
