// Iterative radix-2 complex FFT and a real linear-convolution helper.
//
// The lattice-density engine convolves probability mass vectors of length up
// to ~2^18; convolution is performed by zero-padding to the next power of
// two, transforming, multiplying, and inverting.
#pragma once

#include <complex>
#include <vector>

namespace agedtr::numerics {

/// In-place radix-2 decimation-in-time FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform and the 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Full linear convolution of two real sequences
/// (result.size() == a.size() + b.size() - 1). Uses FFT for large inputs and
/// the direct O(n·m) sum for small ones. Tiny negative values produced by
/// round-off are clamped to zero when `clamp_nonnegative` is set (probability
/// mass vectors).
[[nodiscard]] std::vector<double> convolve(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           bool clamp_nonnegative = false);

}  // namespace agedtr::numerics
