// LatticeDensity: a nonnegative random variable discretized onto the lattice
// {0, dt, 2·dt, …, (n−1)·dt} with an explicit right-tail mass for
// P{X ≥ n·dt}.
//
// mass[i] approximates P{X ∈ ((i−½)dt, (i+½)dt]} (nearest-lattice-point
// rounding), so sums of independent lattice variables are exactly lattice
// convolutions and the location error stays O(dt) per variable with
// O(dt²) bias for smooth densities. The tail mass is tracked through every
// operation, giving rigorous bookkeeping of truncation: any probability that
// leaves the grid ends up in `tail()`, never silently dropped.
//
// This is the substrate of the ConvolutionSolver: k-fold service-time sums
// (FFT exponentiation-by-squaring), max of independent variables (CDF
// product) and expectations against survival functions are all lattice ops.
//
// Two lazily built caches ride along with the mass vector: the CDF prefix
// sums and the forward rfft spectrum (see docs/FFT_PIPELINE.md). Both are
// mutable-lazy with the same sharing contract — build before publishing a
// density to other threads; after that every access is a const read.
#pragma once

#include <complex>
#include <functional>
#include <vector>

#include "agedtr/numerics/fft.hpp"

namespace agedtr::numerics {

class LatticeDensity {
 public:
  /// Takes ownership of the mass vector; `tail` is P{X >= mass.size()*dt}.
  /// Requires dt > 0, nonnegative entries, and total mass <= 1 + 1e-9.
  LatticeDensity(double dt, std::vector<double> mass, double tail);

  // Rule of five, spelled out so the moves are *guaranteed* noexcept at
  // compile time (rule `noexcept-move`, docs/layering.toml): densities live
  // in the workspace's power ladders and sum tables, and a throwing move
  // would silently turn container growth there into deep copies.
  LatticeDensity(const LatticeDensity&) = default;
  LatticeDensity& operator=(const LatticeDensity&) = default;
  LatticeDensity(LatticeDensity&&) noexcept = default;
  LatticeDensity& operator=(LatticeDensity&&) noexcept = default;
  ~LatticeDensity() = default;

  /// The distribution of the constant 0 (identity for convolution).
  [[nodiscard]] static LatticeDensity zero(double dt, std::size_t n);

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] std::size_t size() const { return mass_.size(); }
  [[nodiscard]] double mass(std::size_t i) const { return mass_[i]; }
  [[nodiscard]] const std::vector<double>& masses() const { return mass_; }
  [[nodiscard]] double tail() const { return tail_; }
  /// Sum of grid mass plus tail (≈ 1 up to discretization round-off).
  [[nodiscard]] double total() const;

  /// P{X <= i*dt} under the lattice approximation (i clamped to the grid;
  /// i >= size() returns 1 − tail).
  [[nodiscard]] double cdf(std::size_t i) const;
  /// CDF evaluated by linear interpolation at an arbitrary t >= 0.
  [[nodiscard]] double cdf_at(double t) const;

  /// Mean restricted to the grid: Σ i·dt·mass[i]. The tail contributes
  /// at least tail()·n·dt more; callers add a model-specific tail
  /// correction (see ConvolutionSolver).
  [[nodiscard]] double grid_mean() const;

  /// E[g(X); X on grid] = Σ g(i·dt)·mass[i]. Tail excluded by design.
  [[nodiscard]] double expect(const std::function<double(double)>& g) const;

  /// Distribution of X + Y for independent X, Y on the same lattice
  /// (same dt; result length = max of the two lengths; overflow + any
  /// tail involvement goes to the result's tail).
  [[nodiscard]] LatticeDensity convolve(const LatticeDensity& other) const;

  /// Distribution of the sum of k i.i.d. copies (k >= 0; k == 0 is zero()).
  /// Uses exponentiation by squaring: O(log k) convolutions.
  [[nodiscard]] LatticeDensity convolve_power(unsigned k) const;

  /// Distribution of max(X, Y) for independent X, Y (CDF product).
  [[nodiscard]] static LatticeDensity max_of(const LatticeDensity& a,
                                             const LatticeDensity& b);

  /// Rebuilds the cached CDF prefix sums (done automatically; exposed for
  /// tests).
  void ensure_cdf() const;

  /// The CDF prefix-sum array itself (built on first use): cdf()[i] without
  /// the per-call bounds handling, for vectorized consumers.
  [[nodiscard]] const std::vector<double>& cdf_values() const {
    ensure_cdf();
    return cdf_;
  }

  /// Builds (or rebuilds, if the padded length differs) and returns the
  /// cached forward rfft spectrum of the mass vector zero-padded to
  /// `padded` points. Like ensure_cdf, the cache is mutable-lazy: a density
  /// shared across threads must have its spectrum built *before* sharing
  /// (LatticeWorkspace does so when publishing cache entries); after that,
  /// repeated calls with the same `padded` are pure reads.
  const Spectrum& ensure_spectrum(std::size_t padded) const;

  /// True once a spectrum is cached (at any padded length).
  [[nodiscard]] bool has_spectrum() const { return spectrum_.padded != 0; }

  /// Resident bytes of the mass vector and whatever caches are currently
  /// materialized (CDF, spectrum) — the workspace's accounting unit.
  [[nodiscard]] std::size_t cache_bytes() const {
    return mass_.size() * sizeof(double) + cdf_.size() * sizeof(double) +
           spectrum_.bins.size() * sizeof(std::complex<double>);
  }

 private:
  /// Exact point mass at zero (mass[0] == 1, no tail): the convolution
  /// identity, detected for the resize fast path.
  [[nodiscard]] bool is_delta_at_zero() const;
  /// Copy with the grid grown to n cells (n >= size(); tail unchanged).
  [[nodiscard]] LatticeDensity grown(std::size_t n) const;

  double dt_;
  std::vector<double> mass_;
  double tail_;
  mutable std::vector<double> cdf_;  // cdf_[i] = Σ_{j<=i} mass_[j], lazily built
  mutable Spectrum spectrum_;        // forward rfft of mass_, lazily built
};

}  // namespace agedtr::numerics
