// Per-thread monotonic scratch arena for the lattice/FFT hot paths.
//
// One solver evaluation performs dozens of convolutions, and each used to
// allocate (and free) several transform-sized vectors through the global
// heap. The arena replaces that churn with pointer bumps into one retained
// per-thread buffer: a ScratchFrame brackets a unit of work, allocations
// inside it come from a std::pmr::monotonic_buffer_resource over the
// buffer, and when the *outermost* frame on a thread exits the arena
// rewinds wholesale (deallocation is a no-op, as monotonic resources
// define). Frames nest freely — the FFT plan routines open their own frame
// inside LatticeDensity::convolve's — thanks to a depth count.
//
// The buffer grows to the high-water mark of any frame (rounded to a power
// of two) and is then retained for the thread's lifetime, so a warmed-up
// solver allocates nothing per evaluation. Retained bytes across all
// threads are observable as the `workspace.arena_bytes` gauge.
//
// Thread safety: none needed — the arena is thread_local and never shared.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <optional>
#include <vector>

namespace agedtr::numerics {

/// The calling thread's scratch arena. Allocate from it only through a live
/// ScratchFrame; pointers obtained inside a frame die with the outermost
/// frame.
class ScratchArena {
 public:
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  [[nodiscard]] static ScratchArena& local();

  /// The memory resource scratch containers should be constructed over.
  [[nodiscard]] std::pmr::memory_resource* resource() { return &meter_; }

  /// Bytes of backing buffer currently retained by this thread's arena.
  [[nodiscard]] std::size_t retained_bytes() const { return buffer_.size(); }
  /// Largest total allocation any single outermost frame has requested.
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }

 private:
  friend class ScratchFrame;

  ScratchArena();
  ~ScratchArena();

  void enter() { ++depth_; }
  void exit();

  /// Fronts the monotonic resource to meter bytes requested per frame (the
  /// monotonic resource itself does not report usage).
  class Meter final : public std::pmr::memory_resource {
   public:
    explicit Meter(ScratchArena* owner) : owner_(owner) {}

   private:
    void* do_allocate(std::size_t bytes, std::size_t alignment) override;
    void do_deallocate(void*, std::size_t, std::size_t) override {}
    [[nodiscard]] bool do_is_equal(
        const std::pmr::memory_resource& other) const noexcept override {
      return this == &other;
    }
    ScratchArena* owner_;
  };

  std::vector<std::byte> buffer_;
  std::optional<std::pmr::monotonic_buffer_resource> mono_;
  Meter meter_;
  std::size_t frame_bytes_ = 0;
  std::size_t high_water_ = 0;
  int depth_ = 0;
};

/// RAII bracket for scratch allocations. Construct one at the top of a unit
/// of work, pass `resource()` to pmr containers, and let scope end reclaim
/// everything at once (outermost frame only; nested frames are free).
class ScratchFrame {
 public:
  ScratchFrame() : arena_(&ScratchArena::local()) { arena_->enter(); }
  ~ScratchFrame() { arena_->exit(); }
  ScratchFrame(const ScratchFrame&) = delete;
  ScratchFrame& operator=(const ScratchFrame&) = delete;

  [[nodiscard]] std::pmr::memory_resource* resource() const {
    return arena_->resource();
  }

 private:
  ScratchArena* arena_;
};

}  // namespace agedtr::numerics
