// Special functions needed by the distribution library: log-gamma,
// regularized incomplete gamma functions, digamma/trigamma (gamma MLE),
// and the error function complement inverse (normal quantiles).
//
// Implementations follow the classic Lanczos / series / continued-fraction
// constructions (Numerical Recipes style) and are accurate to ~1e-12 over
// the parameter ranges exercised by the library (a in (0, 1e6]).
#pragma once

namespace agedtr::numerics {

/// ln Γ(x) for x > 0 (Lanczos approximation, g = 7, n = 9).
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a, x)/Γ(a), a > 0, x ≥ 0.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Inverse of P(a, ·): returns x with P(a, x) = p, for p in [0, 1).
[[nodiscard]] double gamma_p_inv(double a, double p);

/// Digamma ψ(x) = d/dx ln Γ(x), x > 0.
[[nodiscard]] double digamma(double x);

/// Trigamma ψ′(x), x > 0.
[[nodiscard]] double trigamma(double x);

/// Standard normal CDF Φ(x).
[[nodiscard]] double normal_cdf(double x);

/// Standard normal quantile Φ⁻¹(p), p in (0, 1) (Acklam's rational
/// approximation polished with one Halley step).
[[nodiscard]] double normal_quantile(double p);

}  // namespace agedtr::numerics
