// Scalar root finding: Brent's method with a bisection safeguard, plus a
// bracket-expansion helper. Used by quantile inversion and the MLE fitters.
#pragma once

#include <functional>

namespace agedtr::numerics {

/// Finds x in [a, b] with f(x) = 0 given f(a)·f(b) <= 0 (Brent's method).
/// Converges to |interval| <= tol (absolute) or machine precision.
[[nodiscard]] double brent_root(const std::function<double(double)>& f,
                                double a, double b, double tol = 1e-12,
                                int max_iter = 200);

/// Expands [a, b] geometrically (factor 1.6, up to `max_tries`) until the
/// function changes sign, then returns the bracket. Throws ConvergenceError
/// if no sign change is found.
struct Bracket {
  double a;
  double b;
};
[[nodiscard]] Bracket expand_bracket(const std::function<double(double)>& f,
                                     double a, double b, int max_tries = 60);

}  // namespace agedtr::numerics
