// Derivative-free minimization: golden-section / Brent for scalars and
// Nelder–Mead for low-dimensional problems (shifted-Gamma and Weibull MLE).
#pragma once

#include <functional>
#include <vector>

namespace agedtr::numerics {

struct ScalarMinResult {
  double x = 0.0;
  double value = 0.0;
  int evaluations = 0;
};

/// Brent's parabolic-interpolation minimizer on [a, b] (unimodal f).
[[nodiscard]] ScalarMinResult minimize_scalar(
    const std::function<double(double)>& f, double a, double b,
    double tol = 1e-10, int max_iter = 200);

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Standard Nelder–Mead with adaptive restarts disabled; `scale` sets the
/// initial simplex edge lengths per coordinate (defaults to max(|x0|,1)·0.1).
[[nodiscard]] NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, std::vector<double> scale = {},
    double tol = 1e-10, int max_iter = 2000);

}  // namespace agedtr::numerics
