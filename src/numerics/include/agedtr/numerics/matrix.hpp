// Small dense matrix utilities: the phase-type distribution needs the
// matrix exponential e^{Tt} of its sub-generator (scaling-and-squaring with
// a Padé(6,6) core), matrix-vector products, and a dense LU solve for the
// moment formulas E[X^k] = k!·α(−T)^{-k}·1.
//
// Row-major storage; sizes here are tiny (phase counts ≲ 32), so clarity
// beats blocking.
#pragma once

#include <cstddef>
#include <vector>

namespace agedtr::numerics {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix operator*(const Matrix& other) const;
  [[nodiscard]] Matrix operator+(const Matrix& other) const;
  [[nodiscard]] Matrix operator-(const Matrix& other) const;
  [[nodiscard]] Matrix scaled(double factor) const;

  /// Row vector × matrix (v.size() == rows()).
  [[nodiscard]] std::vector<double> left_multiply(
      const std::vector<double>& v) const;
  /// Matrix × column vector (v.size() == cols()).
  [[nodiscard]] std::vector<double> right_multiply(
      const std::vector<double>& v) const;

  /// Max absolute row sum (the induced ∞-norm).
  [[nodiscard]] double inf_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// e^{A} by scaling-and-squaring with a Padé(6,6) approximant. Accurate to
/// ~1e-12 for the modest norms phase-type generators produce.
[[nodiscard]] Matrix matrix_exponential(const Matrix& a);

/// Solves A·x = b by LU with partial pivoting (throws on singularity).
[[nodiscard]] std::vector<double> solve_dense(Matrix a,
                                              std::vector<double> b);

}  // namespace agedtr::numerics
