// Interpolation on sorted abscissae: piecewise linear, and monotone PCHIP
// (Fritsch–Carlson) used for smooth CDF evaluation from lattice data.
#pragma once

#include <vector>

namespace agedtr::numerics {

/// Piecewise-linear interpolant; extrapolates with the boundary values
/// (clamped), which is the right behaviour for CDFs.
class LinearInterpolator {
 public:
  LinearInterpolator() = default;
  /// `x` must be strictly increasing and the sizes equal (>= 2).
  LinearInterpolator(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] double operator()(double xq) const;
  [[nodiscard]] bool empty() const { return x_.empty(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Monotonicity-preserving piecewise cubic Hermite (PCHIP). If the data are
/// monotone the interpolant is monotone — no overshoot in CDFs.
class PchipInterpolator {
 public:
  PchipInterpolator() = default;
  PchipInterpolator(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] double operator()(double xq) const;
  /// Derivative of the interpolant (usable as a pdf when y is a CDF).
  [[nodiscard]] double derivative(double xq) const;
  [[nodiscard]] bool empty() const { return x_.empty(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> d_;  // endpoint derivatives per knot
};

}  // namespace agedtr::numerics
