#include "agedtr/numerics/special.hpp"

#include <cmath>
#include <limits>

#include "agedtr/util/error.hpp"

namespace agedtr::numerics {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

// Lanczos coefficients (g = 7, 9 terms), good to ~15 significant digits.
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

// Series expansion of P(a, x), valid and fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) {
      return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
    }
  }
  throw ConvergenceError("gamma_p_series: no convergence");
}

// Continued fraction for Q(a, x) (modified Lentz), valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
    }
  }
  throw ConvergenceError("gamma_q_cf: no convergence");
}

}  // namespace

double log_gamma(double x) {
  AGEDTR_REQUIRE(x > 0.0, "log_gamma requires x > 0");
  if (x < 0.5) {
    // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) sum += kLanczos[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double gamma_p(double a, double x) {
  AGEDTR_REQUIRE(a > 0.0, "gamma_p requires a > 0");
  AGEDTR_REQUIRE(x >= 0.0, "gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  return (x < a + 1.0) ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  AGEDTR_REQUIRE(a > 0.0, "gamma_q requires a > 0");
  AGEDTR_REQUIRE(x >= 0.0, "gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  return (x < a + 1.0) ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double gamma_p_inv(double a, double p) {
  AGEDTR_REQUIRE(a > 0.0, "gamma_p_inv requires a > 0");
  AGEDTR_REQUIRE(p >= 0.0 && p < 1.0, "gamma_p_inv requires p in [0, 1)");
  if (p == 0.0) return 0.0;
  // Initial guess (Wilson–Hilferty), then safeguarded Newton.
  double x;
  if (a > 1.0) {
    const double g = normal_quantile(p);
    const double t = 1.0 - 1.0 / (9.0 * a) + g / (3.0 * std::sqrt(a));
    x = a * t * t * t;
    if (x <= 0.0) x = 1e-8;
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    x = (p < t) ? std::pow(p / t, 1.0 / a)
                : 1.0 - std::log1p(-(p - t) / (1.0 - t));
  }
  const double lga = log_gamma(a);
  for (int it = 0; it < 100; ++it) {
    const double err = gamma_p(a, x) - p;
    const double pdf =
        std::exp((a - 1.0) * std::log(x) - x - lga);  // d/dx P(a, x)
    if (pdf <= 0.0) break;
    double dx = err / pdf;
    // Safeguard: keep x positive and steps sane.
    double xn = x - dx;
    if (xn <= 0.0) xn = 0.5 * x;
    if (std::fabs(xn - x) < 1e-14 * (x + 1e-300)) return xn;
    x = xn;
  }
  return x;
}

double digamma(double x) {
  AGEDTR_REQUIRE(x > 0.0, "digamma requires x > 0");
  double result = 0.0;
  // Recurrence to push the argument above 10, then the asymptotic series
  // with Bernoulli terms through B₁₀ (error ~ 2e−14 at x = 10).
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double trigamma(double x) {
  AGEDTR_REQUIRE(x > 0.0, "trigamma requires x > 0");
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result +=
      inv * (1.0 +
             inv * (0.5 +
                    inv * (1.0 / 6.0 -
                           inv2 * (1.0 / 30.0 -
                                   inv2 * (1.0 / 42.0 - inv2 / 30.0)))));
  return result;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile requires p in (0, 1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley polish step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

}  // namespace agedtr::numerics
