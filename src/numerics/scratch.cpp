#include "agedtr/numerics/scratch.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "agedtr/util/metrics.hpp"

namespace agedtr::numerics {

namespace {

// 64 KiB covers a full 4096-cell convolution (two half-spectra, the product
// and the time-domain buffer) without a single growth step; larger grids
// grow once and retain.
constexpr std::size_t kInitialBytes = std::size_t{1} << 16;

// Total retained scratch bytes across all live threads (delta ledger: each
// arena adds its capacity changes and subtracts itself on thread exit).
metrics::Gauge& arena_bytes_gauge() {
  static metrics::Gauge& g = metrics::MetricsRegistry::global().gauge(
      "workspace.arena_bytes",
      "retained per-thread scratch arena bytes (all threads)");
  return g;
}

}  // namespace

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

ScratchArena::ScratchArena() : buffer_(kInitialBytes), meter_(this) {
  mono_.emplace(buffer_.data(), buffer_.size(),
                std::pmr::new_delete_resource());
  arena_bytes_gauge().add(static_cast<double>(buffer_.size()));
}

ScratchArena::~ScratchArena() {
  arena_bytes_gauge().add(-static_cast<double>(buffer_.size()));
}

void* ScratchArena::Meter::do_allocate(std::size_t bytes,
                                       std::size_t alignment) {
  // Alignment slop is at most `alignment` per allocation; close enough for
  // the high-water heuristic.
  owner_->frame_bytes_ += bytes;
  return owner_->mono_->allocate(bytes, alignment);
}

void ScratchArena::exit() {
  if (--depth_ != 0) return;
  high_water_ = std::max(high_water_, frame_bytes_);
  frame_bytes_ = 0;
  // Rewind: monotonic release() resets the bump pointer to the start of the
  // initial buffer and frees any upstream overflow chunks.
  mono_->release();
  if (buffer_.size() < high_water_) {
    const std::size_t grown = std::bit_ceil(high_water_);
    arena_bytes_gauge().add(static_cast<double>(grown) -
                            static_cast<double>(buffer_.size()));
    mono_.reset();  // must not outlive the buffer it points into
    buffer_.assign(grown, std::byte{});
    mono_.emplace(buffer_.data(), buffer_.size(),
                  std::pmr::new_delete_resource());
  }
}

}  // namespace agedtr::numerics
