#include "agedtr/numerics/interp.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::numerics {
namespace {

std::size_t find_interval(const std::vector<double>& x, double xq) {
  // Returns i such that x[i] <= xq < x[i+1], clamped to valid intervals.
  const auto it = std::upper_bound(x.begin(), x.end(), xq);
  if (it == x.begin()) return 0;
  const std::size_t idx = static_cast<std::size_t>(it - x.begin()) - 1;
  return std::min(idx, x.size() - 2);
}

void validate_knots(const std::vector<double>& x,
                    const std::vector<double>& y) {
  AGEDTR_REQUIRE(x.size() == y.size(), "interpolator: size mismatch");
  AGEDTR_REQUIRE(x.size() >= 2, "interpolator: need at least two knots");
  for (std::size_t i = 1; i < x.size(); ++i) {
    AGEDTR_REQUIRE(x[i] > x[i - 1], "interpolator: x must strictly increase");
  }
}

}  // namespace

LinearInterpolator::LinearInterpolator(std::vector<double> x,
                                       std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  validate_knots(x_, y_);
}

double LinearInterpolator::operator()(double xq) const {
  AGEDTR_REQUIRE(!x_.empty(), "LinearInterpolator: empty");
  if (xq <= x_.front()) return y_.front();
  if (xq >= x_.back()) return y_.back();
  const std::size_t i = find_interval(x_, xq);
  const double t = (xq - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

PchipInterpolator::PchipInterpolator(std::vector<double> x,
                                     std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  validate_knots(x_, y_);
  const std::size_t n = x_.size();
  std::vector<double> h(n - 1), delta(n - 1);
  for (std::size_t i = 0; i < n - 1; ++i) {
    h[i] = x_[i + 1] - x_[i];
    delta[i] = (y_[i + 1] - y_[i]) / h[i];
  }
  d_.assign(n, 0.0);
  // Fritsch–Carlson derivative choice at interior knots.
  for (std::size_t i = 1; i < n - 1; ++i) {
    if (delta[i - 1] * delta[i] > 0.0) {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      d_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  // One-sided three-point end derivatives, limited to preserve shape.
  const auto end_derivative = [](double h0, double h1, double d0, double d1) {
    double d = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (d * d0 <= 0.0) {
      d = 0.0;
    } else if (d0 * d1 <= 0.0 && std::fabs(d) > 3.0 * std::fabs(d0)) {
      d = 3.0 * d0;
    }
    return d;
  };
  if (n == 2) {
    d_[0] = d_[1] = delta[0];
  } else {
    d_[0] = end_derivative(h[0], h[1], delta[0], delta[1]);
    d_[n - 1] =
        end_derivative(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  }
}

double PchipInterpolator::operator()(double xq) const {
  AGEDTR_REQUIRE(!x_.empty(), "PchipInterpolator: empty");
  if (xq <= x_.front()) return y_.front();
  if (xq >= x_.back()) return y_.back();
  const std::size_t i = find_interval(x_, xq);
  const double h = x_[i + 1] - x_[i];
  const double t = (xq - x_[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * y_[i] + h10 * h * d_[i] + h01 * y_[i + 1] + h11 * h * d_[i + 1];
}

double PchipInterpolator::derivative(double xq) const {
  AGEDTR_REQUIRE(!x_.empty(), "PchipInterpolator: empty");
  if (xq <= x_.front() || xq >= x_.back()) return 0.0;
  const std::size_t i = find_interval(x_, xq);
  const double h = x_[i + 1] - x_[i];
  const double t = (xq - x_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6.0 * t2 - 6.0 * t) / h;
  const double dh10 = 3.0 * t2 - 4.0 * t + 1.0;
  const double dh01 = (-6.0 * t2 + 6.0 * t) / h;
  const double dh11 = 3.0 * t2 - 2.0 * t;
  return dh00 * y_[i] + dh10 * d_[i] + dh01 * y_[i + 1] + dh11 * d_[i + 1];
}

}  // namespace agedtr::numerics
