#include "agedtr/numerics/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "agedtr/numerics/fft.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::numerics {

LatticeDensity::LatticeDensity(double dt, std::vector<double> mass,
                               double tail)
    : dt_(dt), mass_(std::move(mass)), tail_(tail) {
  AGEDTR_REQUIRE(dt_ > 0.0, "LatticeDensity: dt must be positive");
  AGEDTR_REQUIRE(!mass_.empty(), "LatticeDensity: empty mass vector");
  AGEDTR_REQUIRE(tail_ >= -1e-12, "LatticeDensity: negative tail mass");
  tail_ = std::max(tail_, 0.0);
  double sum = 0.0;
  for (double m : mass_) {
    AGEDTR_REQUIRE(m >= -1e-12, "LatticeDensity: negative cell mass");
    sum += m;
  }
  for (double& m : mass_) {
    if (m < 0.0) m = 0.0;
  }
  AGEDTR_REQUIRE(sum + tail_ <= 1.0 + 1e-9,
                 "LatticeDensity: total mass exceeds 1");
}

LatticeDensity LatticeDensity::zero(double dt, std::size_t n) {
  std::vector<double> mass(n, 0.0);
  AGEDTR_REQUIRE(n >= 1, "LatticeDensity::zero: n must be >= 1");
  mass[0] = 1.0;
  return LatticeDensity(dt, std::move(mass), 0.0);
}

double LatticeDensity::total() const {
  return std::accumulate(mass_.begin(), mass_.end(), 0.0) + tail_;
}

void LatticeDensity::ensure_cdf() const {
  if (cdf_.size() == mass_.size()) return;
  cdf_.resize(mass_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    acc += mass_[i];
    cdf_[i] = acc;
  }
}

double LatticeDensity::cdf(std::size_t i) const {
  ensure_cdf();
  if (i >= cdf_.size()) return 1.0 - tail_;
  return cdf_[i];
}

double LatticeDensity::cdf_at(double t) const {
  if (t < 0.0) return 0.0;
  // cdf(i) covers mass through the cell ((i−½)dt, (i+½)dt], i.e. it
  // approximates F((i+½)dt); shift by half a cell so cdf_at(t) ≈ F(t).
  const double pos = std::max(t / dt_ - 0.5, 0.0);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= mass_.size()) return 1.0 - tail_;
  const double frac = pos - static_cast<double>(lo);
  return cdf(lo) * (1.0 - frac) + cdf(lo + 1) * frac;
}

double LatticeDensity::grid_mean() const {
  double sum = 0.0;
  for (std::size_t i = 1; i < mass_.size(); ++i) {
    sum += static_cast<double>(i) * mass_[i];
  }
  return sum * dt_;
}

double LatticeDensity::expect(const std::function<double(double)>& g) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    if (mass_[i] != 0.0) sum += g(static_cast<double>(i) * dt_) * mass_[i];
  }
  return sum;
}

LatticeDensity LatticeDensity::convolve(const LatticeDensity& other) const {
  AGEDTR_REQUIRE(std::fabs(dt_ - other.dt_) < 1e-12 * dt_,
                 "LatticeDensity::convolve: lattice steps differ");
  const std::size_t out_n = std::max(mass_.size(), other.mass_.size());
  std::vector<double> full =
      agedtr::numerics::convolve(mass_, other.mass_, /*clamp_nonnegative=*/true);
  std::vector<double> mass(out_n, 0.0);
  double overflow = 0.0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (i < out_n) {
      mass[i] = full[i];
    } else {
      overflow += full[i];
    }
  }
  // Any term involving either tail exceeds the grid (tails sit at >= n·dt and
  // the other addend is nonnegative), so it joins the output tail.
  const double grid_a = std::accumulate(mass_.begin(), mass_.end(), 0.0);
  const double grid_b =
      std::accumulate(other.mass_.begin(), other.mass_.end(), 0.0);
  const double tail =
      overflow + tail_ * (grid_b + other.tail_) + other.tail_ * grid_a;
  return LatticeDensity(dt_, std::move(mass), std::min(tail, 1.0));
}

LatticeDensity LatticeDensity::convolve_power(unsigned k) const {
  LatticeDensity result = zero(dt_, mass_.size());
  if (k == 0) return result;
  LatticeDensity base = *this;
  while (true) {
    if (k & 1u) result = result.convolve(base);
    k >>= 1u;
    if (k == 0) break;
    base = base.convolve(base);
  }
  return result;
}

LatticeDensity LatticeDensity::max_of(const LatticeDensity& a,
                                      const LatticeDensity& b) {
  AGEDTR_REQUIRE(std::fabs(a.dt_ - b.dt_) < 1e-12 * a.dt_,
                 "LatticeDensity::max_of: lattice steps differ");
  const std::size_t n = std::max(a.size(), b.size());
  a.ensure_cdf();
  b.ensure_cdf();
  std::vector<double> mass(n, 0.0);
  double prev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double fa = i < a.size() ? a.cdf_[std::min(i, a.size() - 1)]
                                   : 1.0 - a.tail_;
    const double fb = i < b.size() ? b.cdf_[std::min(i, b.size() - 1)]
                                   : 1.0 - b.tail_;
    const double fmax = fa * fb;
    mass[i] = std::max(fmax - prev, 0.0);
    prev = fmax;
  }
  const double tail = std::max(1.0 - prev, 0.0);
  return LatticeDensity(a.dt_, std::move(mass), tail);
}

}  // namespace agedtr::numerics
