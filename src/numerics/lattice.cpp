#include "agedtr/numerics/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <functional>
#include <memory_resource>
#include <utility>
#include <vector>

#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/kernels.hpp"
#include "agedtr/numerics/scratch.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::numerics {

LatticeDensity::LatticeDensity(double dt, std::vector<double> mass,
                               double tail)
    : dt_(dt), mass_(std::move(mass)), tail_(tail) {
  AGEDTR_REQUIRE(dt_ > 0.0, "LatticeDensity: dt must be positive");
  AGEDTR_REQUIRE(!mass_.empty(), "LatticeDensity: empty mass vector");
  AGEDTR_REQUIRE(tail_ >= -1e-12, "LatticeDensity: negative tail mass");
  tail_ = std::max(tail_, 0.0);
  AGEDTR_REQUIRE(kernels::min_value(mass_.data(), mass_.size()) >= -1e-12,
                 "LatticeDensity: negative cell mass");
  const double sum = kernels::sum(mass_.data(), mass_.size());
  kernels::clamp_nonnegative(mass_.data(), mass_.size());
  AGEDTR_REQUIRE(sum + tail_ <= 1.0 + 1e-9,
                 "LatticeDensity: total mass exceeds 1");
}

LatticeDensity LatticeDensity::zero(double dt, std::size_t n) {
  std::vector<double> mass(n, 0.0);
  AGEDTR_REQUIRE(n >= 1, "LatticeDensity::zero: n must be >= 1");
  mass[0] = 1.0;
  return LatticeDensity(dt, std::move(mass), 0.0);
}

double LatticeDensity::total() const {
  return kernels::sum(mass_.data(), mass_.size()) + tail_;
}

void LatticeDensity::ensure_cdf() const {
  if (cdf_.size() == mass_.size()) return;
  cdf_.resize(mass_.size());
  kernels::prefix_sum(mass_.data(), cdf_.data(), mass_.size());
}

const Spectrum& LatticeDensity::ensure_spectrum(std::size_t padded) const {
  if (spectrum_.padded != padded) {
    AGEDTR_REQUIRE(padded >= mass_.size(),
                   "LatticeDensity::ensure_spectrum: padded length shorter "
                   "than the mass vector");
    const FftPlan& plan = fft_plan(padded);
    spectrum_.bins.resize(plan.bins());
    plan.rfft(mass_.data(), mass_.size(), spectrum_.bins.data());
    spectrum_.padded = padded;
  }
  return spectrum_;
}

double LatticeDensity::cdf(std::size_t i) const {
  ensure_cdf();
  if (i >= cdf_.size()) return 1.0 - tail_;
  return cdf_[i];
}

double LatticeDensity::cdf_at(double t) const {
  if (t < 0.0) return 0.0;
  // cdf(i) covers mass through the cell ((i−½)dt, (i+½)dt], i.e. it
  // approximates F((i+½)dt); shift by half a cell so cdf_at(t) ≈ F(t).
  const double pos = std::max(t / dt_ - 0.5, 0.0);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= mass_.size()) return 1.0 - tail_;
  const double frac = pos - static_cast<double>(lo);
  return cdf(lo) * (1.0 - frac) + cdf(lo + 1) * frac;
}

double LatticeDensity::grid_mean() const {
  double sum = 0.0;
  AGEDTR_PRAGMA(omp simd reduction(+ : sum))
  for (std::size_t i = 1; i < mass_.size(); ++i) {
    sum += static_cast<double>(i) * mass_[i];
  }
  return sum * dt_;
}

double LatticeDensity::expect(const std::function<double(double)>& g) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    if (mass_[i] != 0.0) sum += g(static_cast<double>(i) * dt_) * mass_[i];
  }
  return sum;
}

bool LatticeDensity::is_delta_at_zero() const {
  if (tail_ != 0.0 || mass_[0] != 1.0) return false;
  for (std::size_t i = 1; i < mass_.size(); ++i) {
    if (mass_[i] != 0.0) return false;
  }
  return true;
}

LatticeDensity LatticeDensity::grown(std::size_t n) const {
  if (n == mass_.size()) return *this;  // caches ride along
  AGEDTR_ASSERT(n > mass_.size());
  std::vector<double> mass(n, 0.0);
  std::copy(mass_.begin(), mass_.end(), mass.begin());
  return LatticeDensity(dt_, std::move(mass), tail_);
}

LatticeDensity LatticeDensity::convolve(const LatticeDensity& other) const {
  AGEDTR_REQUIRE(std::fabs(dt_ - other.dt_) < 1e-12 * dt_,
                 "LatticeDensity::convolve: lattice steps differ");
  const std::size_t out_n = std::max(mass_.size(), other.mass_.size());
  // Convolving with the exact point mass at zero is the identity up to a
  // grid resize — bit-identically so under both backends (the direct sum
  // computes out[j] += 1·b[j] and the truncation only grows indices), so
  // the shortcut is safe for the fft-vs-direct differential harness.
  if (is_delta_at_zero()) return other.grown(out_n);
  if (other.is_delta_at_zero()) return grown(out_n);

  const std::size_t full_n = mass_.size() + other.mass_.size() - 1;
  std::vector<double> mass(out_n, 0.0);
  double overflow = 0.0;
  if (use_direct_convolution(mass_.size(), other.mass_.size())) {
    const std::vector<double> full = agedtr::numerics::convolve(
        mass_, other.mass_, /*clamp_nonnegative=*/true);
    std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(out_n, full.size())),
              mass.begin());
    if (full.size() > out_n) {
      overflow = kernels::sum(full.data() + out_n, full.size() - out_n);
    }
  } else {
    // Frequency-domain product over cached spectra: each operand is
    // transformed at most once per padded length (warm solver operands —
    // workspace ladder rungs and k-fold sums — arrive with the spectrum
    // already built), so a convolution costs one pointwise multiply and
    // one inverse transform.
    const std::size_t m = next_pow2(full_n);
    const FftPlan& plan = fft_plan(m);
    const Spectrum& sa = ensure_spectrum(m);
    const Spectrum& sb = other.ensure_spectrum(m);
    ScratchFrame frame;
    std::pmr::vector<std::complex<double>> prod(plan.bins(),
                                                frame.resource());
    std::copy(sa.bins.begin(), sa.bins.end(), prod.begin());
    kernels::pointwise_mul_inplace(prod.data(), sb.bins.data(), plan.bins());
    std::pmr::vector<double> tdomain(m, frame.resource());
    plan.irfft(prod.data(), tdomain.data());
    kernels::clamp_nonnegative(tdomain.data(), full_n);
    std::copy(tdomain.begin(),
              tdomain.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(out_n, full_n)),
              mass.begin());
    if (full_n > out_n) {
      overflow = kernels::sum(tdomain.data() + out_n, full_n - out_n);
    }
  }
  // Any term involving either tail exceeds the grid (tails sit at >= n·dt and
  // the other addend is nonnegative), so it joins the output tail.
  const double grid_a = kernels::sum(mass_.data(), mass_.size());
  const double grid_b =
      kernels::sum(other.mass_.data(), other.mass_.size());
  const double tail =
      overflow + tail_ * (grid_b + other.tail_) + other.tail_ * grid_a;
  return LatticeDensity(dt_, std::move(mass), std::min(tail, 1.0));
}

LatticeDensity LatticeDensity::convolve_power(unsigned k) const {
  LatticeDensity result = zero(dt_, mass_.size());
  if (k == 0) return result;
  LatticeDensity base = *this;
  while (true) {
    if (k & 1u) result = result.convolve(base);
    k >>= 1u;
    if (k == 0) break;
    base = base.convolve(base);
  }
  return result;
}

LatticeDensity LatticeDensity::max_of(const LatticeDensity& a,
                                      const LatticeDensity& b) {
  AGEDTR_REQUIRE(std::fabs(a.dt_ - b.dt_) < 1e-12 * a.dt_,
                 "LatticeDensity::max_of: lattice steps differ");
  const std::size_t n = std::max(a.size(), b.size());
  a.ensure_cdf();
  b.ensure_cdf();
  // F_max = F_a·F_b pointwise (each factor clamped to 1 − tail beyond its
  // grid), then mass by adjacent difference — same arithmetic per cell as
  // the scalar loop, split into two vector passes.
  ScratchFrame frame;
  std::pmr::vector<double> prod(n, frame.resource());
  const std::size_t common = std::min(a.size(), b.size());
  std::copy_n(a.cdf_.data(), common, prod.data());
  kernels::mul_inplace(prod.data(), b.cdf_.data(), common);
  if (a.size() < n) {
    const double fa = 1.0 - a.tail_;
    const double* fb = b.cdf_.data();
    AGEDTR_SIMD
    for (std::size_t i = common; i < n; ++i) prod[i] = fa * fb[i];
  } else if (b.size() < n) {
    const double fb = 1.0 - b.tail_;
    const double* fa = a.cdf_.data();
    AGEDTR_SIMD
    for (std::size_t i = common; i < n; ++i) prod[i] = fa[i] * fb;
  }
  std::vector<double> mass(n, 0.0);
  mass[0] = std::max(prod[0], 0.0);
  double* out = mass.data();
  const double* pr = prod.data();
  AGEDTR_SIMD
  for (std::size_t i = 1; i < n; ++i) {
    const double d = pr[i] - pr[i - 1];
    out[i] = d < 0.0 ? 0.0 : d;
  }
  const double tail = std::max(1.0 - prod[n - 1], 0.0);
  return LatticeDensity(a.dt_, std::move(mass), tail);
}

}  // namespace agedtr::numerics
