#include "agedtr/numerics/fft.hpp"

#include <cmath>
#include <complex>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::numerics {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  AGEDTR_REQUIRE(n != 0 && (n & (n - 1)) == 0,
                 "fft: size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b,
                             bool clamp_nonnegative) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_size = a.size() + b.size() - 1;
  std::vector<double> out(out_size, 0.0);
  if (a.size() * b.size() <= 4096) {  // direct sum is faster and exact
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == 0.0) continue;
      for (std::size_t j = 0; j < b.size(); ++j) {
        out[i + j] += a[i] * b[j];
      }
    }
  } else {
    const std::size_t n = next_pow2(out_size);
    std::vector<std::complex<double>> fa(n), fb(n);
    for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
    for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
    fft(fa, false);
    fft(fb, false);
    for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
    fft(fa, true);
    for (std::size_t i = 0; i < out_size; ++i) out[i] = fa[i].real();
  }
  if (clamp_nonnegative) {
    for (double& x : out) {
      if (x < 0.0) x = 0.0;
    }
  }
  return out;
}

}  // namespace agedtr::numerics
