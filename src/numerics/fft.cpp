#include "agedtr/numerics/fft.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <memory_resource>
#include <utility>
#include <vector>

#include "agedtr/numerics/kernels.hpp"
#include "agedtr/numerics/scratch.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::numerics {

namespace {

using Complex = std::complex<double>;

// Below this product of operand lengths the O(n·m) direct sum beats the
// transform round trip (measured in bench/ablation_solver.cpp's
// fft-vs-direct row; see docs/FFT_PIPELINE.md).
constexpr std::size_t kDirectCrossover = 4096;

metrics::Counter& plan_hit_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "fft.plan_hit", "FFT plan cache lookups served from the cache");
  return c;
}

metrics::Counter& plan_miss_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "fft.plan_miss", "FFT plan cache lookups that built a new plan");
  return c;
}

std::atomic<ConvolutionBackend> g_backend{ConvolutionBackend::kAuto};

// One slot per power of two; plans are built once under the mutex,
// published with a release store, and deliberately never freed (they are
// read lock-free for the process lifetime).
std::array<std::atomic<const FftPlan*>, std::numeric_limits<std::size_t>::digits>
    g_plans{};
Mutex g_plan_mutex;

}  // namespace

std::size_t next_pow2(std::size_t n) {
  AGEDTR_REQUIRE(n >= 1, "next_pow2: n must be >= 1");
  constexpr std::size_t kTop = std::size_t{1}
                               << (std::numeric_limits<std::size_t>::digits - 1);
  AGEDTR_REQUIRE(n <= kTop,
                 "next_pow2: n exceeds the largest representable power of two");
  return std::bit_ceil(n);
}

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  AGEDTR_REQUIRE(n != 0 && (n & (n - 1)) == 0,
                 "fft: size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

FftPlan::FftPlan(std::size_t n) : n_(n), half_(n / 2) {
  AGEDTR_REQUIRE(n >= 2 && (n & (n - 1)) == 0,
                 "FftPlan: size must be a power of two >= 2");
  rev_.resize(half_);
  rev_[0] = 0;
  for (std::size_t i = 1; i < half_; ++i) {
    rev_[i] = static_cast<std::uint32_t>(
        (rev_[i >> 1] >> 1) | ((i & 1u) != 0 ? half_ >> 1 : 0));
  }
  roots_.resize(half_ / 2);
  for (std::size_t j = 0; j < half_ / 2; ++j) {
    const double angle = -2.0 * M_PI * static_cast<double>(j) /
                         static_cast<double>(half_);
    roots_[j] = Complex(std::cos(angle), std::sin(angle));
  }
  split_.resize(half_ + 1);
  for (std::size_t k = 0; k <= half_; ++k) {
    const double angle =
        -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n_);
    split_[k] = Complex(std::cos(angle), std::sin(angle));
  }
}

void FftPlan::fft_half(Complex* a, bool inverse) const {
  const std::size_t m = half_;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = rev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= m; len <<= 1) {
    const std::size_t stride = m / len;  // twiddle table step for this stage
    for (std::size_t i = 0; i < m; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex w = inverse ? std::conj(roots_[k * stride])
                                  : roots_[k * stride];
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(m);
    for (std::size_t i = 0; i < m; ++i) a[i] *= scale;
  }
}

void FftPlan::rfft(const double* in, std::size_t len, Complex* out) const {
  AGEDTR_REQUIRE(len <= n_, "FftPlan::rfft: input longer than the plan size");
  ScratchFrame frame;
  std::pmr::vector<Complex> z(half_, frame.resource());
  // Pack even samples into the real lane and odd samples into the
  // imaginary lane of a half-size complex input (zero-padded past len).
  const std::size_t full = len / 2;  // pairs with both samples in range
  for (std::size_t j = 0; j < full; ++j) z[j] = Complex(in[2 * j], in[2 * j + 1]);
  if (len % 2 != 0 && full < half_) z[full] = Complex(in[len - 1], 0.0);
  fft_half(z.data(), /*inverse=*/false);
  // Split: with Z = fft(even + i·odd), E_k = (Z_k + conj(Z_{m−k}))/2 and
  // O_k = (Z_k − conj(Z_{m−k}))/(2i) recover the even/odd spectra, and
  // X_k = E_k + w_k·O_k with w_k = exp(−2πik/n) merges them.
  const Complex z0 = z[0];
  out[0] = Complex(z0.real() + z0.imag(), 0.0);
  out[half_] = Complex(z0.real() - z0.imag(), 0.0);
  for (std::size_t k = 1; k < half_; ++k) {
    const Complex zk = z[k];
    const Complex zc = std::conj(z[half_ - k]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);
    out[k] = even + split_[k] * odd;
  }
}

void FftPlan::irfft(const Complex* in, double* out) const {
  ScratchFrame frame;
  std::pmr::vector<Complex> z(half_, frame.resource());
  // Invert the split (X_k = E_k + w_k·O_k and X_{m−k} = conj(E_k − w_k·O_k))
  // and rebuild the packed half-size signal Z_k = E_k + i·O_k.
  const double e0 = 0.5 * (in[0].real() + in[half_].real());
  const double o0 = 0.5 * (in[0].real() - in[half_].real());
  z[0] = Complex(e0, o0);
  for (std::size_t k = 1; k < half_; ++k) {
    const Complex xk = in[k];
    const Complex xc = std::conj(in[half_ - k]);
    const Complex even = 0.5 * (xk + xc);
    const Complex odd = std::conj(split_[k]) * (0.5 * (xk - xc));
    z[k] = even + Complex(0.0, 1.0) * odd;
  }
  fft_half(z.data(), /*inverse=*/true);  // includes the 1/(n/2) scaling
  for (std::size_t j = 0; j < half_; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

const FftPlan& fft_plan(std::size_t n) {
  AGEDTR_REQUIRE(n >= 2 && (n & (n - 1)) == 0,
                 "fft_plan: size must be a power of two >= 2");
  const auto idx = static_cast<std::size_t>(std::countr_zero(n));
  const FftPlan* plan = g_plans[idx].load(std::memory_order_acquire);
  if (plan != nullptr) {
    plan_hit_counter().add();
    return *plan;
  }
  plan_miss_counter().add();
  MutexLock lock(&g_plan_mutex);
  plan = g_plans[idx].load(std::memory_order_acquire);
  if (plan == nullptr) {
    // Intentionally immortal: the plan is published lock-free and read for
    // the process lifetime; a deleter would race the readers.
    // agedtr-lint: allow(naked-new)
    plan = new FftPlan(n);
    g_plans[idx].store(plan, std::memory_order_release);
  }
  return *plan;
}

std::vector<Complex> rfft(const std::vector<double>& x) {
  AGEDTR_REQUIRE(x.size() >= 2 && (x.size() & (x.size() - 1)) == 0,
                 "rfft: size must be a power of two >= 2");
  const FftPlan& plan = fft_plan(x.size());
  std::vector<Complex> out(plan.bins());
  plan.rfft(x.data(), x.size(), out.data());
  return out;
}

std::vector<double> irfft(const std::vector<Complex>& spectrum,
                          std::size_t n) {
  const FftPlan& plan = fft_plan(n);
  AGEDTR_REQUIRE(spectrum.size() == plan.bins(),
                 "irfft: spectrum must hold n/2 + 1 bins");
  std::vector<double> out(n);
  plan.irfft(spectrum.data(), out.data());
  return out;
}

void set_convolution_backend(ConvolutionBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

ConvolutionBackend convolution_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

bool use_direct_convolution(std::size_t a_size, std::size_t b_size) {
  switch (convolution_backend()) {
    case ConvolutionBackend::kDirect:
      return true;
    case ConvolutionBackend::kFft:
      // A 1x1 product has no power-of-two transform length >= 2; the
      // single multiply is exact either way.
      return a_size + b_size < 3;
    case ConvolutionBackend::kAuto:
      break;
  }
  return a_size * b_size <= kDirectCrossover;
}

std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b,
                             bool clamp_nonnegative) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_size = a.size() + b.size() - 1;
  std::vector<double> out(out_size, 0.0);
  if (use_direct_convolution(a.size(), b.size())) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == 0.0) continue;
      const double ai = a[i];
      double* dst = out.data() + i;
      const double* src = b.data();
      const std::size_t m = b.size();
      AGEDTR_SIMD
      for (std::size_t j = 0; j < m; ++j) dst[j] += ai * src[j];
    }
  } else {
    const std::size_t n = next_pow2(out_size);
    const FftPlan& plan = fft_plan(n);
    ScratchFrame frame;
    std::pmr::vector<Complex> fa(plan.bins(), frame.resource());
    std::pmr::vector<Complex> fb(plan.bins(), frame.resource());
    plan.rfft(a.data(), a.size(), fa.data());
    plan.rfft(b.data(), b.size(), fb.data());
    kernels::pointwise_mul_inplace(fa.data(), fb.data(), plan.bins());
    std::pmr::vector<double> tdomain(n, frame.resource());
    plan.irfft(fa.data(), tdomain.data());
    for (std::size_t i = 0; i < out_size; ++i) out[i] = tdomain[i];
  }
  if (clamp_nonnegative) kernels::clamp_nonnegative(out.data(), out.size());
  return out;
}

}  // namespace agedtr::numerics
