#include "agedtr/numerics/quadrature.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::numerics {
namespace {

// Gauss–Kronrod 15-point nodes on [-1, 1] (symmetric; nonnegative half).
constexpr double kGk15Nodes[8] = {
    0.991455371120813, 0.949107912342759, 0.864864423359769,
    0.741531185599394, 0.586087235467691, 0.405845151377397,
    0.207784955007898, 0.000000000000000};
constexpr double kGk15Weights[8] = {
    0.022935322010529, 0.063092092629979, 0.104790010322250,
    0.140653259715525, 0.169004726639267, 0.190350578064785,
    0.204432940075298, 0.209482141084728};
// Embedded 7-point Gauss weights (nodes are the odd-index Kronrod nodes).
constexpr double kG7Weights[4] = {0.129484966168870, 0.279705391489277,
                                  0.381830050505119, 0.417959183673469};

struct Interval {
  double a, b, value, error;
  bool operator<(const Interval& o) const { return error < o.error; }
};

Interval gk15(const Integrand& f, double a, double b) {
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double kronrod = 0.0;
  double gauss = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double x = kGk15Nodes[i];
    double fv;
    if (i == 7) {
      fv = f(c);
      kronrod += kGk15Weights[i] * fv;
      gauss += kG7Weights[3] * fv;
    } else {
      const double f1 = f(c - h * x);
      const double f2 = f(c + h * x);
      kronrod += kGk15Weights[i] * (f1 + f2);
      if (i % 2 == 1) gauss += kG7Weights[i / 2] * (f1 + f2);
    }
  }
  kronrod *= h;
  gauss *= h;
  const double diff = std::fabs(kronrod - gauss);
  // Standard QUADPACK-style error inflation.
  const double err = diff > 0.0 ? diff * std::sqrt(diff) * 200.0 *
                                      std::min(1.0, 1.0 / std::sqrt(diff))
                                : 0.0;
  return Interval{a, b, kronrod, std::max(err, diff)};
}

}  // namespace

const GaussRule& gauss_rule(int n) {
  AGEDTR_REQUIRE(n >= 2 && n <= 256, "gauss_rule: order must be in [2, 256]");
  static std::map<int, GaussRule> cache;
  static Mutex mutex;
  MutexLock lock(&mutex);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  GaussRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const int m = (n + 1) / 2;
  for (int i = 0; i < m; ++i) {
    // Initial guess (Chebyshev) then Newton on P_n.
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      pp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  auto [ins, ok] = cache.emplace(n, std::move(rule));
  (void)ok;
  return ins->second;
}

double gauss_legendre(const Integrand& f, double a, double b, int n) {
  const GaussRule& rule = gauss_rule(n);
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rule.weights[i] * f(c + h * rule.nodes[i]);
  }
  return h * sum;
}

QuadratureResult integrate(const Integrand& f, double a, double b,
                           double abs_tol, double rel_tol, int max_intervals) {
  AGEDTR_REQUIRE(std::isfinite(a) && std::isfinite(b),
                 "integrate: bounds must be finite");
  QuadratureResult result;
  if (a == b) return result;
  double sign = 1.0;
  if (a > b) {
    std::swap(a, b);
    sign = -1.0;
  }
  std::priority_queue<Interval> queue;
  Interval whole = gk15(f, a, b);
  result.evaluations = 15;
  double total = whole.value;
  double total_err = whole.error;
  queue.push(whole);
  int intervals = 1;
  while (intervals < max_intervals &&
         total_err > std::max(abs_tol, rel_tol * std::fabs(total))) {
    Interval worst = queue.top();
    queue.pop();
    const double mid = 0.5 * (worst.a + worst.b);
    if (mid <= worst.a || mid >= worst.b) {  // interval at machine resolution
      queue.push(Interval{worst.a, worst.b, worst.value, 0.0});
      total_err -= worst.error;
      continue;
    }
    Interval left = gk15(f, worst.a, mid);
    Interval right = gk15(f, mid, worst.b);
    result.evaluations += 30;
    total += left.value + right.value - worst.value;
    total_err += left.error + right.error - worst.error;
    queue.push(left);
    queue.push(right);
    ++intervals;
  }
  result.value = sign * total;
  result.error = total_err;
  return result;
}

QuadratureResult integrate_to_infinity(const Integrand& f, double a,
                                       double abs_tol, double rel_tol,
                                       int max_intervals) {
  // x = a + t/(1−t) maps t in [0, 1) to [a, ∞); dx = dt/(1−t)^2.
  const auto mapped = [&f, a](double t) {
    const double one_minus = 1.0 - t;
    if (one_minus <= 0.0) return 0.0;
    const double x = a + t / one_minus;
    const double jac = 1.0 / (one_minus * one_minus);
    const double v = f(x) * jac;
    return std::isfinite(v) ? v : 0.0;
  };
  return integrate(mapped, 0.0, 1.0, abs_tol, rel_tol, max_intervals);
}

}  // namespace agedtr::numerics
