#include "agedtr/numerics/roots.hpp"

#include <cmath>
#include <functional>
#include <limits>

#include "agedtr/util/error.hpp"

namespace agedtr::numerics {

double brent_root(const std::function<double(double)>& f, double a, double b,
                  double tol, int max_iter) {
  double fa = f(a);
  double fb = f(b);
  AGEDTR_REQUIRE(fa * fb <= 0.0, "brent_root: root is not bracketed");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  double c = a, fc = fa;
  double d = b - a, e = d;
  const double eps = std::numeric_limits<double>::epsilon();
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * eps * std::fabs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) return b;
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::min(3.0 * xm * q - std::fabs(tol1 * q),
                             std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = d = b - a;
    }
  }
  throw ConvergenceError("brent_root: exceeded maximum iterations");
}

Bracket expand_bracket(const std::function<double(double)>& f, double a,
                       double b, int max_tries) {
  AGEDTR_REQUIRE(a < b, "expand_bracket: need a < b");
  double fa = f(a);
  double fb = f(b);
  for (int i = 0; i < max_tries; ++i) {
    if (fa * fb <= 0.0) return {a, b};
    if (std::fabs(fa) < std::fabs(fb)) {
      a += 1.6 * (a - b);
      fa = f(a);
    } else {
      b += 1.6 * (b - a);
      fb = f(b);
    }
  }
  throw ConvergenceError("expand_bracket: no sign change found");
}

}  // namespace agedtr::numerics
