#include "agedtr/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr {

namespace {

metrics::Gauge& queue_depth_gauge() {
  static metrics::Gauge& g = metrics::MetricsRegistry::global().gauge(
      "threadpool.queue_depth", "tasks enqueued but not yet picked up");
  return g;
}

metrics::Counter& tasks_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "threadpool.tasks_total", "tasks executed by pool workers");
  return c;
}

metrics::Histogram& task_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "threadpool.task_seconds",
      metrics::exponential_buckets(1e-5, 4.0, 14),
      "execution time of one pool task (dequeue to completion)");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      // Explicit predicate loop (not a wait lambda): guarded accesses in a
      // lambda body would escape the thread-safety analysis.
      MutexLock lock(&mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_gauge().add(-1.0);
    tasks_counter().add();
    {
      metrics::ScopedTimer timer(task_seconds());
      task();
    }
  }
}

void ThreadPool::note_enqueued() { queue_depth_gauge().add(1.0); }

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  AGEDTR_REQUIRE(begin <= end, "parallel_for: begin must not exceed end");
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  // Cooperative cancellation: the first iteration to throw flips the flag
  // and every chunk (including the thrower's own remainder) stops before
  // its next iteration, so a failing sweep drains promptly instead of
  // executing to completion. Safe to capture by reference: parallel_for
  // blocks on every future before returning.
  std::atomic<bool> cancel{false};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    futures.push_back(submit([lo, hi = std::min(end, lo + chunk_size), &body,
                              &cancel] {
      for (std::size_t i = lo; i < hi; ++i) {
        if (cancel.load(std::memory_order_relaxed)) return;
        try {
          body(i);
        } catch (...) {
          cancel.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace agedtr
