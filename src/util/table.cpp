#include "agedtr/util/table.hpp"

#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr {
namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AGEDTR_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  AGEDTR_REQUIRE(row.size() == headers_.size(),
                 "row size must match the number of columns");
  rows_.push_back(std::move(row));
}

Table& Table::begin_row() {
  AGEDTR_REQUIRE(!building_, "previous row is still incomplete");
  pending_.clear();
  building_ = true;
  return *this;
}

Table& Table::cell(std::string value) {
  AGEDTR_REQUIRE(building_, "cell() called without begin_row()");
  pending_.push_back(std::move(value));
  if (pending_.size() == headers_.size()) {
    rows_.push_back(std::move(pending_));
    pending_ = {};
    building_ = false;
  }
  return *this;
}

Table& Table::cell(double value, int digits) {
  return cell(format_double(value, digits));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<bool> numeric(headers_.size(), true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!looks_numeric(row[c]) && row[c] != "inf" && row[c] != "nan") {
        numeric[c] = false;
      }
    }
  }
  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad(headers_[c], widths[c], false) << " |";
  }
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << pad(row[c], widths[c], numeric[c]) << " |";
    }
    os << '\n';
  }
  rule();
}

void Table::write_csv(std::ostream& os) const {
  std::vector<std::string> escaped;
  escaped.reserve(headers_.size());
  for (const auto& h : headers_) escaped.push_back(csv_escape(h));
  os << join(escaped, ",") << '\n';
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& f : row) escaped.push_back(csv_escape(f));
    os << join(escaped, ",") << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  AGEDTR_REQUIRE(os.good(), "cannot open CSV output file: " + path);
  write_csv(os);
  AGEDTR_REQUIRE(os.good(), "failed while writing CSV file: " + path);
}

}  // namespace agedtr
