#include "agedtr/util/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::metrics {

namespace {

std::atomic<bool> g_enabled{false};

/// Round-robin thread→shard assignment: consecutive pool workers land on
/// distinct cells, which is all the de-contention the sharding needs.
std::size_t next_thread_slot() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string format_number(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

/// JSON string escaping for trace names (literals in practice, but the
/// export must never emit malformed JSON).
std::string json_escape(const char* raw) {
  std::string out;
  for (const char* p = raw; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  trace_epoch();  // pin the epoch no later than the first enablement
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_index() {
  thread_local const std::size_t index = next_thread_slot() % kShards;
  return index;
}

}  // namespace detail

std::uint64_t trace_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  AGEDTR_REQUIRE(
      std::is_sorted(bounds_.begin(), bounds_.end()) &&
          std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
      "Histogram: bucket bounds must be strictly increasing");
  for (Shard& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double value) {
  if (!enabled()) return;
  // Prometheus `le` semantics: a value equal to a bound belongs to that
  // bound's bucket, so find the first bound >= value.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[detail::shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t observed = shard.sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = detail::bits_double(observed) + value;
    if (shard.sum_bits.compare_exchange_weak(observed,
                                             detail::double_bits(updated),
                                             std::memory_order_relaxed)) {
      return;
    }
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += detail::bits_double(
        shard.sum_bits.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::reset_for_testing() {
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
    shard.sum_bits.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  AGEDTR_REQUIRE(start > 0.0 && factor > 1.0 && count > 0,
                 "exponential_buckets: need start > 0, factor > 1, count > 0");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count) {
  AGEDTR_REQUIRE(width > 0.0 && count > 0,
                 "linear_buckets: need width > 0, count > 0");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

// ---- TraceRing -------------------------------------------------------------

TraceRing::TraceRing(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

void TraceRing::record(const TraceEvent& event) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(ticket % slots_.size())];
  MutexLock lock(&slot.mutex);
  slot.event = event;
  slot.full = true;
}

std::vector<TraceEvent> TraceRing::drain() const {
  std::vector<TraceEvent> events;
  events.reserve(slots_.size());
  for (Slot& slot : slots_) {
    MutexLock lock(&slot.mutex);
    if (slot.full) events.push_back(slot.event);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  return events;
}

void TraceRing::clear() {
  for (Slot& slot : slots_) {
    MutexLock lock(&slot.mutex);
    slot.full = false;
  }
  next_.store(0, std::memory_order_relaxed);
}

// ---- MetricsRegistry -------------------------------------------------------

struct MetricsRegistry::Entry {
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  std::string help;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose so metrics outlive every static destructor (counters
  // are touched from other objects' teardown). agedtr-lint: allow(naked-new)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(&mutex_);
  auto& entry = entries_[name];
  if (entry == nullptr) {
    entry = std::make_unique<Entry>();
    entry->kind = Entry::Kind::kCounter;
    entry->help = help;
    entry->counter = std::make_unique<Counter>();
  }
  AGEDTR_REQUIRE(entry->kind == Entry::Kind::kCounter,
                 "MetricsRegistry: '" + name +
                     "' is already registered with a different type");
  return *entry->counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  MutexLock lock(&mutex_);
  auto& entry = entries_[name];
  if (entry == nullptr) {
    entry = std::make_unique<Entry>();
    entry->kind = Entry::Kind::kGauge;
    entry->help = help;
    entry->gauge = std::make_unique<Gauge>();
  }
  AGEDTR_REQUIRE(entry->kind == Entry::Kind::kGauge,
                 "MetricsRegistry: '" + name +
                     "' is already registered with a different type");
  return *entry->gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  MutexLock lock(&mutex_);
  auto& entry = entries_[name];
  if (entry == nullptr) {
    entry = std::make_unique<Entry>();
    entry->kind = Entry::Kind::kHistogram;
    entry->help = help;
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
    return *entry->histogram;
  }
  AGEDTR_REQUIRE(entry->kind == Entry::Kind::kHistogram,
                 "MetricsRegistry: '" + name +
                     "' is already registered with a different type");
  AGEDTR_REQUIRE(entry->histogram->bounds() == bounds,
                 "MetricsRegistry: histogram '" + name +
                     "' re-registered with different bucket bounds");
  return *entry->histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  MutexLock lock(&mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second->kind == Entry::Kind::kCounter
             ? it->second->counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  MutexLock lock(&mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second->kind == Entry::Kind::kGauge
             ? it->second->gauge.get()
             : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  MutexLock lock(&mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second->kind == Entry::Kind::kHistogram
             ? it->second->histogram.get()
             : nullptr;
}

void MetricsRegistry::reset() {
  MutexLock lock(&mutex_);
  // Sites cache references to the metric objects, so reset() zeroes their
  // contents in place — the objects themselves are never replaced.
  for (auto& [name, entry] : entries_) {
    switch (entry->kind) {
      case Entry::Kind::kCounter:
        entry->counter->reset_for_testing();
        break;
      case Entry::Kind::kGauge:
        entry->gauge->reset_for_testing();
        break;
      case Entry::Kind::kHistogram:
        entry->histogram->reset_for_testing();
        break;
    }
  }
  trace_.clear();
}

std::string MetricsRegistry::text_report() const {
  MutexLock lock(&mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    if (!entry->help.empty()) {
      out << "# HELP " << name << " " << entry->help << "\n";
    }
    switch (entry->kind) {
      case Entry::Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << entry->counter->value() << "\n";
        break;
      case Entry::Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << format_number(entry->gauge->value()) << "\n";
        break;
      case Entry::Kind::kHistogram: {
        const HistogramSnapshot snap = entry->histogram->snapshot();
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          out << name << "_bucket{le=\"" << format_number(snap.bounds[i])
              << "\"} " << cumulative << "\n";
        }
        cumulative += snap.counts.back();
        out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        out << name << "_sum " << format_number(snap.sum) << "\n";
        out << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::chrome_trace_json() const {
  const std::vector<TraceEvent> events = trace_.drain();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.start_us
        << ",\"dur\":" << e.duration_us << ",\"pid\":1,\"tid\":" << e.thread
        << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

// ---- TraceSpan -------------------------------------------------------------

namespace {

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceSpan::TraceSpan(const char* name, const char* category,
                     Histogram* also_observe)
    : name_(name),
      category_(category),
      histogram_(also_observe),
      armed_(enabled()) {
  if (!armed_) return;
  start_ = std::chrono::steady_clock::now();
  start_us_ = trace_now_us();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_us = start_us_;
  event.duration_us =
      static_cast<std::uint64_t>(std::max(seconds, 0.0) * 1e6);
  event.thread = trace_thread_id();
  MetricsRegistry::global().trace().record(event);
  if (histogram_ != nullptr) histogram_->observe(seconds);
}

// ---- ScopedExport ----------------------------------------------------------

ScopedExport::ScopedExport(std::string path) : path_(std::move(path)) {
  if (!path_.empty()) set_enabled(true);
}

ScopedExport::~ScopedExport() {
  if (path_.empty()) return;
  set_enabled(false);
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  std::error_code ec;
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  {
    std::ofstream out(path_, std::ios::binary);
    out << MetricsRegistry::global().text_report();
  }
  {
    std::ofstream out(path_ + ".trace.json", std::ios::binary);
    out << MetricsRegistry::global().chrome_trace_json();
  }
}

}  // namespace agedtr::metrics
