#include "agedtr/util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "agedtr/util/error.hpp"
#include "agedtr/util/strings.hpp"

namespace agedtr {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  AGEDTR_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{default_value, help, /*is_flag=*/false, {}};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  AGEDTR_REQUIRE(!options_.count(name), "duplicate flag: " + name);
  options_[name] = Option{"false", help, /*is_flag=*/true, {}};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    auto it = options_.find(name);
    AGEDTR_REQUIRE(it != options_.end(), "unknown option: --" + name);
    if (it->second.is_flag) {
      AGEDTR_REQUIRE(!value || *value == "true" || *value == "false",
                     "flag --" + name + " takes no value");
      it->second.value = value.value_or("true");
    } else if (value) {
      it->second.value = *value;
    } else {
      AGEDTR_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
      it->second.value = argv[++i];
    }
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  auto it = options_.find(name);
  AGEDTR_REQUIRE(it != options_.end(), "option not registered: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& opt = find(name);
  return opt.value.value_or(opt.default_value);
}

double CliParser::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  AGEDTR_REQUIRE(end == s.c_str() + s.size() && !s.empty(),
                 "option --" + name + " is not a number: " + s);
  return v;
}

long long CliParser::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  AGEDTR_REQUIRE(end == s.c_str() + s.size() && !s.empty(),
                 "option --" + name + " is not an integer: " + s);
  return v;
}

bool CliParser::get_flag(const std::string& name) const {
  const Option& opt = find(name);
  AGEDTR_REQUIRE(opt.is_flag, "option --" + name + " is not a flag");
  return opt.value.value_or(opt.default_value) == "true";
}

std::string CliParser::help_text() const {
  std::string out = summary_ + "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name;
    if (!opt.is_flag) out += "=<value> (default: " + opt.default_value + ")";
    out += "\n      " + opt.help + "\n";
  }
  return out;
}

}  // namespace agedtr
