#include "agedtr/util/checkpoint.hpp"


#if !defined(_WIN32)
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"
#include <cstdint>
#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>
#endif

namespace agedtr {

namespace {

constexpr char kFieldSeparator = '\x1f';

metrics::Counter& units_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "checkpoint.units_total", "work units journaled");
  return c;
}

metrics::Counter& bytes_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "checkpoint.bytes_total", "journal bytes written (whole snapshots)");
  return c;
}

metrics::Histogram& persist_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "checkpoint.persist_seconds",
      metrics::exponential_buckets(1e-5, 4.0, 12),
      "wall time of one journal persist (write + fsync + rename)");
  return h;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Keys and payloads are arbitrary bytes; the journal is line-oriented, so
/// escape the line/field structure characters.
std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

bool unescape(const std::string& escaped, std::string& out) {
  out.clear();
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    if (++i == escaped.size()) return false;
    switch (escaped[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      default: return false;
    }
  }
  return true;
}

/// fsyncs an open stdio handle (POSIX; a no-op elsewhere). Returns false on
/// failure.
bool flush_and_sync(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if !defined(_WIN32)
  return ::fsync(::fileno(file)) == 0;
#else
  return true;
#endif
}

void sync_parent_directory(const std::string& path) {
#if !defined(_WIN32)
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

Checkpoint::Checkpoint(std::string path, std::string tag, bool resume)
    : path_(std::move(path)), tag_(std::move(tag)) {
  AGEDTR_REQUIRE(!path_.empty(), "Checkpoint: path must not be empty");
  MutexLock lock(&mutex_);  // uncontended; satisfies load()'s capability
  load(resume);
}

namespace {

/// True when `line` is a complete, well-formed "unit <key>\t<payload>"
/// record; on success fills key/payload (unescaped).
bool parse_unit_line(const std::string& line, std::string& key,
                     std::string& payload) {
  if (line.rfind("unit ", 0) != 0) return false;
  const std::size_t tab = line.find('\t');
  if (tab == std::string::npos) return false;
  return unescape(line.substr(5, tab - 5), key) &&
         unescape(line.substr(tab + 1), payload);
}

}  // namespace

void Checkpoint::load(bool resume) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no journal yet — fresh run
  const auto discard = [this](std::string reason) {
    units_.clear();
    stats_.loaded_units = 0;
    stats_.discarded = true;
    stats_.discard_reason = std::move(reason);
  };
  if (!resume) {
    discard("resume disabled; existing journal ignored");
    return;
  }

  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // The `end` line seals the snapshot: everything above it is checksummed.
  // A *sealed* journal — complete trailer line, 16-hex checksum, trailing
  // newline — is an all-or-nothing artifact: any mismatch means the damage
  // could be anywhere in the body, so nothing in it can be trusted. An
  // *unsealed* journal (truncated mid-record or mid-trailer) is damaged
  // only at its tail; the complete-record prefix is salvageable.
  const std::size_t end_pos = content.rfind("\nend ");
  bool sealed = false;
  std::size_t declared_units = 0;
  std::string declared_checksum;
  if (end_pos != std::string::npos && !content.empty() &&
      content.back() == '\n') {
    std::istringstream trailer(content.substr(end_pos + 1));
    std::string word;
    std::string trailing;
    if ((trailer >> word >> declared_units >> declared_checksum) &&
        word == "end" && declared_checksum.size() == 16 &&
        declared_checksum.find_first_not_of("0123456789abcdef") ==
            std::string::npos &&
        !(trailer >> trailing)) {
      sealed = true;
    }
  }

  if (sealed) {
    const std::string body = content.substr(0, end_pos + 1);
    if (declared_checksum != to_hex(fnv1a64(body))) {
      discard("checksum mismatch");
      return;
    }
    std::istringstream lines(body);
    std::string line;
    if (!std::getline(lines, line) ||
        line != "agedtr-checkpoint " + std::to_string(kFormatVersion)) {
      discard("unsupported format version");
      return;
    }
    if (!std::getline(lines, line) || line.rfind("tag ", 0) != 0) {
      discard("missing tag line");
      return;
    }
    std::string stored_tag;
    if (!unescape(line.substr(4), stored_tag) || stored_tag != tag_) {
      discard("tag mismatch (checkpoint from a different configuration)");
      return;
    }
    while (std::getline(lines, line)) {
      std::string key;
      std::string payload;
      if (!parse_unit_line(line, key, payload)) {
        discard("malformed unit line");
        return;
      }
      units_.emplace_back(std::move(key), std::move(payload));
    }
    if (units_.size() != declared_units) {
      discard("unit count mismatch");
      return;
    }
    stats_.loaded_units = units_.size();
    return;
  }

  // Tail salvage. The header and tag must be intact and complete (a file
  // torn that early carries nothing worth keeping, and a foreign tag must
  // never be salvaged); then every complete well-formed unit line is
  // restored and the first partial or malformed line — the torn tail —
  // drops together with everything after it.
  std::size_t pos = 0;
  const auto next_complete_line = [&](std::string& line) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) return false;  // incomplete final line
    line = content.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  std::string line;
  if (!next_complete_line(line) ||
      line != "agedtr-checkpoint " + std::to_string(kFormatVersion)) {
    discard("missing end line");
    return;
  }
  std::string stored_tag;
  if (!next_complete_line(line) || line.rfind("tag ", 0) != 0 ||
      !unescape(line.substr(4), stored_tag)) {
    discard("missing end line");
    return;
  }
  if (stored_tag != tag_) {
    discard("tag mismatch (checkpoint from a different configuration)");
    return;
  }
  std::size_t dropped_at = content.size();
  while (pos < content.size()) {
    const std::size_t line_start = pos;
    std::string key;
    std::string payload;
    if (!next_complete_line(line) || !parse_unit_line(line, key, payload)) {
      dropped_at = line_start;
      break;
    }
    units_.emplace_back(std::move(key), std::move(payload));
  }
  if (units_.empty()) {
    discard("truncated journal tail; no complete units to salvage");
    return;
  }
  stats_.loaded_units = units_.size();
  stats_.tail_salvaged = true;
  stats_.salvage_reason =
      "journal tail torn at byte " + std::to_string(dropped_at) +
      "; salvaged " + std::to_string(units_.size()) +
      " complete unit(s), dropped the partial tail";
}

const std::string* Checkpoint::find_locked(const std::string& key) const {
  for (const auto& [k, payload] : units_) {
    if (k == key) return &payload;
  }
  return nullptr;
}

std::optional<std::string> Checkpoint::find(const std::string& key) {
  MutexLock lock(&mutex_);
  if (const std::string* payload = find_locked(key)) {
    ++stats_.hits;
    return *payload;
  }
  return std::nullopt;
}

bool Checkpoint::contains(const std::string& key) const {
  MutexLock lock(&mutex_);
  return find_locked(key) != nullptr;
}

void Checkpoint::record_locked(const std::string& key,
                               const std::string& payload) {
  AGEDTR_REQUIRE(find_locked(key) == nullptr,
                 "Checkpoint: unit '" + key + "' recorded twice");
  if (crash_after_ != 0 && records_until_crash_ == 0) {
    throw CheckpointError("Checkpoint: injected crash after " +
                          std::to_string(crash_after_) + " records (" +
                          path_ + ")");
  }
  units_.emplace_back(key, payload);
  try {
    persist();
  } catch (...) {
    units_.pop_back();  // the snapshot on disk does not include this unit
    throw;
  }
  units_counter().add();
  ++stats_.recorded_units;
  if (crash_after_ != 0) --records_until_crash_;
}

void Checkpoint::record(const std::string& key, const std::string& payload) {
  MutexLock lock(&mutex_);
  record_locked(key, payload);
}

std::string Checkpoint::run_unit(const std::string& key,
                                 const std::function<std::string()>& compute) {
  {
    MutexLock lock(&mutex_);
    if (const std::string* payload = find_locked(key)) {
      ++stats_.hits;
      return *payload;
    }
  }
  // compute() runs outside the lock: units are expensive (a whole solved
  // subproblem) and must not serialize the journal for other workers.
  std::string payload = compute();
  MutexLock lock(&mutex_);
  if (const std::string* existing = find_locked(key)) {
    ++stats_.hits;  // another worker raced us to this unit; its result wins
    return *existing;
  }
  record_locked(key, payload);
  return payload;
}

void Checkpoint::crash_after_records_for_testing(std::size_t n) {
  MutexLock lock(&mutex_);
  crash_after_ = n;
  records_until_crash_ = n;
}

std::size_t Checkpoint::size() const {
  MutexLock lock(&mutex_);
  return units_.size();
}

std::vector<std::pair<std::string, std::string>> Checkpoint::units() const {
  MutexLock lock(&mutex_);
  return units_;
}

CheckpointStats Checkpoint::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void Checkpoint::persist() const {
  metrics::TraceSpan span("checkpoint.persist", "io", &persist_seconds());
  std::string body = "agedtr-checkpoint " + std::to_string(kFormatVersion) +
                     "\ntag " + escape(tag_) + "\n";
  for (const auto& [key, payload] : units_) {
    body += "unit " + escape(key) + "\t" + escape(payload) + "\n";
  }
  const std::string content = body + "end " + std::to_string(units_.size()) +
                              " " + to_hex(fnv1a64(body)) + "\n";

  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  std::error_code ec;
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  const std::string tmp = path_ + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw CheckpointError("Checkpoint: cannot open " + tmp + " for writing");
  }
  const bool written =
      std::fwrite(content.data(), 1, content.size(), file) == content.size() &&
      flush_and_sync(file);
  std::fclose(file);
  if (!written) {
    std::remove(tmp.c_str());
    throw CheckpointError("Checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("Checkpoint: cannot rename " + tmp + " over " +
                          path_);
  }
  sync_parent_directory(path_);
  bytes_counter().add(content.size());
}

std::string join_fields(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += kFieldSeparator;
    out += fields[i];
  }
  return out;
}

std::vector<std::string> split_fields(const std::string& payload) {
  std::vector<std::string> fields;
  std::string current;
  for (const char c : payload) {
    if (c == kFieldSeparator) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace agedtr
