#include "agedtr/util/lock_order.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace agedtr::lock_order {
namespace {

struct State {
  // The validator guards its graph with a raw std::mutex on purpose: an
  // agedtr::Mutex here would re-enter the hooks it implements.
  // agedtr-lint: allow(mutex-annotation)
  std::mutex mutex;
  // Order graph over mutex addresses. Address-keyed ordered containers are
  // exactly what rule nondet-order exists to flag — here the iteration
  // only feeds the deadlock DFS and the diagnostic report, never program
  // output. agedtr-lint: allow(nondet-order)
  std::map<const void*, std::set<const void*>> edges;
  std::uint64_t acquisitions = 0;
  std::uint64_t edge_count = 0;
  std::uint64_t violations = 0;
  ViolationHandler handler;  // empty = default (print + abort)
};

/// Deliberately leaked: ~Mutex of namespace-scope mutexes in other TUs
/// calls on_destroy during static destruction, whose order across TUs is
/// unspecified — the registry must outlive every Mutex in the process.
State& state() {
  // agedtr-lint: allow(naked-new) — the leak above is the point.
  static State* s = new State();
  return *s;
}

/// One suppression site instead of one per acquisition: the validator
/// cannot take an agedtr::MutexLock (it would re-enter the hooks it
/// implements), so its own guard is the raw std::lock_guard.
/// agedtr-lint: allow(mutex-annotation)
using GraphLock = std::lock_guard<std::mutex>;

thread_local std::vector<const void*> t_held;

/// True if `to` can already reach `from` through recorded edges — adding
/// from -> to would then close a cycle. Iterative DFS; caller holds
/// state().mutex.
bool reaches(const State& s, const void* to, const void* from) {
  std::vector<const void*> stack{to};
  // agedtr-lint: allow(nondet-order)
  std::set<const void*> seen;
  while (!stack.empty()) {
    const void* node = stack.back();
    stack.pop_back();
    if (node == from) return true;
    if (!seen.insert(node).second) continue;
    const auto it = s.edges.find(node);
    if (it == s.edges.end()) continue;
    for (const void* next : it->second) stack.push_back(next);
  }
  return false;
}

/// `blocking` distinguishes lock() from a successful try_lock(): only a
/// blocking acquisition can be the waiting half of a deadlock, so only it
/// records (and checks) edges held -> mutex. A try-acquired lock still
/// joins the held stack — blocking acquisitions made while it is held
/// record edges *from* it normally.
void push_held(const void* mutex, bool blocking) {
  // Violations are collected under the graph lock and dispatched after it
  // is released: the handler is arbitrary user code (the default aborts,
  // test handlers record) and must not run inside the validator's lock.
  std::vector<std::string> reports;

  for (const void* held : t_held) {
    if (held == mutex) {
      std::ostringstream out;
      out << "recursive acquisition of mutex " << mutex
          << " (std::mutex does not support recursive locking)";
      reports.push_back(out.str());
      break;
    }
  }

  State& s = state();
  ViolationHandler handler;
  {
    GraphLock lock(s.mutex);
    ++s.acquisitions;
    if (blocking) {
      for (const void* held : t_held) {
        if (held == mutex) continue;
        auto& out_edges = s.edges[held];
        if (out_edges.count(mutex) != 0) continue;  // already validated
        if (reaches(s, mutex, held)) {
          std::ostringstream out;
          out << "lock-order cycle: acquiring mutex " << mutex
              << " while holding " << held << " (" << t_held.size()
              << " lock(s) held); the reverse order was already observed, "
              << "so this interleaving can deadlock";
          reports.push_back(out.str());
          continue;  // record nothing for a rejected edge
        }
        out_edges.insert(mutex);
        ++s.edge_count;
      }
    }
    s.violations += reports.size();
    handler = s.handler;
  }
  t_held.push_back(mutex);

  for (const std::string& report : reports) {
    if (handler) {
      handler(report);
    } else {
      std::fprintf(stderr, "agedtr lock-order violation: %s\n",
                   report.c_str());
      std::abort();
    }
  }
}

}  // namespace

void on_acquire(const void* mutex) { push_held(mutex, /*blocking=*/true); }

void on_try_acquire(const void* mutex) {
  push_held(mutex, /*blocking=*/false);
}

void on_release(const void* mutex) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void on_destroy(const void* mutex) {
  State& s = state();
  GraphLock lock(s.mutex);
  const auto it = s.edges.find(mutex);
  if (it != s.edges.end()) {
    s.edge_count -= it->second.size();
    s.edges.erase(it);
  }
  for (auto& [from, targets] : s.edges) {
    (void)from;
    s.edge_count -= targets.erase(mutex);
  }
}

Stats stats() {
  State& s = state();
  GraphLock lock(s.mutex);
  return Stats{s.acquisitions, s.edge_count, s.violations};
}

ViolationHandler set_violation_handler(ViolationHandler handler) {
  State& s = state();
  GraphLock lock(s.mutex);
  ViolationHandler previous = std::move(s.handler);
  s.handler = std::move(handler);
  return previous;
}

void reset_for_testing() {
  State& s = state();
  GraphLock lock(s.mutex);
  s.edges.clear();
  s.acquisitions = 0;
  s.edge_count = 0;
  s.violations = 0;
  t_held.clear();
}

}  // namespace agedtr::lock_order
