#include "agedtr/util/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/thread_annotations.hpp"

namespace agedtr {

namespace {

using Clock = std::chrono::steady_clock;

metrics::Counter& retries_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "supervisor.retries_total", "transient task failures retried");
  return c;
}

metrics::Counter& cancellations_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "supervisor.watchdog_cancellations_total",
      "attempts cancelled by the watchdog for exceeding the deadline");
  return c;
}

metrics::Counter& quarantined_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "supervisor.quarantined_total",
      "tasks quarantined (permanent failure or retries exhausted)");
  return c;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// In-flight attempts the watchdog scans. One slot per task index (at most
/// one attempt of a task runs at a time). An ordered map, so a watchdog
/// sweep visits (and cancels) overdue attempts in task-index order —
/// deterministic cancellation attribution when deadlines tie.
struct InflightRegistry {
  struct Attempt {
    Clock::time_point deadline;
    CancelToken token;
    bool cancelled = false;
  };

  Mutex mutex;
  CondVar cv;
  std::map<std::size_t, Attempt> attempts AGEDTR_GUARDED_BY(mutex);
  bool done AGEDTR_GUARDED_BY(mutex) = false;

  void admit(std::size_t index, Clock::time_point deadline,
             const CancelToken& token) {
    MutexLock lock(&mutex);
    attempts[index] = Attempt{deadline, token, false};
  }

  /// Removes the slot; returns true if the watchdog had cancelled it.
  bool retire(std::size_t index) {
    MutexLock lock(&mutex);
    const auto it = attempts.find(index);
    const bool cancelled = it != attempts.end() && it->second.cancelled;
    if (it != attempts.end()) attempts.erase(it);
    return cancelled;
  }

  /// Cancels every attempt whose deadline has passed; returns how many were
  /// newly cancelled in this scan.
  std::size_t cancel_overdue(Clock::time_point now) {
    MutexLock lock(&mutex);
    std::size_t cancelled = 0;
    for (auto& [index, attempt] : attempts) {
      if (!attempt.cancelled && now >= attempt.deadline) {
        attempt.token.cancel();
        attempt.cancelled = true;
        ++cancelled;
      }
    }
    return cancelled;
  }
};

}  // namespace

void CancelToken::check(const char* who) const {
  if (cancelled()) {
    throw TaskCancelled(std::string(who) +
                        ": attempt cancelled by the supervisor watchdog");
  }
}

SupervisorOptions supervisor_for_budget(const EvalBudget& budget,
                                        double slack) {
  AGEDTR_REQUIRE(slack > 0.0, "supervisor_for_budget: slack must be positive");
  SupervisorOptions options;
  if (budget.limits_time()) {
    options.deadline_seconds = budget.max_seconds * slack;
  }
  return options;
}

bool SupervisionReport::is_quarantined(std::size_t index) const {
  return std::any_of(
      quarantined.begin(), quarantined.end(),
      [index](const QuarantineEntry& q) { return q.index == index; });
}

void SupervisionReport::absorb(const SupervisionReport& other,
                               std::size_t index_offset) {
  tasks += other.tasks;
  succeeded += other.succeeded;
  retries += other.retries;
  watchdog_cancellations += other.watchdog_cancellations;
  for (QuarantineEntry q : other.quarantined) {
    q.index += index_offset;
    quarantined.push_back(std::move(q));
  }
}

std::string SupervisionReport::summary() const {
  std::string out = "supervision: " + std::to_string(succeeded) + "/" +
                    std::to_string(tasks) + " tasks succeeded, " +
                    std::to_string(retries) + " retries, " +
                    std::to_string(watchdog_cancellations) +
                    " watchdog cancellations, " +
                    std::to_string(quarantined.size()) + " quarantined";
  for (const QuarantineEntry& q : quarantined) {
    out += "\n  quarantined task " + std::to_string(q.index) + " after " +
           std::to_string(q.attempts) + " attempts: " + q.error;
  }
  return out;
}

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {
  AGEDTR_REQUIRE(options_.deadline_seconds >= 0.0,
                 "Supervisor: deadline must be nonnegative");
  AGEDTR_REQUIRE(options_.max_retries >= 0,
                 "Supervisor: max_retries must be nonnegative");
  AGEDTR_REQUIRE(options_.backoff_initial_seconds >= 0.0 &&
                     options_.backoff_factor >= 1.0 &&
                     options_.backoff_jitter >= 0.0,
                 "Supervisor: malformed backoff schedule");
}

double Supervisor::backoff_delay(const SupervisorOptions& options,
                                 std::size_t index, int attempt) {
  AGEDTR_REQUIRE(attempt >= 1, "backoff_delay: attempt is 1-based");
  double delay = options.backoff_initial_seconds;
  for (int k = 1; k < attempt; ++k) delay *= options.backoff_factor;
  const std::uint64_t word =
      splitmix64(options.jitter_seed ^
                 splitmix64((static_cast<std::uint64_t>(index) << 16) ^
                            static_cast<std::uint64_t>(attempt)));
  const double u =
      static_cast<double>(word >> 11) / 9007199254740992.0;  // [0, 1)
  return delay * (1.0 + options.backoff_jitter * u);
}

SupervisionReport Supervisor::run(std::size_t count, const Task& body) const {
  SupervisionReport report;
  report.tasks = count;
  if (count == 0) return report;

  InflightRegistry registry;
  Mutex report_mutex;  // guards the mutable report fields below
  std::atomic<std::size_t> succeeded{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> cancellations{0};

  const bool watched = options_.deadline_seconds > 0.0;
  std::thread watchdog;
  if (watched) {
    double period = options_.watchdog_period_seconds;
    if (period <= 0.0) {
      period = std::clamp(options_.deadline_seconds / 4.0, 0.001, 0.05);
    }
    watchdog = std::thread([&registry, &cancellations, period] {
      const auto tick = std::chrono::duration<double>(period);
      for (;;) {
        {
          MutexLock lock(&registry.mutex);
          if (registry.done) return;
          registry.cv.wait_for(registry.mutex, tick);
          if (registry.done) return;
        }
        // cancel_overdue() takes the registry lock itself; scan outside the
        // wait scope so admit()/retire() never block on a full sweep.
        const std::size_t newly = registry.cancel_overdue(Clock::now());
        cancellations.fetch_add(newly, std::memory_order_relaxed);
        cancellations_counter().add(newly);
      }
    });
  }

  const auto supervised = [&](std::size_t index) {
    const int attempts_allowed = 1 + options_.max_retries;
    for (int attempt = 1; attempt <= attempts_allowed; ++attempt) {
      CancelToken token;
      if (watched) {
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options_.deadline_seconds));
        registry.admit(index, deadline, token);
      }
      std::string error;
      bool permanent = false;
      try {
        body(index, token);
        if (watched) registry.retire(index);
        succeeded.fetch_add(1, std::memory_order_relaxed);
        return;
      } catch (const std::exception& e) {
        error = e.what();
        permanent = is_permanent_failure(e);
      } catch (...) {
        error = "(non-standard exception)";
      }
      if (watched) registry.retire(index);
      if (permanent || attempt == attempts_allowed) {
        quarantined_counter().add();
        MutexLock lock(&report_mutex);
        report.quarantined.push_back({index, attempt, std::move(error)});
        return;
      }
      retries.fetch_add(1, std::memory_order_relaxed);
      retries_counter().add();
      std::this_thread::sleep_for(std::chrono::duration<double>(
          backoff_delay(options_, index, attempt)));
    }
  };

  ThreadPool& pool = options_.pool ? *options_.pool : ThreadPool::global();
  try {
    pool.parallel_for(0, count, supervised);
  } catch (...) {
    // supervised() swallows task exceptions by design; anything escaping
    // parallel_for is a harness bug — still stop the watchdog first.
    if (watched) {
      {
        MutexLock lock(&registry.mutex);
        registry.done = true;
      }
      registry.cv.notify_all();
      watchdog.join();
    }
    throw;
  }
  if (watched) {
    {
      MutexLock lock(&registry.mutex);
      registry.done = true;
    }
    registry.cv.notify_all();
    watchdog.join();
  }

  report.succeeded = succeeded.load();
  report.retries = retries.load();
  report.watchdog_cancellations = cancellations.load();
  std::sort(report.quarantined.begin(), report.quarantined.end(),
            [](const QuarantineEntry& a, const QuarantineEntry& b) {
              return a.index < b.index;
            });
  return report;
}

}  // namespace agedtr
