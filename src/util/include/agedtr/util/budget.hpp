// Resource budgets for metric evaluations.
//
// An EvalBudget caps what a single solver call may consume; a BudgetTimer
// materializes the wall-clock part into a deadline at evaluation entry and
// turns overruns into agedtr::BudgetExceeded. Solvers accept an EvalBudget
// through their options (RegenSolverOptions::budget,
// ConvolutionOptions::budget) and check the timer at coarse-grained points
// — once per recursion node or per convolution stage — so the overhead of a
// steady_clock read is amortized over real numerical work.
#pragma once

#include <chrono>
#include <string>

#include "agedtr/util/error.hpp"

namespace agedtr {

/// Caps for one metric evaluation. Zero values mean "no cap" (for
/// max_depth: "use the solver's own default").
struct EvalBudget {
  /// Wall-clock cap in seconds; 0 = unlimited.
  double max_seconds = 0.0;
  /// Recursion-depth cap; 0 = the solver's default. Only meaningful for
  /// recursive solvers (the RegenerativeSolver).
  int max_depth = 0;

  [[nodiscard]] bool limits_time() const { return max_seconds > 0.0; }
};

/// A deadline derived from an EvalBudget when an evaluation starts.
/// Copyable and cheap; pass by const reference down recursions.
class BudgetTimer {
 public:
  explicit BudgetTimer(const EvalBudget& budget)
      : limited_(budget.limits_time()) {
    if (limited_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(budget.max_seconds));
    }
  }

  [[nodiscard]] bool expired() const {
    return limited_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Throws WallBudgetExceeded (prefixed with `who`) once the deadline
  /// passed.
  void check(const char* who) const {
    if (expired()) {
      throw WallBudgetExceeded(std::string(who) +
                               ": wall-clock evaluation budget exhausted");
    }
  }

 private:
  bool limited_;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace agedtr
