// Small string utilities used by the table writer, CLI parser and benches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace agedtr {

/// Splits `s` on the single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Formats `value` with `digits` significant decimal digits (fixed notation
/// for magnitudes in [1e-3, 1e7), scientific otherwise). "inf"/"nan" pass
/// through as those literals.
[[nodiscard]] std::string format_double(double value, int digits = 4);

/// Joins the elements with the separator, e.g. join({"a","b"}, ", ") == "a, b".
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Left-pads (align right) or right-pads (align left) `s` with spaces so its
/// size is at least `width`.
[[nodiscard]] std::string pad(std::string s, std::size_t width,
                              bool align_right);

}  // namespace agedtr
