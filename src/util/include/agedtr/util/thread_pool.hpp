// Fixed-size thread pool plus a static-chunking parallel_for.
//
// The Monte-Carlo runner fans replications out over this pool; solvers use
// parallel_for for embarrassingly parallel sweeps (e.g. policy grids). The
// pool is exception-safe: an exception thrown by a task is captured and
// rethrown to the caller that waits on the corresponding future or on
// parallel_for.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "agedtr/util/thread_annotations.hpp"

namespace agedtr {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a nullary callable; the future delivers its result or
  /// exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(&mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    note_enqueued();
    cv_.notify_one();
    return fut;
  }

  /// Runs body(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. Work is split into size()*4 contiguous chunks.
  /// The first exception thrown by any iteration is rethrown here; it also
  /// cancels the sweep cooperatively — chunks that have not yet started an
  /// iteration when the flag is observed skip their remaining work, so a
  /// failing sweep drains promptly instead of running to completion.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool (sized to the hardware).
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Non-template metrics hook so submit() stays header-only without
  /// dragging the metrics header into every includer.
  static void note_enqueued();

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ AGEDTR_GUARDED_BY(mutex_);
  bool stopping_ AGEDTR_GUARDED_BY(mutex_) = false;
};

}  // namespace agedtr
