// A tiny declarative command-line parser for the bench and example binaries.
//
// Supported syntax: --name=value, --name value, and boolean --flag. Unknown
// options raise InvalidArgument so typos fail fast. `--help` prints the
// registered options and their defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace agedtr {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers an option with a default value (rendered in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Registers a boolean flag (default false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text is written
  /// to stdout); throws InvalidArgument on malformed or unknown options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Positional arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
    std::optional<std::string> value;
  };

  const Option& find(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace agedtr
