// Task supervision for long-running batches: per-task deadlines, bounded
// retry with exponential backoff + deterministic jitter, a watchdog thread
// that detects stalled attempts and cancels-and-requeues them, and a
// quarantine list for poison tasks.
//
// The Supervisor wraps a ThreadPool fan-out: run(n, body) executes body(i)
// for every index, but a failing index is retried (with backoff) instead of
// sinking the batch, and an index that keeps failing lands in the
// quarantine report — with its error — instead of being retried forever or
// hanging the run. Permanent failures (see is_permanent_failure in
// error.hpp) skip the retry loop entirely.
//
// Cancellation is cooperative: every attempt receives a CancelToken, and
// the watchdog flips it once the attempt outlives its deadline. Tasks that
// poll the token (directly via CancelToken::check, or indirectly because
// their EvalBudget expires on the same wall clock) abandon the attempt with
// TaskCancelled; the Supervisor counts the cancellation and requeues. Tasks
// that never poll cannot be interrupted mid-flight — the watchdog still
// flags them as overdue, but the retry only starts once the attempt
// returns. Deadlines are typically derived from the evaluation's EvalBudget
// via supervisor_for_budget().
//
// EvaluationEngine::evaluate_supervised, sim::run_monte_carlo (via
// MonteCarloOptions::supervise) and policy::optimal_allocation (via
// AllocationSearchOptions::supervise) all route through this layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agedtr/util/budget.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr {

/// Shared cooperative-cancellation flag between the watchdog and one task
/// attempt. Copyable; copies observe the same flag.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }

  /// Throws TaskCancelled (prefixed with `who`) once the watchdog cancelled
  /// this attempt. Cheap; call at loop boundaries of long computations.
  void check(const char* who) const;

  /// Flips the flag (watchdog side).
  void cancel() const { flag_->store(true, std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct SupervisorOptions {
  /// Per-attempt wall-clock deadline in seconds; 0 = no deadline (the
  /// watchdog stays idle).
  double deadline_seconds = 0.0;
  /// Retries granted after the first attempt; a task failing all
  /// 1 + max_retries attempts is quarantined.
  int max_retries = 2;
  /// First retry delay; subsequent delays grow by backoff_factor.
  double backoff_initial_seconds = 0.02;
  double backoff_factor = 2.0;
  /// Uniform jitter fraction added on top of the exponential delay
  /// (delay *= 1 + jitter * u, u in [0, 1) deterministic per
  /// (jitter_seed, index, attempt)), decorrelating retry storms without
  /// sacrificing reproducibility.
  double backoff_jitter = 0.25;
  std::uint64_t jitter_seed = 0x5afe;
  /// Watchdog scan cadence; 0 = auto (deadline/4, clamped to [1 ms, 50 ms]).
  double watchdog_period_seconds = 0.0;
  /// Pool the attempts run on; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
};

/// Supervision options whose deadline polices a task evaluated under
/// `budget`: the deadline is the budget's wall-clock cap times `slack`
/// (the task should normally self-limit via its own BudgetTimer; the
/// watchdog is the backstop for evaluations that stop polling). An
/// unlimited budget yields no deadline.
[[nodiscard]] SupervisorOptions supervisor_for_budget(const EvalBudget& budget,
                                                      double slack = 4.0);

/// One poison task: its index, how many attempts it burned, and the error
/// message of the last attempt.
struct QuarantineEntry {
  std::size_t index = 0;
  int attempts = 0;
  std::string error;
};

struct SupervisionReport {
  std::size_t tasks = 0;
  std::size_t succeeded = 0;
  /// Re-executed attempts beyond each task's first.
  std::size_t retries = 0;
  /// Attempts the watchdog flagged overdue and cancelled.
  std::size_t watchdog_cancellations = 0;
  std::vector<QuarantineEntry> quarantined;

  [[nodiscard]] bool all_succeeded() const { return succeeded == tasks; }
  [[nodiscard]] bool is_quarantined(std::size_t index) const;
  /// Merges `other` into this report, shifting its task indices by
  /// `index_offset` (for callers that supervise work in several calls).
  void absorb(const SupervisionReport& other, std::size_t index_offset = 0);
  /// Human-readable one-block summary (quarantine entries included).
  [[nodiscard]] std::string summary() const;
};

class Supervisor {
 public:
  /// body(index, token): performs task `index`, polling `token` at
  /// convenient boundaries. Success = normal return; any exception is a
  /// failure of this attempt.
  using Task = std::function<void(std::size_t, const CancelToken&)>;

  explicit Supervisor(SupervisorOptions options = {});

  /// Runs tasks [0, count) over the pool under supervision and blocks until
  /// every task either succeeded or was quarantined. Never throws for task
  /// failures — they are the report's job.
  [[nodiscard]] SupervisionReport run(std::size_t count, const Task& body) const;

  [[nodiscard]] const SupervisorOptions& options() const { return options_; }

  /// The deterministic delay before retry number `attempt` (1-based) of
  /// task `index`. Exposed so tests can assert the backoff schedule.
  [[nodiscard]] static double backoff_delay(const SupervisorOptions& options,
                                            std::size_t index, int attempt);

 private:
  SupervisorOptions options_;
};

}  // namespace agedtr
