// Crash-consistent checkpoint journals for long runs.
//
// A Checkpoint is an ordered key → payload journal of completed work units
// (a solved Algorithm 1 subproblem, one bench sweep row). Every record()
// rewrites the whole journal to `<path>.tmp`, fsyncs it, and renames it
// over `<path>` (then fsyncs the directory), so the on-disk file is always
// a complete, internally consistent snapshot: a crash at any instant leaves
// either the previous snapshot or the new one, never a torn file.
//
// The format is versioned and checksummed (see docs/OPERATIONS.md):
//
//   agedtr-checkpoint <format-version>
//   tag <escaped producer tag>
//   unit <escaped key>\t<escaped payload>
//   ...
//   end <unit-count> <fnv1a64-of-everything-above>
//
// On open, a sealed journal (one whose `end` trailer is complete) is
// restored only if the version, the producer tag, the unit count and the
// checksum all match; a sealed journal that fails any of those checks
// (corruption, a checkpoint from a different configuration, a future
// format) is *silently discarded* — the run starts fresh and the stats
// record why. A journal whose *tail* is torn — truncated mid-record or
// mid-trailer, as external copies or filesystem damage can leave it — is
// salvaged instead: the intact header, tag and every complete `unit` line
// are restored, the partial final record is dropped silently, and
// CheckpointStats::tail_salvaged records the event. Load-side problems are
// never exceptions: a stale checkpoint must not be able to fail a healthy
// run.
//
// The tag is the producer's contract: it must fingerprint every input that
// influences a unit's payload (scenario, options, seeds), so that a
// checkpoint can never leak results across configurations.
//
// Thread safety. All methods are safe to call concurrently (supervised
// batches record units from pool workers); one annotated mutex guards the
// journal, and record()/run_unit() persist while holding it so the on-disk
// snapshot order always matches the in-memory journal order.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/thread_annotations.hpp"

namespace agedtr {

struct CheckpointStats {
  /// Units restored from the on-disk journal at open.
  std::size_t loaded_units = 0;
  /// Units persisted by this process.
  std::size_t recorded_units = 0;
  /// find()/run_unit() calls answered from the journal.
  std::size_t hits = 0;
  /// True when an on-disk file existed but was rejected at open.
  bool discarded = false;
  std::string discard_reason;
  /// True when the journal's tail was torn (truncated mid-record or
  /// mid-trailer) and the complete-record prefix was restored instead of
  /// the whole file being discarded. loaded_units counts the salvage.
  bool tail_salvaged = false;
  std::string salvage_reason;
};

class Checkpoint {
 public:
  static constexpr int kFormatVersion = 1;

  /// Opens the journal at `path` for the producer identified by `tag`,
  /// restoring any valid matching snapshot. `resume = false` ignores
  /// whatever is on disk (the first record() then overwrites it).
  Checkpoint(std::string path, std::string tag, bool resume = true);

  /// The payload journaled under `key`, or nullopt. Counts a hit. Returns
  /// a copy: concurrent record() calls may grow the journal, so references
  /// into it must not escape the lock.
  [[nodiscard]] std::optional<std::string> find(const std::string& key);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Journals a completed unit and atomically persists the snapshot.
  /// Re-recording an existing key is a producer bug (InvalidArgument). Throws
  /// CheckpointError if the snapshot cannot be persisted — a checkpointed
  /// run that cannot checkpoint should fail loudly, not silently lose its
  /// crash consistency.
  void record(const std::string& key, const std::string& payload);

  /// Replay-or-compute: the journaled payload if present, otherwise
  /// compute() is run (outside the lock) and its result journaled. The unit
  /// of every checkpointed sweep loop. If two threads race to compute the
  /// same key, the first recording wins and both return its payload.
  std::string run_unit(const std::string& key,
                       const std::function<std::string()>& compute);

  [[nodiscard]] std::size_t size() const;
  /// Units in insertion order (the order they were completed in), copied
  /// under the lock.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> units() const;
  [[nodiscard]] CheckpointStats stats() const;
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& tag() const { return tag_; }

  /// Crash-injection hook for kill-and-resume tests: after `n` further
  /// successful record() persists, every subsequent record() throws
  /// CheckpointError *after* having persisted nothing — simulating a
  /// process killed between completing unit n and starting unit n+1. 0
  /// disables the hook.
  void crash_after_records_for_testing(std::size_t n);

 private:
  /// Constructor-only; takes the (uncontended) lock so the analysis sees
  /// the guarded members initialized under their capability.
  void load(bool resume) AGEDTR_REQUIRES(mutex_);
  void persist() const AGEDTR_REQUIRES(mutex_);
  [[nodiscard]] const std::string* find_locked(const std::string& key) const
      AGEDTR_REQUIRES(mutex_);
  void record_locked(const std::string& key, const std::string& payload)
      AGEDTR_REQUIRES(mutex_);

  std::string path_;  // immutable after construction
  std::string tag_;   // immutable after construction
  mutable Mutex mutex_;
  std::vector<std::pair<std::string, std::string>> units_
      AGEDTR_GUARDED_BY(mutex_);
  CheckpointStats stats_ AGEDTR_GUARDED_BY(mutex_);
  std::size_t crash_after_ AGEDTR_GUARDED_BY(mutex_) = 0;  // 0 = disabled
  std::size_t records_until_crash_ AGEDTR_GUARDED_BY(mutex_) = 0;
};

/// Field packing for multi-value unit payloads: joins with U+001F (unit
/// separator), which the journal's own escaping keeps intact.
[[nodiscard]] std::string join_fields(const std::vector<std::string>& fields);
[[nodiscard]] std::vector<std::string> split_fields(const std::string& payload);

}  // namespace agedtr
