// Runtime lock-order validator: the dynamic twin of the static lock-order
// pass in scripts/agedtr_analyze.py.
//
// Under a build with -DAGEDTR_LOCK_ORDER_CHECK=ON, every agedtr::Mutex
// acquisition/release reports here (hooks in thread_annotations.hpp). The
// validator keeps a thread-local stack of held locks and a process-wide
// order graph: acquiring B while holding A records the edge A -> B, and an
// acquisition whose edge would close a cycle in that graph — a potential
// deadlock, whether or not this particular interleaving deadlocks — fires
// the violation handler *before* blocking on the lock, so the report
// arrives instead of the hang. Recursive acquisition of the same Mutex
// (undefined behaviour for std::mutex) is reported the same way.
//
// The static analyzer proves the order graph of the *source* is acyclic;
// running the test suite under this validator cross-checks that the graph
// the code actually walks at runtime agrees (tests/lock_order_test.cpp,
// and the lock-order CI variant of the tier-1 job).
//
// The hook functions are compiled unconditionally (they are a few hundred
// bytes and make the validator testable in every build); only the call
// sites inside Mutex are gated by the macro, so the default build's lock
// fast path is exactly a std::mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace agedtr::lock_order {

/// True when this build's Mutex actually reports acquisitions here.
[[nodiscard]] constexpr bool enabled() {
#if defined(AGEDTR_LOCK_ORDER_CHECK)
  return true;
#else
  return false;
#endif
}

/// Called before blocking on `mutex`. Validates the would-be edges from
/// every lock this thread holds, records them, and pushes `mutex` onto the
/// thread's held stack.
void on_acquire(const void* mutex);

/// Called after a *successful* try_lock. Pushes onto the held stack and
/// records edges for later blocking acquisitions, but performs no cycle
/// check itself: a non-blocking acquisition cannot be the waiting half of
/// a deadlock.
void on_try_acquire(const void* mutex);

/// Called before unlocking. Removes the most recent matching entry from
/// the thread's held stack (out-of-stack-order release is legal).
void on_release(const void* mutex);

/// Called from ~Mutex. Purges the node and its edges so a recycled
/// address can never inherit a dead mutex's ordering constraints.
void on_destroy(const void* mutex);

/// Process-wide counters (approximate under concurrency, exact once
/// quiescent).
struct Stats {
  std::uint64_t acquisitions = 0;  // hook calls that pushed a lock
  std::uint64_t edges = 0;         // distinct order edges recorded
  std::uint64_t violations = 0;    // cycles + recursive acquisitions
};
[[nodiscard]] Stats stats();

/// What to do when a violation is detected. The default handler prints
/// the report to stderr and aborts — a lock-order bug in a test run must
/// not pass silently. Tests install a recording handler instead. Passing
/// nullptr restores the default. Returns the previous handler.
using ViolationHandler = std::function<void(const std::string& report)>;
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Drops the recorded graph, counters, and (for the calling thread) the
/// held stack. Test isolation only.
void reset_for_testing();

}  // namespace agedtr::lock_order
