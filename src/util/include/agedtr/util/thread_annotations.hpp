// Clang thread-safety annotations plus the annotated synchronization
// primitives the rest of the tree locks with.
//
// The AGEDTR_* macros wrap Clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): under a Clang
// build they turn `-Wthread-safety` into a compile-time proof that every
// access to a `AGEDTR_GUARDED_BY(mutex_)` member happens with `mutex_`
// held, and CMake promotes the diagnostic to `-Werror=thread-safety` so a
// wrong-lock access cannot merge. Under GCC (which has no such analysis)
// every macro expands to nothing, so the annotations are zero-cost
// documentation and the build is unchanged.
//
// std::mutex itself carries no capability attributes with libstdc++, which
// would blind the analysis to every lock_guard acquisition. Mutex and
// MutexLock below are thin annotated wrappers (same fast path: Mutex is
// exactly a std::mutex; MutexLock is exactly a lock_guard) that make the
// acquire/release visible to the analysis. CondVar wraps
// std::condition_variable_any waiting directly on a Mutex; the analysis
// treats the capability as held across the wait, which matches the caller's
// view (the lock is reacquired before wait() returns).
//
// agedtr-lint enforces the pairing: raw std::mutex members are rejected in
// src/ headers (rule mutex-annotation) precisely so the capability analysis
// can never be silently bypassed by a new class.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(AGEDTR_LOCK_ORDER_CHECK)
#include "agedtr/util/lock_order.hpp"
#endif

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AGEDTR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AGEDTR_THREAD_ANNOTATION
#define AGEDTR_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define AGEDTR_CAPABILITY(x) AGEDTR_THREAD_ANNOTATION(capability(x))
#define AGEDTR_SCOPED_CAPABILITY AGEDTR_THREAD_ANNOTATION(scoped_lockable)
#define AGEDTR_GUARDED_BY(x) AGEDTR_THREAD_ANNOTATION(guarded_by(x))
#define AGEDTR_PT_GUARDED_BY(x) AGEDTR_THREAD_ANNOTATION(pt_guarded_by(x))
#define AGEDTR_REQUIRES(...) \
  AGEDTR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AGEDTR_EXCLUDES(...) \
  AGEDTR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define AGEDTR_ACQUIRE(...) \
  AGEDTR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AGEDTR_TRY_ACQUIRE(...) \
  AGEDTR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define AGEDTR_RELEASE(...) \
  AGEDTR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AGEDTR_RETURN_CAPABILITY(x) AGEDTR_THREAD_ANNOTATION(lock_returned(x))
#define AGEDTR_NO_THREAD_SAFETY_ANALYSIS \
  AGEDTR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace agedtr {

/// std::mutex with its acquire/release surface visible to Clang's
/// capability analysis.
class AGEDTR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(AGEDTR_LOCK_ORDER_CHECK)
  // Lock-order validator hooks (util/lock_order.hpp). on_acquire runs
  // *before* blocking so a would-be deadlock is reported instead of hung;
  // the destructor purge keeps a recycled address from inheriting a dead
  // mutex's ordering constraints.
  ~Mutex() { lock_order::on_destroy(this); }
  void lock() AGEDTR_ACQUIRE() {
    lock_order::on_acquire(this);
    impl_.lock();
  }
  void unlock() AGEDTR_RELEASE() {
    lock_order::on_release(this);
    impl_.unlock();
  }
  [[nodiscard]] bool try_lock() AGEDTR_TRY_ACQUIRE(true) {
    if (!impl_.try_lock()) return false;
    lock_order::on_try_acquire(this);
    return true;
  }
#else
  void lock() AGEDTR_ACQUIRE() { impl_.lock(); }
  void unlock() AGEDTR_RELEASE() { impl_.unlock(); }
  [[nodiscard]] bool try_lock() AGEDTR_TRY_ACQUIRE(true) {
    return impl_.try_lock();
  }
#endif

 private:
  friend class CondVar;  // waits on the raw std::mutex underneath
  std::mutex impl_;
};

/// RAII lock (the annotated std::lock_guard). Takes a pointer so the
/// capability expression at the call site names the mutex being acquired.
class AGEDTR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) AGEDTR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->lock();
  }
  ~MutexLock() AGEDTR_RELEASE() { mutex_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mutex_;
};

/// Condition variable paired with Mutex. wait()/wait_for() are called with
/// the mutex held (enforced by AGEDTR_REQUIRES); the analysis models the
/// capability as held across the wait, which is the caller-visible
/// contract — the lock is always reacquired before control returns.
/// Internally the wait adopts the already-held raw std::mutex so no
/// annotated lock call ever happens inside unannotated std code. Callers
/// wrap the wait in a predicate loop (`while (!ready) cv.wait(mutex);`)
/// rather than passing a predicate lambda — lambda bodies carry no
/// REQUIRES context, so guarded accesses inside them would defeat the
/// analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) AGEDTR_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.impl_, std::adopt_lock);
    impl_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  template <typename Rep, typename Period>
  void wait_for(Mutex& mutex,
                const std::chrono::duration<Rep, Period>& timeout)
      AGEDTR_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.impl_, std::adopt_lock);
    impl_.wait_for(lock, timeout);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { impl_.notify_one(); }
  void notify_all() { impl_.notify_all(); }

 private:
  std::condition_variable impl_;
};

}  // namespace agedtr
