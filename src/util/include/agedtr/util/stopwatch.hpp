// Minimal monotonic stopwatch for timing solver and simulator phases.
#pragma once

#include <chrono>

namespace agedtr {

/// Wall-clock stopwatch based on std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace agedtr
