// Error-handling primitives shared across the agedtr libraries.
//
// Library code validates its preconditions with AGEDTR_REQUIRE, which throws
// agedtr::InvalidArgument carrying the failed condition and a caller-supplied
// message. Internal invariants use AGEDTR_ASSERT, which throws
// agedtr::LogicError; these indicate bugs in agedtr itself, never bad user
// input.
#pragma once

#include <stdexcept>
#include <string>

namespace agedtr {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant of the library is violated (a bug).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an iterative numerical routine fails to converge.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an evaluation exhausts a caller-supplied resource budget
/// (wall-clock time, recursion depth, event count). Unlike InvalidArgument
/// this is not a precondition violation and unlike LogicError it is not a
/// bug: it signals "this configuration is too expensive for the requested
/// method under the granted budget", and callers (notably the
/// policy::ResilientEvaluator fallback chain) are expected to catch it and
/// degrade to a cheaper method.
class BudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// BudgetExceeded because the wall-clock cap (EvalBudget::max_seconds)
/// expired. Kept as a distinct type so fallback layers can report *which*
/// budget pushed an evaluation down the chain — a wall overrun says "too
/// slow here, maybe fine elsewhere", a depth overrun says "structurally too
/// large for this solver".
class WallBudgetExceeded : public BudgetExceeded {
 public:
  using BudgetExceeded::BudgetExceeded;
};

/// BudgetExceeded because a structural cap — recursion depth
/// (EvalBudget::max_depth / RegenSolverOptions::max_depth) or a state-count
/// guard — was exceeded. Deterministic for a given configuration, unlike a
/// wall overrun.
class DepthBudgetExceeded : public BudgetExceeded {
 public:
  using BudgetExceeded::BudgetExceeded;
};

/// Thrown by a supervised task that observes its CancelToken after the
/// Supervisor's watchdog marked the attempt overdue. Cancellation is
/// cooperative: the task must poll the token (directly or through a budget
/// check) for the cancellation to take effect. Always transient — the
/// Supervisor retries a cancelled attempt with backoff.
class TaskCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the checkpoint layer on I/O failures while persisting a
/// journal (and by the crash-injection test hook). A *load*-side problem —
/// corruption, version or tag mismatch — is never an exception: a journal
/// that cannot be trusted is discarded and the run starts fresh.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Failure taxonomy for supervision. Permanent failures — precondition
/// violations (InvalidArgument) and internal bugs (LogicError) — are
/// deterministic properties of the input: retrying cannot change the
/// outcome, so the Supervisor quarantines them immediately. Everything
/// else (BudgetExceeded, TaskCancelled, ConvergenceError, generic runtime
/// errors) counts as transient and is retried with backoff.
[[nodiscard]] inline bool is_permanent_failure(const std::exception& error) {
  return dynamic_cast<const std::invalid_argument*>(&error) != nullptr ||
         dynamic_cast<const std::logic_error*>(&error) != nullptr;
}

namespace detail {

[[noreturn]] inline void throw_invalid_argument(const char* cond,
                                                const std::string& msg,
                                                const char* file, int line) {
  // The one sanctioned throw site: AGEDTR_REQUIRE itself.
  // agedtr-lint: allow(require-not-throw)
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement failed (" + cond + "): " + msg);
}

[[noreturn]] inline void throw_logic_error(const char* cond, const char* file,
                                           int line) {
  throw LogicError(std::string(file) + ":" + std::to_string(line) +
                   ": internal invariant violated (" + cond + ")");
}

}  // namespace detail
}  // namespace agedtr

#define AGEDTR_REQUIRE(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::agedtr::detail::throw_invalid_argument(#cond, (msg), __FILE__,   \
                                               __LINE__);                \
    }                                                                    \
  } while (false)

#define AGEDTR_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::agedtr::detail::throw_logic_error(#cond, __FILE__, __LINE__);    \
    }                                                                    \
  } while (false)
