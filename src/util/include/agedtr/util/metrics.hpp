// util::metrics — the process-wide observability layer.
//
// A MetricsRegistry holds named counters, gauges, and fixed-bucket
// histograms. Hot-path writes are sharded: every metric owns a small array
// of cache-line-padded atomic cells and a writer picks its cell by thread
// identity, so concurrent increments from pool workers never contend on
// one cache line and never take a lock; readers merge the shards. RAII
// ScopedTimer records a duration into a histogram; TraceSpan additionally
// appends a begin/end event to a bounded trace ring exportable as
// chrome://tracing JSON. The registry renders a Prometheus-style text dump
// (text_report) for the benches' --metrics flag.
//
// Cost model. Instrumentation is compiled into the hot paths permanently
// and gated by one process-wide atomic flag (metrics::enabled(), default
// off). On the disabled path a site costs one relaxed atomic load and a
// predictable branch — no clock read, no allocation, no lock — which the
// micro_kernels suite verifies stays within noise of uninstrumented code.
// Handles (Counter&, Histogram&) are resolved once per site (typically a
// function-local static) so name lookup never recurs on a hot path.
//
// Naming. Metric names are dot-separated, lowercase, unit-suffixed where
// applicable ("checkpoint.persist_seconds"); docs/OBSERVABILITY.md lists
// every metric the stack emits and its meaning.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::metrics {

/// Process-wide instrumentation gate. Relaxed reads: a toggle is only
/// required to be seen "soon", not synchronized with any data.
[[nodiscard]] bool enabled();
/// Flips the gate (benches: on when --metrics is given; tests: around the
/// assertions). Counters keep their values across toggles.
void set_enabled(bool on);

namespace detail {

inline constexpr std::size_t kShards = 16;

/// One cache-line-padded atomic cell; an array of these forms a metric's
/// shard set.
struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> bits{0};
};

/// Stable small shard index for the calling thread.
[[nodiscard]] std::size_t shard_index();

[[nodiscard]] inline std::uint64_t double_bits(double v) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(v));
  __builtin_memcpy(&u, &v, sizeof(u));
  return u;
}

[[nodiscard]] inline double bits_double(std::uint64_t u) {
  double v;
  __builtin_memcpy(&v, &u, sizeof(v));
  return v;
}

}  // namespace detail

/// Monotone event count. add() is lock-free and wait-free per shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].bits.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  /// Merged value across shards.
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.bits.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard. Test isolation only (counters are monotone in
  /// production); not atomic against concurrent writers.
  void reset_for_testing() {
    for (auto& s : shards_) s.bits.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedCell, detail::kShards> shards_;
};

/// Last-write-wins scalar (set) plus a sharded delta ledger (add), so both
/// "current queue depth" (+1/−1 from many threads) and "resident bytes"
/// (absolute set) map onto one type. value() = last set + Σ deltas since.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    base_.store(detail::double_bits(v), std::memory_order_relaxed);
    for (auto& s : deltas_) s.bits.store(0, std::memory_order_relaxed);
  }

  void add(double delta) {
    if (!enabled()) return;
    auto& cell = deltas_[detail::shard_index()].bits;
    std::uint64_t observed = cell.load(std::memory_order_relaxed);
    for (;;) {
      const double updated = detail::bits_double(observed) + delta;
      if (cell.compare_exchange_weak(observed, detail::double_bits(updated),
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  [[nodiscard]] double value() const {
    double total = detail::bits_double(base_.load(std::memory_order_relaxed));
    for (const auto& s : deltas_) {
      total += detail::bits_double(s.bits.load(std::memory_order_relaxed));
    }
    return total;
  }

  /// Test isolation only; not atomic against concurrent writers.
  void reset_for_testing() {
    base_.store(0, std::memory_order_relaxed);
    for (auto& s : deltas_) s.bits.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> base_{0};
  std::array<detail::PaddedCell, detail::kShards> deltas_;
};

/// Merged read of one histogram.
struct HistogramSnapshot {
  /// Upper bounds of the finite buckets; an implicit +inf bucket follows.
  std::vector<double> bounds;
  /// counts[i] = observations with value <= bounds[i] (non-cumulative);
  /// counts.back() is the +inf bucket. counts.size() == bounds.size() + 1.
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram. Bucket bounds are frozen at registration;
/// observe() is a branchless-gated binary search plus two sharded atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] HistogramSnapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Test isolation only; not atomic against concurrent writers.
  void reset_for_testing();

 private:
  struct alignas(64) Shard {
    // unique_ptr<atomic[]>: atomics are neither movable nor copyable, so a
    // vector could never be sized after the array-of-shards is built.
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  // bounds+1 cells
    std::atomic<std::uint64_t> sum_bits{0};  // double bits, CAS-added
  };

  std::vector<double> bounds_;
  std::array<Shard, detail::kShards> shards_;
};

/// Exponential bucket ladder `start, start·factor, …` (count bounds) — the
/// default shape for latency histograms.
[[nodiscard]] std::vector<double> exponential_buckets(double start,
                                                      double factor,
                                                      std::size_t count);
/// Linear ladder `start, start+width, …` — for small integer-ish ranges
/// (recursion depths, batch sizes).
[[nodiscard]] std::vector<double> linear_buckets(double start, double width,
                                                 std::size_t count);

/// One completed span in the trace ring.
struct TraceEvent {
  /// Static strings only: sites pass literals, so no allocation or copy
  /// happens on the hot path and events stay POD.
  const char* name = "";
  const char* category = "";
  std::uint64_t start_us = 0;  // since process trace epoch
  std::uint64_t duration_us = 0;
  std::uint32_t thread = 0;
};

/// Bounded MPSC-ish trace ring: writers reserve slots with one fetch_add
/// and overwrite the oldest events once full, so memory stays O(capacity)
/// forever. drain() (export time) takes the ring lock; concurrent writers
/// spin only on their own slot's publication flag.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1u << 16);

  void record(const TraceEvent& event);

  /// Events currently resident, oldest first. Not linearizable against
  /// concurrent writers (export happens at quiescent points).
  [[nodiscard]] std::vector<TraceEvent> drain() const;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Spans recorded since construction (>= capacity() means wrap-around
  /// discarded the oldest).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Empties the ring. Test isolation only.
  void clear();

 private:
  struct Slot {
    Mutex mutex;  // uncontended except on wrap collisions
    TraceEvent event AGEDTR_GUARDED_BY(mutex);
    bool full AGEDTR_GUARDED_BY(mutex) = false;
  };

  mutable std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// The process-wide registry: name → metric, plus the trace ring.
/// Registration is mutex-guarded (cold); returned references are stable
/// for the registry's lifetime, so sites cache them in function-local
/// statics and the hot path never touches the map again.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  MetricsRegistry();

  /// Idempotent by name; help is kept from the first registration.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Re-registering a histogram name with different bounds is an error
  /// (InvalidArgument): bucket layouts are part of the metric's contract.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  [[nodiscard]] TraceRing& trace() { return trace_; }

  /// Prometheus-style text exposition (counters, gauges, histograms with
  /// cumulative `_bucket{le=...}` lines, `_sum`, `_count`).
  [[nodiscard]] std::string text_report() const;

  /// chrome://tracing "traceEvents" JSON of the trace ring.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Zeroes every counter/gauge/histogram and empties the trace ring
  /// (metric registrations survive). Test isolation only — never called on
  /// production paths.
  void reset();

  /// Looks up an existing metric for assertions; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

 private:
  struct Entry;

  mutable Mutex mutex_;
  // std::map: stable iteration order makes text reports diffable.
  std::map<std::string, std::unique_ptr<Entry>> entries_
      AGEDTR_GUARDED_BY(mutex_);
  TraceRing trace_;
};

/// Microseconds since the process trace epoch (first use).
[[nodiscard]] std::uint64_t trace_now_us();

/// RAII duration recorder: observes elapsed seconds into a histogram at
/// scope exit. Zero work (not even a clock read) while metrics are
/// disabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(enabled() ? &sink : nullptr),
        start_(sink_ ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_ == nullptr) return;
    sink_->observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII trace span: appends a TraceEvent to the global trace ring at scope
/// exit (and optionally observes the duration into a histogram). `name`
/// and `category` must be string literals or otherwise outlive the
/// registry. Zero work while metrics are disabled at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "agedtr",
                     Histogram* also_observe = nullptr);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  bool armed_;
  std::uint64_t start_us_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// Bench/example plumbing for the `--metrics <path>` flag: when `path` is
/// non-empty, enables metrics on construction and, on destruction, writes
/// the text report to `path` and the trace JSON to `path` +
/// ".trace.json" (creating parent directories). Empty path = inert.
class ScopedExport {
 public:
  explicit ScopedExport(std::string path);
  ~ScopedExport();

  ScopedExport(const ScopedExport&) = delete;
  ScopedExport& operator=(const ScopedExport&) = delete;

  [[nodiscard]] bool active() const { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace agedtr::metrics
