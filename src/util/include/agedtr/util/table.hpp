// Console table and CSV writers used by the bench harnesses to print the
// paper-style rows and to persist the series for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace agedtr {

/// A simple column-oriented table. Cells are stored as strings; numeric
/// convenience overloads format through format_double().
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Number of columns (fixed at construction).
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Number of data rows appended so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Appends a full row; the size must equal columns().
  void add_row(std::vector<std::string> row);

  /// Row-builder interface: begin_row() then cell(...) exactly columns()
  /// times. Cells accumulate into a pending row committed on the final cell.
  Table& begin_row();
  Table& cell(std::string value);
  Table& cell(double value, int digits = 4);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }

  /// Renders an aligned, boxed ASCII table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to the given path, throwing on I/O failure.
  void write_csv_file(const std::string& path) const;

  /// Access for tests.
  [[nodiscard]] const std::vector<std::string>& header() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool building_ = false;
};

}  // namespace agedtr
