#include "agedtr/util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace agedtr {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  const double mag = std::fabs(value);
  if (value == 0.0 || (mag >= 1e-3 && mag < 1e7)) {
    // Fixed notation with `digits` digits after the leading digit group.
    int decimals = digits;
    if (mag >= 1.0) {
      const int int_digits = static_cast<int>(std::floor(std::log10(mag))) + 1;
      decimals = digits > int_digits ? digits - int_digits : 0;
    }
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, value);
  }
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad(std::string s, std::size_t width, bool align_right) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return align_right ? fill + s : s + fill;
}

}  // namespace agedtr
