#include "agedtr/policy/two_server.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {

core::DtrPolicy make_two_server_policy(int l12, int l21) {
  core::DtrPolicy policy(2);
  policy.set(0, 1, l12);
  policy.set(1, 0, l21);
  return policy;
}

TwoServerPolicySearch::TwoServerPolicySearch(int m1, int m2)
    : m1_(m1), m2_(m2) {
  AGEDTR_REQUIRE(m1 >= 0 && m2 >= 0,
                 "TwoServerPolicySearch: task counts must be nonnegative");
}

namespace {

std::vector<PolicyPoint> evaluate_grid(const PolicyEvaluator& evaluator,
                                       const std::vector<PolicyPoint>& grid,
                                       ThreadPool* pool) {
  std::vector<PolicyPoint> out = grid;
  const auto body = [&](std::size_t i) {
    out[i].value = evaluator(make_two_server_policy(out[i].l12, out[i].l21));
  };
  if (pool != nullptr) {
    pool->parallel_for(0, out.size(), body);
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) body(i);
  }
  return out;
}

std::vector<PolicyPoint> evaluate_grid(const EvaluationEngine& engine,
                                       std::vector<PolicyPoint> grid) {
  std::vector<core::DtrPolicy> policies;
  policies.reserve(grid.size());
  for (const PolicyPoint& p : grid) {
    policies.push_back(make_two_server_policy(p.l12, p.l21));
  }
  const std::vector<double> values = engine.evaluate(policies);
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i].value = values[i];
  return grid;
}

/// Smallest-(l12, l21)-on-ties argmin/argmax shared by both optimize forms.
const PolicyPoint& pick_best(const std::vector<PolicyPoint>& points,
                             bool maximize) {
  AGEDTR_ASSERT(!points.empty());
  const PolicyPoint* best = &points.front();
  for (const PolicyPoint& p : points) {
    const bool better = maximize ? p.value > best->value
                                 : p.value < best->value;
    if (better) best = &p;
  }
  return *best;
}

}  // namespace

PolicyPoint TwoServerPolicySearch::optimize(const PolicyEvaluator& evaluator,
                                            bool maximize,
                                            ThreadPool* pool) const {
  return pick_best(surface(evaluator, pool), maximize);
}

PolicyPoint TwoServerPolicySearch::optimize(const EvaluationEngine& engine,
                                            bool maximize) const {
  return pick_best(surface(engine), maximize);
}

std::vector<PolicyPoint> TwoServerPolicySearch::sweep_l12(
    const PolicyEvaluator& evaluator, int l21, ThreadPool* pool) const {
  AGEDTR_REQUIRE(l21 >= 0 && l21 <= m2_,
                 "sweep_l12: l21 outside [0, m2]");
  std::vector<PolicyPoint> grid;
  grid.reserve(static_cast<std::size_t>(m1_) + 1);
  for (int l12 = 0; l12 <= m1_; ++l12) grid.push_back({l12, l21, 0.0});
  return evaluate_grid(evaluator, grid, pool);
}

std::vector<PolicyPoint> TwoServerPolicySearch::surface(
    const PolicyEvaluator& evaluator, ThreadPool* pool) const {
  std::vector<PolicyPoint> grid;
  grid.reserve(static_cast<std::size_t>(m1_ + 1) *
               static_cast<std::size_t>(m2_ + 1));
  for (int l12 = 0; l12 <= m1_; ++l12) {
    for (int l21 = 0; l21 <= m2_; ++l21) grid.push_back({l12, l21, 0.0});
  }
  return evaluate_grid(evaluator, grid, pool);
}

std::vector<PolicyPoint> TwoServerPolicySearch::sweep_l12(
    const EvaluationEngine& engine, int l21) const {
  AGEDTR_REQUIRE(l21 >= 0 && l21 <= m2_,
                 "sweep_l12: l21 outside [0, m2]");
  std::vector<PolicyPoint> grid;
  grid.reserve(static_cast<std::size_t>(m1_) + 1);
  for (int l12 = 0; l12 <= m1_; ++l12) grid.push_back({l12, l21, 0.0});
  return evaluate_grid(engine, std::move(grid));
}

std::vector<PolicyPoint> TwoServerPolicySearch::surface(
    const EvaluationEngine& engine) const {
  std::vector<PolicyPoint> grid;
  grid.reserve(static_cast<std::size_t>(m1_ + 1) *
               static_cast<std::size_t>(m2_ + 1));
  for (int l12 = 0; l12 <= m1_; ++l12) {
    for (int l21 = 0; l21 <= m2_; ++l21) grid.push_back({l12, l21, 0.0});
  }
  return evaluate_grid(engine, std::move(grid));
}

ReplicatedSearchResult TwoServerPolicySearch::optimize_replicated(
    const ReplicatedEvaluator& evaluator,
    const ReplicatedSearchOptions& options) const {
  AGEDTR_REQUIRE(evaluator != nullptr,
                 "optimize_replicated: evaluator must be callable");
  AGEDTR_REQUIRE(options.max_factor >= 1,
                 "optimize_replicated: max_factor must be >= 1");
  const BudgetTimer timer(options.budget);
  ReplicatedSearchResult result;
  bool have_best = false;
  // Serial lexicographic scan: the incumbent is only displaced by a
  // strictly better value, so ties resolve to the smallest
  // (l12, l21, factor) and the outcome is independent of any pool.
  for (int l12 = 0; l12 <= m1_ && !result.budget_exhausted; ++l12) {
    for (int l21 = 0; l21 <= m2_ && !result.budget_exhausted; ++l21) {
      const core::DtrPolicy policy = make_two_server_policy(l12, l21);
      for (int factor = 1; factor <= options.max_factor; ++factor) {
        // The first point always evaluates so an exhausted budget still
        // returns a usable incumbent instead of throwing.
        if (have_best && timer.expired()) {
          result.budget_exhausted = true;
          break;
        }
        if (have_best && options.lower_bound != nullptr &&
            options.lower_bound(policy, factor) >= result.best.value) {
          ++result.pruned;
          continue;
        }
        const double value = evaluator(policy, factor);
        ++result.evaluations;
        if (!have_best || value < result.best.value) {
          result.best = {l12, l21, factor, value};
          have_best = true;
        }
      }
    }
  }
  AGEDTR_REQUIRE(have_best,
                 "optimize_replicated: budget exhausted before any "
                 "evaluation completed");
  return result;
}

}  // namespace agedtr::policy
