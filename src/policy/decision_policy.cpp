#include "agedtr/policy/decision_policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/core/reseed.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {
namespace {

/// The deep part of the decide() precondition, shared by every adapter:
/// the state must be fresh (queues matching the engine's scenario, every
/// server up, no in-flight groups, all ages 0) — the shape decide_from_state
/// produces and the shape the paper's t = 0 decision problem assumes. The
/// cheap size check stays inline at each boundary (and under the
/// decision-policy-require lint rule).
void require_fresh_state(const core::SystemState& observed,
                         const EvaluationEngine& engine, const char* who) {
  const core::DcsScenario& scenario = engine.scenario();
  const std::size_t n = scenario.size();
  AGEDTR_REQUIRE(observed.up.size() == n && observed.tasks.size() == n,
                 std::string(who) + ": malformed state vectors");
  AGEDTR_REQUIRE(observed.groups.empty() && observed.fn_packets.empty(),
                 std::string(who) + ": decide() takes a fresh state; "
                                    "re-seed in-flight work first "
                                    "(decide_from_state)");
  for (std::size_t j = 0; j < n; ++j) {
    AGEDTR_REQUIRE(observed.up[j] != 0,
                   std::string(who) + ": decide() takes a fresh state; "
                                      "failed servers must be compacted away "
                                      "(decide_from_state)");
    AGEDTR_REQUIRE(observed.tasks[j] == scenario.servers[j].initial_tasks,
                   std::string(who) +
                       ": state queues do not match the engine's scenario");
  }
}

}  // namespace

QueueEstimates estimates_from_state(const core::SystemState& observed) {
  const std::size_t n = observed.size();
  QueueEstimates estimates(n, std::vector<int>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) estimates[i][j] = observed.tasks[j];
  }
  return estimates;
}

core::DtrPolicy decide_from_state(const DecisionPolicy& policy,
                                  const core::DcsScenario& base,
                                  const core::SystemState& observed,
                                  const DecisionEngineOptions& options) {
  const core::ReseededScenario fresh = core::reseed_scenario(base, observed);
  if (fresh.scenario.size() < 2) {
    return core::DtrPolicy(fresh.full_size);  // nowhere to move work
  }
  EvaluationEngine engine(
      fresh.scenario,
      {options.objective, options.deadline, /*markovian=*/false, options.conv,
       options.pool},
      options.workspace);
  const core::SystemState fresh_state = core::SystemState::initial(
      fresh.scenario, core::DtrPolicy(fresh.scenario.size()));
  return fresh.expand(policy.decide(fresh_state, engine));
}

sim::ReallocationCallback make_reallocation_callback(
    std::shared_ptr<const DecisionPolicy> policy, core::DcsScenario base,
    DecisionEngineOptions options) {
  AGEDTR_REQUIRE(policy != nullptr,
                 "make_reallocation_callback: null decision policy");
  return [policy = std::move(policy), base = std::move(base),
          options = std::move(options)](const core::SystemState& observed) {
    return decide_from_state(*policy, base, observed, options);
  };
}

FairSharePolicy::FairSharePolicy(ReallocationCriterion criterion)
    : criterion_(criterion) {}

core::DtrPolicy FairSharePolicy::decide(const core::SystemState& observed,
                                        EvaluationEngine& engine) const {
  AGEDTR_REQUIRE(observed.size() == engine.scenario().size(),
                 "FairSharePolicy::decide: state size does not match the "
                 "engine's scenario");
  require_fresh_state(observed, engine, "FairSharePolicy::decide");
  return initial_policy(engine.scenario(), estimates_from_state(observed),
                        criterion_);
}

std::string FairSharePolicy::name() const {
  return criterion_ == ReallocationCriterion::kSpeed
             ? "fair-share(speed)"
             : "fair-share(reliability)";
}

Algorithm1Policy::Algorithm1Policy(Algorithm1Options options)
    : options_(std::move(options)) {}

core::DtrPolicy Algorithm1Policy::decide(const core::SystemState& observed,
                                         EvaluationEngine& engine) const {
  AGEDTR_REQUIRE(observed.size() == engine.scenario().size(),
                 "Algorithm1Policy::decide: state size does not match the "
                 "engine's scenario");
  require_fresh_state(observed, engine, "Algorithm1Policy::decide");
  Algorithm1Options opts = options_;
  // Ride the engine's substrate: one workspace (and pool) across every
  // decision made against it. Journaling is a long-form devise() concern —
  // a per-epoch decision must not clobber a bench's checkpoint file.
  opts.workspace = engine.workspace();
  opts.share_workspace = true;
  if (engine.options().pool != nullptr) opts.pool = engine.options().pool;
  opts.checkpoint_path.clear();
  return Algorithm1(opts)
      .devise(engine.scenario(), estimates_from_state(observed))
      .policy;
}

std::string Algorithm1Policy::name() const {
  return options_.markovian ? "algorithm1(markovian)" : "algorithm1";
}

Algorithm1Result Algorithm1Policy::devise(
    const core::DcsScenario& scenario, const QueueEstimates& estimates) const {
  return Algorithm1(options_).devise(scenario, estimates);
}

Algorithm1Result Algorithm1Policy::devise(
    const core::DcsScenario& scenario) const {
  return Algorithm1(options_).devise(scenario);
}

TwoServerSearchPolicy::TwoServerSearchPolicy(TwoServerSearchOptions options)
    : options_(options) {}

core::DtrPolicy TwoServerSearchPolicy::decide(
    const core::SystemState& observed, EvaluationEngine& engine) const {
  AGEDTR_REQUIRE(observed.size() == engine.scenario().size() &&
                     observed.size() == 2,
                 "TwoServerSearchPolicy::decide: the exhaustive search is "
                 "exact for 2-server scenarios only");
  require_fresh_state(observed, engine, "TwoServerSearchPolicy::decide");
  const int m2 = options_.max_l21 >= 0
                     ? std::min(observed.tasks[1], options_.max_l21)
                     : observed.tasks[1];
  const TwoServerPolicySearch search(observed.tasks[0], m2);
  const bool maximize = is_maximization(engine.options().objective);
  PolicyPoint best;
  if (options_.markovian) {
    // Same scenario, same workspace, exponentialized model.
    EvaluationEngineOptions sub = engine.options();
    sub.markovian = true;
    EvaluationEngine markov(engine.scenario(), sub, engine.workspace());
    best = search.optimize(markov, maximize);
  } else {
    best = search.optimize(engine, maximize);
  }
  return make_two_server_policy(best.l12, best.l21);
}

std::string TwoServerSearchPolicy::name() const {
  std::string name = options_.markovian ? "two-server-search(markovian)"
                                        : "two-server-search";
  if (options_.max_l21 >= 0) {
    name += "[l21<=" + std::to_string(options_.max_l21) + "]";
  }
  return name;
}

std::shared_ptr<const DecisionPolicy> make_markovian_prescribed_policy(
    Algorithm1Options options) {
  options.markovian = true;
  return std::make_shared<Algorithm1Policy>(std::move(options));
}

RollingHorizonPolicy::RollingHorizonPolicy(
    std::shared_ptr<const DecisionPolicy> inner, std::vector<double> epochs)
    : inner_(std::move(inner)), epochs_(std::move(epochs)) {
  AGEDTR_REQUIRE(inner_ != nullptr,
                 "RollingHorizonPolicy: null inner decision policy");
  double prev = 0.0;
  for (const double epoch : epochs_) {
    AGEDTR_REQUIRE(std::isfinite(epoch) && epoch >= 0.0,
                   "RollingHorizonPolicy: epochs must be finite and >= 0");
    AGEDTR_REQUIRE(epoch >= prev,
                   "RollingHorizonPolicy: epochs must be sorted ascending");
    prev = epoch;
  }
}

core::DtrPolicy RollingHorizonPolicy::decide(const core::SystemState& observed,
                                             EvaluationEngine& engine) const {
  AGEDTR_REQUIRE(observed.size() == engine.scenario().size(),
                 "RollingHorizonPolicy::decide: state size does not match "
                 "the engine's scenario");
  return inner_->decide(observed, engine);
}

std::string RollingHorizonPolicy::name() const {
  return "rolling(" + inner_->name() + ")";
}

std::vector<double> RollingHorizonPolicy::decision_epochs() const {
  return epochs_;
}

}  // namespace agedtr::policy
