#include "agedtr/policy/tradeoff.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {

const TradeoffPoint& TradeoffAnalysis::best_within_time_budget(
    double budget_factor) const {
  AGEDTR_REQUIRE(!frontier.empty(), "tradeoff: empty frontier");
  AGEDTR_REQUIRE(budget_factor >= 1.0,
                 "best_within_time_budget: factor must be >= 1");
  const double budget =
      frontier.front().mean_execution_time * budget_factor;
  // The frontier is sorted by ascending T̄ with descending reliability is
  // false — reliability *increases* along descending speed only when the
  // metrics genuinely conflict; in general take the max-R point in budget.
  const TradeoffPoint* best = &frontier.front();
  for (const TradeoffPoint& p : frontier) {
    if (p.mean_execution_time <= budget &&
        p.reliability > best->reliability) {
      best = &p;
    }
  }
  return *best;
}

const TradeoffPoint& TradeoffAnalysis::weighted_compromise(
    double lambda) const {
  AGEDTR_REQUIRE(!frontier.empty(), "tradeoff: empty frontier");
  AGEDTR_REQUIRE(lambda >= 0.0 && lambda <= 1.0,
                 "weighted_compromise: lambda must be in [0, 1]");
  double t_min = std::numeric_limits<double>::infinity();
  double r_max = 0.0;
  for (const TradeoffPoint& p : frontier) {
    t_min = std::min(t_min, p.mean_execution_time);
    r_max = std::max(r_max, p.reliability);
  }
  AGEDTR_ASSERT(t_min > 0.0);
  const TradeoffPoint* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  for (const TradeoffPoint& p : frontier) {
    const double score =
        lambda * (p.mean_execution_time / t_min) -
        (1.0 - lambda) * (r_max > 0.0 ? p.reliability / r_max : 0.0);
    if (score < best_score) {
      best_score = score;
      best = &p;
    }
  }
  return *best;
}

TradeoffAnalysis tradeoff_analysis(const core::DcsScenario& scenario,
                                   int step,
                                   const core::ConvolutionOptions& options,
                                   ThreadPool* pool) {
  scenario.validate();
  AGEDTR_REQUIRE(scenario.size() == 2,
                 "tradeoff_analysis: two-server systems only");
  AGEDTR_REQUIRE(step >= 1, "tradeoff_analysis: step must be >= 1");
  bool has_failures = false;
  for (const core::ServerSpec& s : scenario.servers) {
    has_failures = has_failures || s.failure != nullptr;
  }
  AGEDTR_REQUIRE(has_failures,
                 "tradeoff_analysis: the scenario needs failure laws "
                 "(reliability is trivially 1 otherwise)");

  // Two engines over one lattice workspace: T̄ on the reliable system, R_∞
  // on the failing one. The systems differ only in failure laws — which
  // never enter the lattice — so with a common policy-invariant horizon
  // every discretization and k-fold sum is computed once and serves both
  // metrics.
  core::ConvolutionOptions conv = options;
  if (conv.dt <= 0.0 && conv.horizon <= 0.0) {
    double max_service_mean = 0.0;
    double max_transfer_mean = 0.0;
    for (const core::ServerSpec& s : scenario.servers) {
      max_service_mean = std::max(max_service_mean, s.service->mean());
    }
    for (const auto& row : scenario.transfer) {
      for (const auto& law : row) {
        if (law != nullptr) {
          max_transfer_mean = std::max(max_transfer_mean, law->mean());
        }
      }
    }
    conv.horizon =
        conv.horizon_multiple *
        (scenario.total_tasks() * max_service_mean + max_transfer_mean);
  }
  const auto workspace = std::make_shared<core::LatticeWorkspace>();
  core::DcsScenario reliable = scenario;
  for (core::ServerSpec& s : reliable.servers) s.failure = nullptr;
  EvaluationEngineOptions time_options;
  time_options.objective = Objective::kMeanExecutionTime;
  time_options.conv = conv;
  time_options.pool = pool;
  EvaluationEngineOptions rel_options = time_options;
  rel_options.objective = Objective::kReliability;
  const EvaluationEngine time_engine(std::move(reliable), time_options,
                                     workspace);
  const EvaluationEngine rel_engine(scenario, rel_options, workspace);

  TradeoffAnalysis analysis;
  const int m1 = scenario.servers[0].initial_tasks;
  const int m2 = scenario.servers[1].initial_tasks;
  std::vector<core::DtrPolicy> policies;
  for (int l12 = 0; l12 <= m1; l12 += step) {
    for (int l21 = 0; l21 <= m2; l21 += step) {
      analysis.points.push_back({l12, l21, 0.0, 0.0});
      policies.push_back(make_two_server_policy(l12, l21));
    }
  }
  const std::vector<double> times = time_engine.evaluate(policies);
  const std::vector<double> reliabilities = rel_engine.evaluate(policies);
  for (std::size_t i = 0; i < analysis.points.size(); ++i) {
    analysis.points[i].mean_execution_time = times[i];
    analysis.points[i].reliability = reliabilities[i];
  }

  // Pareto extraction: sort by (T̄ asc, R desc) and keep strictly improving
  // reliability.
  std::vector<TradeoffPoint> sorted = analysis.points;
  std::sort(sorted.begin(), sorted.end(),
            [](const TradeoffPoint& a, const TradeoffPoint& b) {
              if (a.mean_execution_time != b.mean_execution_time) {
                return a.mean_execution_time < b.mean_execution_time;
              }
              return a.reliability > b.reliability;
            });
  double best_reliability = -1.0;
  for (const TradeoffPoint& p : sorted) {
    if (p.reliability > best_reliability) {
      analysis.frontier.push_back(p);
      best_reliability = p.reliability;
    }
  }
  return analysis;
}

}  // namespace agedtr::policy
