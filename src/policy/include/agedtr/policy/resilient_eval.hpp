// Graceful-degradation metric evaluation: a fallback chain over the four
// solver families, ordered from most trusted to most robust,
//
//   Regenerative (Theorem 1, reference)  →  Convolution (exact, scalable)
//     →  Markovian ([2],[7] baseline on the exponentialized scenario)
//       →  Monte-Carlo (simulation estimate; never refuses),
//
// where each tier's ConvergenceError / BudgetExceeded / InvalidArgument is
// caught, recorded, and answered by the next tier instead of propagating
// out of a policy search. The chain returns a structured EvalOutcome naming
// the tier that answered and why every earlier tier declined, so a
// degradation sweep can report per-tier counts and a non-converging solver
// can never kill an evaluation sweep.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/regen_solver.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/sim/monte_carlo.hpp"

namespace agedtr::policy {

/// The solver families of the fallback chain, in descending trust order.
enum class EvalTier : int {
  kRegenerative = 0,
  kConvolution = 1,
  kMarkovian = 2,
  kMonteCarlo = 3,
};
inline constexpr std::size_t kEvalTierCount = 4;

[[nodiscard]] std::string eval_tier_name(EvalTier tier);

struct ResilientEvalOptions {
  Objective objective = Objective::kReliability;
  /// Deadline for Objective::kQos (must be positive then).
  double deadline = 0.0;

  /// The reference recursion costs exp(total events), so it is attempted
  /// only under a tight budget and expected to decline on paper-scale
  /// configurations; disable to start the chain at the convolution tier.
  bool try_regenerative = true;
  core::RegenSolverOptions regenerative = [] {
    core::RegenSolverOptions o;
    o.budget.max_seconds = 0.5;
    o.budget.max_depth = 12;
    return o;
  }();

  core::ConvolutionOptions convolution;
  /// Lattice workspace for the convolution tier's evaluation engine;
  /// nullptr → a private one. Pass a shared workspace to reuse
  /// discretizations and k-fold sums with other evaluators or searches
  /// over the same scenario.
  std::shared_ptr<core::LatticeWorkspace> workspace;

  /// The Markovian tier replaces every law by an exponential of equal mean
  /// (the approximation the paper benchmarks against). When false the tier
  /// refuses scenarios that are not already memoryless instead of silently
  /// approximating them.
  bool allow_markovian_approximation = true;
  /// DP/uniformization state-count guard for the Markovian tier; larger
  /// configurations decline with BudgetExceeded and fall to Monte-Carlo.
  std::size_t markovian_max_states = 2'000'000;

  sim::MonteCarloOptions monte_carlo = [] {
    sim::MonteCarloOptions o;
    o.replications = 4'000;
    return o;
  }();
};

/// Why a tier declined, classified from the exception type. Distinguishing
/// the two budget axes matters for tuning: a wall overrun says "grant more
/// time or accept the fallback", a depth overrun says "this configuration
/// is structurally too large for the tier — no time budget will help".
enum class FailureCause : int {
  /// WallBudgetExceeded: the wall-clock cap (EvalBudget::max_seconds)
  /// expired mid-evaluation.
  kWallBudget = 0,
  /// DepthBudgetExceeded: a structural cap — recursion depth or the
  /// Markovian state-count guard — ruled the configuration out.
  kDepthBudget = 1,
  /// A plain BudgetExceeded that carries no axis information.
  kOtherBudget = 2,
  /// Anything else (InvalidArgument, ConvergenceError, runtime errors).
  kOther = 3,
};

[[nodiscard]] std::string failure_cause_name(FailureCause cause);

struct TierFailure {
  EvalTier tier = EvalTier::kRegenerative;
  FailureCause cause = FailureCause::kOther;
  std::string reason;
};

/// What one resilient evaluation produced.
struct EvalOutcome {
  /// False only when every tier (including Monte-Carlo) failed.
  bool ok = false;
  double value = 0.0;
  /// The tier that produced `value` (meaningful when ok).
  EvalTier tier = EvalTier::kMonteCarlo;
  /// Why each earlier tier declined, in chain order.
  std::vector<TierFailure> failures;

  /// One-line human-readable account ("convolution answered; regenerative
  /// declined: ...").
  [[nodiscard]] std::string describe() const;
};

/// Running tally of outcomes for sweep reporting.
struct EvalTally {
  std::size_t evaluations = 0;
  /// answered[t]: evaluations tier t answered.
  std::size_t answered[kEvalTierCount] = {0, 0, 0, 0};
  /// declined[t]: evaluations tier t failed/declined in.
  std::size_t declined[kEvalTierCount] = {0, 0, 0, 0};
  /// Declines broken down by budget axis (wall-clock vs structural depth);
  /// declines with other causes appear only in declined[].
  std::size_t declined_wall_budget = 0;
  std::size_t declined_depth_budget = 0;
  std::size_t total_failures = 0;  // evaluations no tier could answer

  void record(const EvalOutcome& outcome);
};

/// Evaluates one metric of DTR policies against a scenario through the
/// fallback chain. Thread-safe: evaluate() may be called concurrently (the
/// underlying convolution solvers are shared and thread-safe).
class ResilientEvaluator {
 public:
  explicit ResilientEvaluator(core::DcsScenario scenario,
                              ResilientEvalOptions options = {});

  /// Runs the chain. Never throws: every solver failure is captured in the
  /// outcome, and an all-tiers failure is reported with ok == false.
  [[nodiscard]] EvalOutcome evaluate(const core::DtrPolicy& policy) const;

  /// Adapter for TwoServerPolicySearch and friends: returns outcome.value.
  /// For evaluations where no tier answered, returns the objective's worst
  /// value (+inf for minimization, -inf for maximization) so the search
  /// simply avoids the policy.
  [[nodiscard]] PolicyEvaluator as_policy_evaluator() const;

  [[nodiscard]] const core::DcsScenario& scenario() const {
    return *scenario_;
  }
  [[nodiscard]] const ResilientEvalOptions& options() const {
    return options_;
  }
  /// The lattice workspace behind the convolution tier (never null).
  [[nodiscard]] const std::shared_ptr<core::LatticeWorkspace>& workspace()
      const;

 private:
  double evaluate_regenerative(const core::DtrPolicy& policy) const;
  double evaluate_convolution(const core::DtrPolicy& policy) const;
  double evaluate_markovian(const core::DtrPolicy& policy) const;
  double evaluate_monte_carlo(const core::DtrPolicy& policy) const;

  std::shared_ptr<const core::DcsScenario> scenario_;
  std::shared_ptr<const core::DcsScenario> exponentialized_;
  ResilientEvalOptions options_;
  /// The convolution tier, engine-backed: objective dispatch, lattice
  /// caching, and the conv budget all live behind it.
  std::shared_ptr<const EvaluationEngine> convolution_;
};

}  // namespace agedtr::policy
