// The initial DTR policy of Eq. (5): a fair-share allocation in which server
// i compares its queue against the system load it estimates and pledges its
// excess to under-loaded peers in proportion to their deficits, weighted by
// a reallocation criterion Λ_j (relative computing power, or relative server
// dependability).
#pragma once

#include <vector>

#include "agedtr/core/scenario.hpp"

namespace agedtr::policy {

enum class ReallocationCriterion {
  /// Λ_j = 1/E[W_j]: share proportional to processing speed (the paper's
  /// "relative computing power of the servers").
  kSpeed,
  /// Λ_j = MTTF_j/E[W_j]: the expected number of tasks server j can serve
  /// before failing — our concretization of the paper's "reliability of the
  /// jth server" criterion (documented in DESIGN.md).
  kReliability,
};

/// Queue-length estimates: estimates[i][j] = m̂_ji, server i's estimate of
/// server j's queue. Row i's diagonal entry must equal m_i (a server knows
/// its own queue).
using QueueEstimates = std::vector<std::vector<int>>;

/// Perfect-information estimates built from the scenario's initial queues.
[[nodiscard]] QueueEstimates perfect_estimates(
    const core::DcsScenario& scenario);

/// The Λ weights for the criterion.
[[nodiscard]] std::vector<double> reallocation_weights(
    const core::DcsScenario& scenario, ReallocationCriterion criterion);

/// Eq. (5): L⁰_ij = floor(excess_i · deficit_j / Σ_k deficit_k) where
/// target_j = M̂_i·Λ_j/Σ_ℓ Λ_ℓ, excess_i = m_i − target_i and
/// deficit_j = max(0, target_j − m̂_ji), computed independently per sender
/// from its own estimates.
[[nodiscard]] core::DtrPolicy initial_policy(
    const core::DcsScenario& scenario, const QueueEstimates& estimates,
    ReallocationCriterion criterion);

}  // namespace agedtr::policy
