// DecisionPolicy: the uniform interface every decision maker in the stack
// sits behind — one-shot Algorithm 1, the exact 2-server search, the
// Eq. (5) fair share, the Markovian-prescribed baseline, and the rolling
// wrapper that re-invokes any of them mid-run.
//
// The contract mirrors the paper's decision problem: a decision maker sees
// a *fresh* hybrid state S(0) of some scenario (every clock at age 0 —
// exactly what SystemState::initial produces) together with an evaluation
// engine frozen on that scenario, and returns a DTR policy in the
// scenario's index space. Mid-run decisions reach this contract through
// core::reseed_scenario: the observed aged state is distilled into a fresh
// scenario over the survivors (failure clocks replaced by their aged
// views), so a rolling re-decision is *literally* a t = 0 decision on the
// re-seeded problem. decide_from_state() packages that round trip, and
// make_reallocation_callback() adapts it to the simulator's
// sim::ReallocationCallback bridge (the sim layer cannot see this header).
//
// Every implementation validates its input state with AGEDTR_REQUIRE at
// the API boundary — enforced by the decision-policy-require lint rule.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/core/state.hpp"
#include "agedtr/policy/algorithm1.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/initial_policy.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/sim/simulator.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {

class DecisionPolicy {
 public:
  virtual ~DecisionPolicy() = default;

  /// Devises a DTR policy for the engine's scenario from a fresh state
  /// S(0) of it (observed.tasks must match the scenario's initial queues;
  /// every server up, every age 0). The engine is always frozen on the
  /// true (non-exponentialized) model — implementations that want the
  /// Markovian model build their own exponentialized view internally.
  /// Pure: same (state, engine) in, same policy out, no RNG.
  [[nodiscard]] virtual core::DtrPolicy decide(
      const core::SystemState& observed, EvaluationEngine& engine) const = 0;

  /// Stable identifier used in comparer tables and CSV output.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Decision epochs this policy wants during a simulated run (empty for
  /// one-shot policies; see RollingHorizonPolicy).
  [[nodiscard]] virtual std::vector<double> decision_epochs() const {
    return {};
  }
};

/// How decide_from_state() builds the per-decision EvaluationEngine.
struct DecisionEngineOptions {
  Objective objective = Objective::kMeanExecutionTime;
  /// Deadline for Objective::kQos (must be positive then).
  double deadline = 0.0;
  /// Lattice tuning and per-evaluation budget for the decision's engine.
  core::ConvolutionOptions conv;
  /// Shared lattice substrate across decisions (nullptr = a private
  /// workspace per decision). Sharing keeps per-pair grids warm across
  /// rolling epochs and comparer cells.
  std::shared_ptr<core::LatticeWorkspace> workspace;
  /// Parallelizes policy grids inside the decision (nullptr = serial).
  ThreadPool* pool = nullptr;
};

/// The full mid-run decision round trip: re-seed `base` from `observed`
/// (core::reseed_scenario), build an engine on the fresh compact scenario,
/// invoke the policy on the fresh state, and expand the answer back to the
/// full index space. With a single survivor the zero policy is returned
/// without building an engine (nothing can move). This is also how the
/// *initial* decision is computed — at t = 0 the re-seed is an exact
/// round trip, so one code path serves both.
[[nodiscard]] core::DtrPolicy decide_from_state(
    const DecisionPolicy& policy, const core::DcsScenario& base,
    const core::SystemState& observed,
    const DecisionEngineOptions& options = {});

/// Packages decide_from_state into the simulator's re-decision bridge.
/// The callback owns shared copies of its inputs, draws no randomness, and
/// is safe to invoke concurrently from Monte-Carlo worker threads (the
/// engine workspace, when shared, is thread-safe).
[[nodiscard]] sim::ReallocationCallback make_reallocation_callback(
    std::shared_ptr<const DecisionPolicy> policy, core::DcsScenario base,
    DecisionEngineOptions options = {});

/// Perfect-information queue estimates read off a state snapshot:
/// estimates[i][j] = observed.tasks[j] (every server sees true queues).
[[nodiscard]] QueueEstimates estimates_from_state(
    const core::SystemState& observed);

/// The Eq. (5) fair share as a DecisionPolicy (perfect estimates).
class FairSharePolicy final : public DecisionPolicy {
 public:
  explicit FairSharePolicy(
      ReallocationCriterion criterion = ReallocationCriterion::kSpeed);

  [[nodiscard]] core::DtrPolicy decide(const core::SystemState& observed,
                                       EvaluationEngine& engine) const override;
  [[nodiscard]] std::string name() const override;

 private:
  ReallocationCriterion criterion_;
};

/// Algorithm 1 as a DecisionPolicy. decide() shares the engine's lattice
/// workspace and pool and never journals (checkpoint options are for the
/// long-form devise() below, which benches call for iteration counts,
/// convergence flags, and crash-consistent journaling).
class Algorithm1Policy final : public DecisionPolicy {
 public:
  explicit Algorithm1Policy(Algorithm1Options options = {});

  [[nodiscard]] core::DtrPolicy decide(const core::SystemState& observed,
                                       EvaluationEngine& engine) const override;
  [[nodiscard]] std::string name() const override;

  /// The full Algorithm 1 run with every knob honored (checkpoints,
  /// replication selection, …) — the entry point bench harnesses use when
  /// they need more than the policy matrix.
  [[nodiscard]] Algorithm1Result devise(const core::DcsScenario& scenario,
                                        const QueueEstimates& estimates) const;
  [[nodiscard]] Algorithm1Result devise(
      const core::DcsScenario& scenario) const;

  [[nodiscard]] const Algorithm1Options& options() const { return options_; }

 private:
  Algorithm1Options options_;
};

struct TwoServerSearchOptions {
  /// Search under the Markovian (exponentialized) model instead of the
  /// engine's true laws.
  bool markovian = false;
  /// Caps the searched L21 axis (negative = the full [0, m2] range). The
  /// paper's one-way offload line — problem (3) restricted to L21 = 0,
  /// used when one server is known to be the fast one — is max_l21 = 0.
  int max_l21 = -1;
};

/// The exact 2-server exhaustive search as a DecisionPolicy (requires a
/// 2-server scenario; the grid runs through the engine's batched path).
class TwoServerSearchPolicy final : public DecisionPolicy {
 public:
  explicit TwoServerSearchPolicy(TwoServerSearchOptions options = {});

  [[nodiscard]] core::DtrPolicy decide(const core::SystemState& observed,
                                       EvaluationEngine& engine) const override;
  [[nodiscard]] std::string name() const override;

 private:
  TwoServerSearchOptions options_;
};

/// The [2],[7] comparison baseline: Algorithm 1 devised on the Markovian
/// (every law exponentialized at equal mean) model.
[[nodiscard]] std::shared_ptr<const DecisionPolicy>
make_markovian_prescribed_policy(Algorithm1Options options = {});

/// Rolling-horizon wrapper: delegates every decision to `inner` and
/// advertises the epoch schedule at which a simulated run should re-invoke
/// it (through run_rolling + make_reallocation_callback). With an empty
/// epoch list this is exactly the inner one-shot policy.
class RollingHorizonPolicy final : public DecisionPolicy {
 public:
  /// Epochs must be finite, >= 0, and sorted ascending (run_rolling's
  /// contract; entries at 0 are legal and coincide with the initial
  /// decision).
  RollingHorizonPolicy(std::shared_ptr<const DecisionPolicy> inner,
                       std::vector<double> epochs);

  [[nodiscard]] core::DtrPolicy decide(const core::SystemState& observed,
                                       EvaluationEngine& engine) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> decision_epochs() const override;

  [[nodiscard]] const std::shared_ptr<const DecisionPolicy>& inner() const {
    return inner_;
  }

 private:
  std::shared_ptr<const DecisionPolicy> inner_;
  std::vector<double> epochs_;
};

}  // namespace agedtr::policy
