// Optimal 2-server DTR policies (Section II-D): exhaustive search over
// (L₁₂, L₂₁) ∈ [0, m₁] × [0, m₂] of the chosen metric — problems (3)/(4).
// The search parallelizes over the policy grid (evaluators are thread-safe)
// and can sweep a single axis for the Fig. 1/2 curves. Grids can run
// against a plain PolicyEvaluator or, preferably, batched through an
// EvaluationEngine (one lattice workspace, pool-parallel internally).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/util/budget.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {

class EvaluationEngine;

struct PolicyPoint {
  int l12 = 0;
  int l21 = 0;
  double value = 0.0;
};

/// One point of the joint (reallocation × replication) search space: the
/// 2-server policy (l12, l21) replicated uniformly by `factor`.
struct ReplicatedPolicyPoint {
  int l12 = 0;
  int l21 = 0;
  int factor = 1;
  double value = 0.0;
};

/// Scores one (policy, replication factor) pair — typically a Monte-Carlo
/// mean completion time under make_uniform_replication(·, ·, factor).
using ReplicatedEvaluator =
    std::function<double(const core::DtrPolicy&, int factor)>;

struct ReplicatedSearchOptions {
  /// Largest replication factor tried (clamped to the server count by the
  /// evaluator's plan construction); factors run 1..max_factor.
  int max_factor = 1;
  /// Wall-clock cap for the whole search. Exhaustion does not throw: the
  /// search stops where it is and reports budget_exhausted, so a partial
  /// scan still returns its incumbent.
  EvalBudget budget;
  /// Optional cheap lower bound on the (minimized) objective; a point whose
  /// bound is already >= the incumbent value is pruned without calling the
  /// expensive evaluator. Must be a true lower bound or the search may drop
  /// the optimum. Only consulted for minimization.
  ReplicatedEvaluator lower_bound;
};

struct ReplicatedSearchResult {
  ReplicatedPolicyPoint best;
  /// Expensive evaluations actually performed.
  std::size_t evaluations = 0;
  /// Points skipped because the lower bound dominated the incumbent.
  std::size_t pruned = 0;
  /// True when the wall-clock budget stopped the scan before it covered the
  /// whole grid (best is then the incumbent of the covered prefix).
  bool budget_exhausted = false;
};

/// Builds the 2×2 policy with the given off-diagonal entries.
[[nodiscard]] core::DtrPolicy make_two_server_policy(int l12, int l21);

class TwoServerPolicySearch {
 public:
  /// `m1`, `m2` bound the search ranges (tasks initially at each server).
  TwoServerPolicySearch(int m1, int m2);

  /// Exhaustive optimum of the evaluator. `pool` parallelizes the grid
  /// (nullptr = serial). Ties break toward the smallest (l12, l21) in
  /// lexicographic order, matching the determinism tests expect.
  [[nodiscard]] PolicyPoint optimize(const PolicyEvaluator& evaluator,
                                     bool maximize,
                                     ThreadPool* pool = nullptr) const;

  /// Convenience: optimize a named objective.
  [[nodiscard]] PolicyPoint optimize(const PolicyEvaluator& evaluator,
                                     Objective objective,
                                     ThreadPool* pool = nullptr) const {
    return optimize(evaluator, is_maximization(objective), pool);
  }

  /// Evaluates the metric along l12 = {0, …, m1} at fixed l21 — the
  /// Fig. 1/Fig. 2 abscissa.
  [[nodiscard]] std::vector<PolicyPoint> sweep_l12(
      const PolicyEvaluator& evaluator, int l21,
      ThreadPool* pool = nullptr) const;

  /// Full surface, row-major in l12 — the Fig. 3 data.
  [[nodiscard]] std::vector<PolicyPoint> surface(
      const PolicyEvaluator& evaluator, ThreadPool* pool = nullptr) const;

  /// Engine-backed forms: the grid runs through the engine's batched
  /// evaluate (parallelized by the engine's pool), bit-identical to the
  /// PolicyEvaluator forms over the same model.
  [[nodiscard]] PolicyPoint optimize(const EvaluationEngine& engine,
                                     bool maximize) const;
  [[nodiscard]] std::vector<PolicyPoint> sweep_l12(
      const EvaluationEngine& engine, int l21) const;
  [[nodiscard]] std::vector<PolicyPoint> surface(
      const EvaluationEngine& engine) const;

  /// Exhaustive minimization over the joint grid
  /// (l12, l21, factor) ∈ [0, m1] × [0, m2] × [1, max_factor], scanned
  /// serially in lexicographic order so ties always resolve to the smallest
  /// (l12, l21, factor) regardless of pool configuration. Budget-aware:
  /// options.budget stops the scan gracefully and options.lower_bound
  /// prunes dominated points (see ReplicatedSearchOptions).
  [[nodiscard]] ReplicatedSearchResult optimize_replicated(
      const ReplicatedEvaluator& evaluator,
      const ReplicatedSearchOptions& options) const;

 private:
  int m1_;
  int m2_;
};

}  // namespace agedtr::policy
