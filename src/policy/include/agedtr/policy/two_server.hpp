// Optimal 2-server DTR policies (Section II-D): exhaustive search over
// (L₁₂, L₂₁) ∈ [0, m₁] × [0, m₂] of the chosen metric — problems (3)/(4).
// The search parallelizes over the policy grid (evaluators are thread-safe)
// and can sweep a single axis for the Fig. 1/2 curves. Grids can run
// against a plain PolicyEvaluator or, preferably, batched through an
// EvaluationEngine (one lattice workspace, pool-parallel internally).
#pragma once

#include <optional>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {

class EvaluationEngine;

struct PolicyPoint {
  int l12 = 0;
  int l21 = 0;
  double value = 0.0;
};

/// Builds the 2×2 policy with the given off-diagonal entries.
[[nodiscard]] core::DtrPolicy make_two_server_policy(int l12, int l21);

class TwoServerPolicySearch {
 public:
  /// `m1`, `m2` bound the search ranges (tasks initially at each server).
  TwoServerPolicySearch(int m1, int m2);

  /// Exhaustive optimum of the evaluator. `pool` parallelizes the grid
  /// (nullptr = serial). Ties break toward the smallest (l12, l21) in
  /// lexicographic order, matching the determinism tests expect.
  [[nodiscard]] PolicyPoint optimize(const PolicyEvaluator& evaluator,
                                     bool maximize,
                                     ThreadPool* pool = nullptr) const;

  /// Convenience: optimize a named objective.
  [[nodiscard]] PolicyPoint optimize(const PolicyEvaluator& evaluator,
                                     Objective objective,
                                     ThreadPool* pool = nullptr) const {
    return optimize(evaluator, is_maximization(objective), pool);
  }

  /// Evaluates the metric along l12 = {0, …, m1} at fixed l21 — the
  /// Fig. 1/Fig. 2 abscissa.
  [[nodiscard]] std::vector<PolicyPoint> sweep_l12(
      const PolicyEvaluator& evaluator, int l21,
      ThreadPool* pool = nullptr) const;

  /// Full surface, row-major in l12 — the Fig. 3 data.
  [[nodiscard]] std::vector<PolicyPoint> surface(
      const PolicyEvaluator& evaluator, ThreadPool* pool = nullptr) const;

  /// Engine-backed forms: the grid runs through the engine's batched
  /// evaluate (parallelized by the engine's pool), bit-identical to the
  /// PolicyEvaluator forms over the same model.
  [[nodiscard]] PolicyPoint optimize(const EvaluationEngine& engine,
                                     bool maximize) const;
  [[nodiscard]] std::vector<PolicyPoint> sweep_l12(
      const EvaluationEngine& engine, int l21) const;
  [[nodiscard]] std::vector<PolicyPoint> surface(
      const EvaluationEngine& engine) const;

 private:
  int m1_;
  int m2_;
};

}  // namespace agedtr::policy
