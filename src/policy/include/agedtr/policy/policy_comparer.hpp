// PolicyComparer: the CRN harness that ranks DecisionPolicy implementations
// against a grid of scenarios by simulated outcome.
//
// Every (policy, scenario) cell replays the *same* trajectory sub-streams:
// trajectory r always draws from random::make_counter_rng(seed, r),
// independent of the policy, the scenario, and the thread schedule. Common
// random numbers make the cross-cell comparison a paired experiment — the
// difference between two policies' columns is never noise from different
// event draws — and the counter-based derivation keeps every number
// bit-identical whether the trajectories run serially or on a pool.
//
// Per cell the deterministic t = 0 decision is computed once
// (decide_from_state on the fresh initial state) and shared by all
// trajectories; policies that advertise decision_epochs() are simulated
// with DcsSimulator::run_rolling and re-decide mid-run through
// make_reallocation_callback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/sim/simulator.hpp"
#include "agedtr/stats/summary.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {

struct ComparerScenario {
  std::string name;
  core::DcsScenario scenario;
};

struct ComparerEntry {
  std::string name;
  std::shared_ptr<const DecisionPolicy> policy;
};

struct PolicyComparerOptions {
  /// Monte-Carlo trajectories per (policy, scenario) cell.
  std::size_t trajectories = 1000;
  /// Seed of the counter-based sub-streams (trajectory r uses stream r).
  std::uint64_t seed = 0x5eed;
  /// Deadline for the QoS column (<= 0 leaves the column at 0).
  double deadline = 0.0;
  /// How per-cell decisions build their evaluation engines (shared lattice
  /// workspace, pool, objective). The objective also steers rankings only
  /// through the policies' decisions — rankings themselves are always by
  /// simulated mean completion time.
  DecisionEngineOptions engine;
  /// Simulator configuration applied to every cell (faults, replication,
  /// event caps).
  sim::SimulatorOptions simulator;
  /// Parallelizes trajectories within a cell (nullptr = serial). Results
  /// are bit-identical for any pool size.
  ThreadPool* pool = nullptr;
};

/// One cell of the comparison grid, plus its per-scenario rank.
struct PolicyAssessment {
  std::string policy_name;
  std::string scenario_name;
  std::size_t trajectories = 0;
  std::size_t completed = 0;
  std::size_t truncated = 0;
  /// Mean T over completed trajectories, normal 95% CI (center 0 when no
  /// trajectory completed).
  stats::ConfidenceInterval mean_completion_time;
  /// R̂_∞ with Wilson 95% CI.
  stats::ConfidenceInterval reliability;
  /// R̂_TM with Wilson 95% CI (all zero without a deadline).
  stats::ConfidenceInterval qos;
  /// Rolling-horizon activity summed over trajectories (0 for one-shots).
  std::size_t epochs_fired = 0;
  long long tasks_reallocated = 0;
  /// 1 = best within the scenario by mean completion time (cells where no
  /// trajectory completed sort last; ties break by policy name).
  int rank = 0;
};

class PolicyComparer {
 public:
  PolicyComparer(std::vector<ComparerScenario> scenarios,
                 std::vector<ComparerEntry> policies,
                 PolicyComparerOptions options = {});

  /// Runs the full grid. Assessments are ordered scenario-major in input
  /// order (every policy of scenario 0, then scenario 1, …), with ranks
  /// assigned within each scenario.
  [[nodiscard]] std::vector<PolicyAssessment> compare() const;

  /// Assigns per-scenario ranks in place (the rule compare() applies):
  /// smallest mean completion time first, never-completed cells last, ties
  /// by policy name. Exposed so checkpointed harnesses can re-rank after
  /// reassembling cells from a journal.
  static void assign_ranks(std::vector<PolicyAssessment>& assessments);

  /// The canonical tabular form (one row per assessment, deterministic
  /// columns only — no wall-clock noise).
  [[nodiscard]] static Table to_table(
      const std::vector<PolicyAssessment>& assessments);
  static void write_csv(const std::vector<PolicyAssessment>& assessments,
                        const std::string& path);
  static void write_json(const std::vector<PolicyAssessment>& assessments,
                         const std::string& path);

 private:
  [[nodiscard]] PolicyAssessment assess(const ComparerScenario& scenario,
                                        const ComparerEntry& entry) const;

  std::vector<ComparerScenario> scenarios_;
  std::vector<ComparerEntry> policies_;
  PolicyComparerOptions options_;
};

/// The pinned miniature comparison grid shared by `policy_comparer_bench
/// --smoke` and the golden regression test (tests/golden/
/// comparer_rankings.csv): two small heterogeneous scenarios × four policy
/// families (fair share, one-shot Algorithm 1, Markovian-prescribed, and
/// rolling Algorithm 1). One code path produces the bench output and the
/// golden pin, so they cannot drift apart.
struct ComparerDemoGrid {
  std::vector<ComparerScenario> scenarios;
  std::vector<ComparerEntry> policies;
  PolicyComparerOptions options;
};
[[nodiscard]] ComparerDemoGrid make_comparer_demo_grid();

}  // namespace agedtr::policy
