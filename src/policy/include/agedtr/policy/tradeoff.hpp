// The speed/reliability trade-off the paper's Section III-A closes with:
// "policies minimizing execution time exploit the processing capability of
// the faster server, and such requirement conflicts with the needs of
// policies aiming for maximizing service reliability … A trade-off between
// minimizing execution time and maximizing service reliability can be
// obtained by devising policies that simultaneously optimize the two
// performance metrics."
//
// This module implements that proposal for 2-server systems:
//   * the Pareto frontier of (T̄, R_∞) over the policy grid — every policy
//     not dominated by another (faster *and* more reliable);
//   * scalarized optimization: maximize R_∞ subject to T̄ <= budget, and
//     the weighted compromise min λ·T̄/T̄* − (1−λ)·R/R*.
#pragma once

#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {

/// A policy with both metrics attached.
struct TradeoffPoint {
  int l12 = 0;
  int l21 = 0;
  /// Average execution time of the *reliable-server* system (the paper's
  /// T̄ is defined there; failures are dropped for this coordinate).
  double mean_execution_time = 0.0;
  /// Service reliability with the scenario's failure laws.
  double reliability = 0.0;
};

struct TradeoffAnalysis {
  /// Every evaluated policy.
  std::vector<TradeoffPoint> points;
  /// The non-dominated subset, sorted by ascending mean execution time
  /// (and therefore descending reliability).
  std::vector<TradeoffPoint> frontier;

  /// The frontier point with maximal reliability among those whose mean
  /// execution time is within `budget_factor` of the fastest policy's —
  /// "spend at most x% more time for the most dependable execution".
  [[nodiscard]] const TradeoffPoint& best_within_time_budget(
      double budget_factor) const;

  /// Weighted compromise: minimizes λ·(T̄/T̄_min) − (1−λ)·(R/R_max) over the
  /// frontier; λ = 1 recovers the fastest policy, λ = 0 the most reliable.
  [[nodiscard]] const TradeoffPoint& weighted_compromise(double lambda) const;
};

/// Evaluates both metrics over the full (L12, L21) grid (step >= 1 thins
/// it) and extracts the Pareto frontier. The scenario must carry failure
/// laws (reliability would otherwise be identically 1 and the frontier a
/// single point).
[[nodiscard]] TradeoffAnalysis tradeoff_analysis(
    const core::DcsScenario& scenario, int step = 1,
    const core::ConvolutionOptions& options = {},
    ThreadPool* pool = nullptr);

}  // namespace agedtr::policy
