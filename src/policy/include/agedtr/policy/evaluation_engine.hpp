// EvaluationEngine: the scenario-scoped policy-evaluation layer every
// search in the stack runs on.
//
// A policy search — the 2-server exhaustive grids, Algorithm 1's (i, j)
// subproblems, trade-off frontiers — evaluates thousands of DTR policies
// against one scenario, and each evaluation needs the same lattice
// substrate: discretized laws and k-fold service sums on a fixed grid. The
// engine binds {scenario, objective, solver options} once, borrows a
// core::LatticeWorkspace (its own or a caller-shared one), and answers
//   * scalar queries  — evaluate(policy), and the PolicyEvaluator adapter
//     that keeps every pre-engine call site compiling, and
//   * batched queries — evaluate(span<policies>) -> vector<double>, fanned
//     over a ThreadPool internally, the form the searches actually want.
//
// Both the age-dependent path (the scenario's true laws through the
// ConvolutionSolver) and the Markovian path (every law replaced by an
// exponential of equal mean — the [2],[7] baseline) run through the same
// engine, so ConvolutionOptions tuning and the util::EvalBudget wall-clock
// cap apply uniformly; a budget overrun surfaces as agedtr::BudgetExceeded
// from whichever evaluation tripped it (a batch finishes its other
// elements first, then throws BatchElementBudgetExceeded carrying the
// failing index — or runs under a Supervisor via evaluate_supervised,
// where poison policies are quarantined instead of thrown).
//
// Markovian group laws: per-task inbound groups are flattened to a single
// exponential with the group's total mean (L·z̄). The flattened laws are
// memoized per (base law, group size), which both reuses the workspace
// cache across evaluations and keeps cache identities stable — allocating
// a fresh exponential per evaluation would churn addresses under an
// identity-keyed cache.
//
// The engine is a cheap shared handle: copies share one workspace, solver,
// and memo, and every method is safe to call concurrently.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/core/replication_bounds.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/supervisor.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {

/// BudgetExceeded raised by one element of a batched evaluate(). Carries
/// the index of the policy whose evaluation tripped its budget — and, when
/// the caller labelled the batch, the element's label (a service request
/// id, a grid-cell name), so the error names the *request* rather than an
/// opaque batch position. The rest of the batch still ran to completion
/// before this was thrown, so a caller that catches it has not lost the
/// other evaluations' lattice work (it is resident in the workspace) — and
/// still degrades exactly like the scalar form's BudgetExceeded if it only
/// handles the base type.
class BatchElementBudgetExceeded : public BudgetExceeded {
 public:
  BatchElementBudgetExceeded(std::size_t index, const std::string& what)
      : BatchElementBudgetExceeded(index, std::string(), what) {}

  BatchElementBudgetExceeded(std::size_t index, std::string label,
                             const std::string& what)
      : BudgetExceeded("policy " + std::to_string(index) +
                       (label.empty() ? std::string() : " [" + label + "]") +
                       ": " + what),
        policy_index(index),
        policy_label(std::move(label)) {}

  std::size_t policy_index;
  /// Caller-supplied element label (empty when the batch was unlabelled).
  std::string policy_label;
};

/// The outcome of a supervised batch: index-aligned values (quiet NaN for
/// quarantined policies) plus the supervision report naming them.
struct SupervisedBatchResult {
  std::vector<double> values;
  SupervisionReport supervision;
};

struct EvaluationEngineOptions {
  Objective objective = Objective::kMeanExecutionTime;
  /// Deadline for Objective::kQos (must be positive then).
  double deadline = 0.0;
  /// Evaluate under the Markovian (exponentialized) model instead of the
  /// scenario's true laws.
  bool markovian = false;
  /// Lattice tuning and the per-evaluation EvalBudget (options.conv.budget)
  /// — honored by the Markovian and age-dependent paths alike.
  core::ConvolutionOptions conv;
  /// Fans batched evaluate() calls over this pool (nullptr = serial).
  ThreadPool* pool = nullptr;
};

class EvaluationEngine {
 public:
  /// Validates the scenario and freezes the model (exponentialized when
  /// options.markovian). `workspace` is the shared lattice substrate;
  /// nullptr gives the engine a private one.
  EvaluationEngine(core::DcsScenario scenario, EvaluationEngineOptions options,
                   std::shared_ptr<core::LatticeWorkspace> workspace = nullptr);

  /// The objective value of one policy.
  [[nodiscard]] double evaluate(const core::DtrPolicy& policy) const;

  /// The objective values of a batch, index-aligned with the input. Runs
  /// through options.pool when set; results are identical to calling the
  /// scalar form per policy either way. A failing element does not poison
  /// the rest of the batch: every other policy is still evaluated, and only
  /// then is the smallest failing index's error rethrown — as
  /// BatchElementBudgetExceeded when it was a budget overrun, verbatim
  /// otherwise. `labels`, when non-empty, must be index-aligned with
  /// `policies`; a failing element's error then carries its label (e.g. the
  /// service request id it came from) in addition to the batch index.
  [[nodiscard]] std::vector<double> evaluate(
      std::span<const core::DtrPolicy> policies,
      std::span<const std::string> labels = {}) const;

  /// The batch under full supervision (retry with backoff, watchdog
  /// deadlines, quarantine) instead of fail-on-first-error: policies whose
  /// evaluations keep failing come back as NaN entries listed in the
  /// supervision report, and nothing throws. When
  /// `options.deadline_seconds` is 0 a deadline is derived from the
  /// engine's conv.budget (supervisor_for_budget); attempts run on the
  /// supervisor's pool (the engine's options.pool is not consulted here).
  /// `labels`, when non-empty, must be index-aligned with `policies`: a
  /// quarantined element's error is then a BatchElementBudgetExceeded-style
  /// message naming the element's label (its originating request id), not
  /// just the batch index.
  [[nodiscard]] SupervisedBatchResult evaluate_supervised(
      std::span<const core::DtrPolicy> policies,
      const SupervisorOptions& options = {},
      std::span<const std::string> labels = {}) const;

  /// Analytic min-of-r completion-time bounds for `policy` replicated by
  /// `plan` on the engine's (frozen) scenario, under worst-case slowdowns of
  /// factor `slowdown_factor` (1 = no slowdowns). The engine's deadline
  /// feeds the QoS bracket and its conv.budget caps the wall clock — the
  /// same budget contract every other evaluation path honors. Requires a
  /// failure-free scenario (the bounds' regenerative argument needs it).
  [[nodiscard]] core::ReplicationBounds replication_bounds(
      const core::DtrPolicy& policy, const core::ReplicationPlan& plan,
      double slowdown_factor = 1.0) const;

  /// Compatibility adapter for call sites written against PolicyEvaluator.
  /// The closure shares the engine's state and stays valid after this
  /// handle is destroyed.
  [[nodiscard]] PolicyEvaluator as_policy_evaluator() const;

  /// The model actually evaluated (exponentialized under markovian).
  [[nodiscard]] const core::DcsScenario& scenario() const;
  [[nodiscard]] const EvaluationEngineOptions& options() const;
  [[nodiscard]] const std::shared_ptr<core::LatticeWorkspace>& workspace()
      const;
  [[nodiscard]] core::WorkspaceStats workspace_stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace agedtr::policy
