// The Table II benchmark: "the initial allocation of tasks is actually the
// optimal allocation ... obtained by performing a MC-based exhaustive search
// over all the DTR policies". For M = 200 tasks on five servers the
// allocation simplex is far too large for literal exhaustion, so — like any
// practical realization of that search — this runs a multi-start
// coarse-to-fine local search over task allocations (no reallocation, no
// transfers: the tasks are assumed already in place), each candidate scored
// by Monte Carlo or by the analytic solver.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/supervisor.hpp"

namespace agedtr::policy {

struct AllocationSearchOptions {
  Objective objective = Objective::kMeanExecutionTime;
  double deadline = 0.0;
  /// Replications per candidate when scoring by Monte Carlo.
  std::size_t replications = 2'000;
  std::uint64_t seed = 0xa110c;
  /// Score analytically (the evaluation engine over the ConvolutionSolver)
  /// instead of by MC — faster and noise-free; MC scoring reproduces the
  /// paper's procedure literally.
  bool analytic = true;
  /// Lattice tuning (and conv.budget caps) for analytic scoring.
  core::ConvolutionOptions conv;
  /// Lattice workspace shared by every analytically scored candidate —
  /// the grid is allocation-invariant (the auto horizon depends only on
  /// totals), so all candidates hit the same cache entries. nullptr → the
  /// search creates its own.
  std::shared_ptr<core::LatticeWorkspace> workspace;
  /// Coarse pass step as a fraction of M (then halved until 1).
  double coarse_step_fraction = 0.10;
  int max_rounds = 64;
  ThreadPool* pool = nullptr;
  /// Scores every candidate through a util::Supervisor: a candidate whose
  /// evaluation keeps failing is quarantined and skipped (treated as
  /// not-improving, listed in AllocationSearchResult::supervision) instead
  /// of aborting the search. Disengaged (the default) keeps the plain
  /// fail-fast path, bit-identical to before.
  std::optional<SupervisorOptions> supervise;
  /// Replication factors tried in a Monte-Carlo post-pass on the best
  /// allocation (empty = no post-pass, the historical behaviour). Each
  /// factor r scores the winning allocation under
  /// make_uniform_replication(·, identity, r) with cancel-on-first-
  /// completion; the best factor lands in
  /// AllocationSearchResult::replication_factor. Always scored by MC —
  /// replication under faults has no analytic engine path — using
  /// `replications` runs with common random numbers across factors.
  std::vector<int> replication_factors;
  /// Faults injected while scoring the replication post-pass (slowdowns are
  /// the interesting axis: replication pays off only once stragglers bite).
  /// Null plan = fault-free scoring.
  sim::FaultPlan replication_faults;
};

struct AllocationSearchResult {
  /// Optimal m_j (sums to the scenario's total task count).
  std::vector<int> allocation;
  double value = 0.0;
  int evaluations = 0;
  /// Aggregated supervision outcome when AllocationSearchOptions::supervise
  /// is engaged; quarantine indices are candidate-evaluation ordinals (the
  /// order score calls were issued in, starting at the seed allocation).
  SupervisionReport supervision;
  /// Best factor of the replication post-pass (1 when replication_factors
  /// is empty: no replication considered). Ties break toward the smaller
  /// factor — replicate only when it strictly helps.
  int replication_factor = 1;
  /// The post-pass score of `allocation` at replication_factor (NaN when
  /// the post-pass did not run).
  double replicated_value = 0.0;
};

/// Searches for the allocation of the scenario's total workload over its
/// servers that optimizes the objective assuming the tasks start in place.
[[nodiscard]] AllocationSearchResult optimal_allocation(
    const core::DcsScenario& scenario, const AllocationSearchOptions& options);

/// Scores a fixed allocation (no transfers) under the scenario's laws.
[[nodiscard]] double score_allocation(const core::DcsScenario& scenario,
                                      const std::vector<int>& allocation,
                                      const AllocationSearchOptions& options);

}  // namespace agedtr::policy
