// The three performance metrics DTR policies optimize (Section II-A), plus
// evaluator factories that bind a scenario to a solver:
//   - the age-dependent (non-Markovian) ConvolutionSolver, or
//   - the Markovian baseline (the scenario's laws replaced by exponentials
//     of equal mean, solved with the DP/uniformization machinery of [2],[7]).
// The second is what the paper calls "policies devised under Markovian
// assumptions" — devise with it, then evaluate under the true model to
// reproduce the 10–40 % degradation of Table I.
#pragma once

#include <functional>
#include <string>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/scenario.hpp"

namespace agedtr::policy {

enum class Objective {
  kMeanExecutionTime,  // minimize T̄(L; S₀)           (problem (3))
  kQos,                // maximize R_TM(L; S₀)         (problem (4))
  kReliability,        // maximize R_∞(L; S₀)
};

[[nodiscard]] std::string objective_name(Objective objective);

/// True for objectives that are maximized.
[[nodiscard]] bool is_maximization(Objective objective);

/// A policy evaluator: maps a DTR policy to the metric value.
using PolicyEvaluator = std::function<double(const core::DtrPolicy&)>;

/// Evaluator backed by the age-dependent ConvolutionSolver. The solver is
/// shared (and its lattice caches reused) across calls; it is thread-safe.
/// A thin adapter over policy::EvaluationEngine, which call sites wanting
/// batched evaluation or a shared LatticeWorkspace should use directly.
[[nodiscard]] PolicyEvaluator make_age_dependent_evaluator(
    core::DcsScenario scenario, Objective objective, double deadline = 0.0,
    core::ConvolutionOptions options = {});

/// Evaluator backed by the Markovian model: every law in the scenario is
/// replaced by an exponential of equal mean, then solved exactly. Accepts
/// the same lattice tuning and per-evaluation EvalBudget
/// (options.budget) as the age-dependent factory, so both paths degrade
/// identically under wall-clock caps.
[[nodiscard]] PolicyEvaluator make_markovian_evaluator(
    core::DcsScenario scenario, Objective objective, double deadline = 0.0,
    core::ConvolutionOptions options = {});

/// The scenario with every service/failure/transfer law replaced by an
/// exponential with the same mean — the Markovian approximation of a
/// non-Markovian DCS.
[[nodiscard]] core::DcsScenario exponentialized(
    const core::DcsScenario& scenario);

}  // namespace agedtr::policy
