// Algorithm 1 (Section II-E): the scalable multi-server DTR heuristic.
//
// Each sender i starts from the Eq. (5) fair-share pledge, forms its
// candidate-recipient set U_i = {j : L⁰_ij > 0}, and iteratively refines
// each pledge L_ij by solving the exact *2-server* problem between (its own
// remaining queue after all other pledges) and (its estimate of j's queue),
// until the pledges stop changing or K iterations elapse. Every server
// solves at most n−1 two-server problems per iteration, so the cost grows
// linearly in the number of servers — the paper's scalability argument.
//
// The 2-server subproblem fixes L₂₁ = 0: sender i controls only its own
// outflow; whatever j sends is j's decision in j's own instance of the
// algorithm.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agedtr/core/replication.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/initial_policy.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::core {
class LatticeWorkspace;
}  // namespace agedtr::core

namespace agedtr::policy {

class EvaluationEngine;

struct Algorithm1Options {
  /// K: iteration cap.
  int max_iterations = 8;
  /// Λ criterion for the Eq. (5) initial policy.
  ReallocationCriterion criterion = ReallocationCriterion::kSpeed;
  /// Metric the 2-server subproblems optimize.
  Objective objective = Objective::kMeanExecutionTime;
  /// Deadline for Objective::kQos.
  double deadline = 0.0;
  /// Devise under the Markovian (exponentialized) model instead of the true
  /// laws — the comparison column of Table II.
  bool markovian = false;
  /// Lattice options for the subproblem evaluators (both models: the
  /// Markovian path discretizes the exponentialized laws on the same grid,
  /// and honours the same conv.budget caps).
  core::ConvolutionOptions conv;
  /// Cache substrate for every 2-server subproblem engine of a devise()
  /// call. nullptr → each devise() creates its own; pass one to keep
  /// lattice work warm across devise() calls (the policy-search bench's
  /// warm mode).
  std::shared_ptr<core::LatticeWorkspace> workspace;
  /// false reverts to a fresh private workspace per 2-server solve — the
  /// pre-engine behaviour, kept on the same fixed per-pair grids so the
  /// devised policies are identical and only the lattice work is redone.
  /// The policy-search bench's baseline mode.
  bool share_workspace = true;
  /// Parallelizes the subproblem policy grids (nullptr = serial).
  ThreadPool* pool = nullptr;

  /// Crash-consistent journal for this devise() (empty = off). Every solved
  /// (i, j, m1) subproblem, every completed iteration's pledge matrix, and
  /// the final result are journaled to this path as they complete; a run
  /// killed partway and restarted with the same inputs replays the
  /// journaled units instead of re-solving them and produces a bit-identical
  /// result. The journal's tag fingerprints the scenario, the estimates and
  /// every policy-affecting option, so a stale file from a different
  /// configuration is discarded, never replayed.
  std::string checkpoint_path;
  /// false ignores an existing journal (the run starts fresh and overwrites
  /// it on the first completed unit).
  bool checkpoint_resume = true;
  /// Kill-and-resume test hook: after this many journal records, the next
  /// record throws CheckpointError mid-devise (0 = off). See
  /// Checkpoint::crash_after_records_for_testing.
  std::size_t checkpoint_crash_after_units = 0;

  /// Largest uniform replication factor considered after the policy is
  /// devised (1 = replication off, the historical behaviour). When > 1,
  /// devise() scores make_uniform_replication(scenario, policy, r) for
  /// r = 1..max_replication by the analytic mean_upper bound — computed on
  /// the reliable model (failure laws dropped, as the T̄ subproblems do) —
  /// and picks the factor with the smallest bound, ties to the smaller r.
  /// The devised *policy* is unchanged; only the plan rides along.
  int max_replication = 1;
  /// Worst-case slowdown factor fed to the bounds while selecting the
  /// replication factor (in (0, 1]; 1 = no slowdowns). Smaller values model
  /// heavier straggling and push the selection toward more replication.
  double slowdown_factor = 1.0;
};

struct Algorithm1Result {
  core::DtrPolicy policy;
  int iterations = 0;
  bool converged = false;
  /// Units answered from a resumed checkpoint journal (0 when
  /// checkpointing is off or the journal was empty/discarded).
  std::size_t journal_hits = 0;
  /// Uniform replication factor selected by the analytic bounds (1 when
  /// options.max_replication == 1 or the search degenerated).
  int replication_factor = 1;
  /// The selected plan, make_uniform_replication(scenario, policy,
  /// replication_factor) — identity when replication_factor == 1.
  core::ReplicationPlan replication;
};

class Algorithm1 {
 public:
  explicit Algorithm1(Algorithm1Options options = {});

  /// Devises the DTR policy for the scenario given each server's
  /// queue-length estimates.
  [[nodiscard]] Algorithm1Result devise(const core::DcsScenario& scenario,
                                        const QueueEstimates& estimates) const;

  /// Convenience: perfect queue information.
  [[nodiscard]] Algorithm1Result devise(
      const core::DcsScenario& scenario) const {
    return devise(scenario, perfect_estimates(scenario));
  }

 private:
  /// Builds the engine for the (3)/(4) subproblem between sender i (m1 of
  /// its tasks remaining) and recipient j (estimated m2 tasks). The lattice
  /// horizon is frozen to an m1-invariant per-pair value so every engine of
  /// the same (i, j) shares one grid — and hence one set of workspace
  /// entries.
  [[nodiscard]] EvaluationEngine make_pair_engine(
      const core::DcsScenario& scenario, std::size_t i, std::size_t j,
      int m1, int m2,
      std::shared_ptr<core::LatticeWorkspace> workspace) const;

  /// Sweeps L12 ∈ [0, m1] at L21 = 0 through the engine; returns the
  /// optimal L_ij.
  [[nodiscard]] static int solve_pair(const EvaluationEngine& engine, int m1,
                                      int m2);

  Algorithm1Options options_;
};

/// The checkpoint tag devise() journals under: a fingerprint of the
/// scenario (sizes, law families and means), the estimates, and every
/// option that influences the devised policy. Exposed so operators and
/// tests can open an Algorithm 1 journal directly.
[[nodiscard]] std::string algorithm1_checkpoint_tag(
    const core::DcsScenario& scenario, const QueueEstimates& estimates,
    const Algorithm1Options& options);

/// Clamps each sender's pledges to its available queue. Truncation is
/// deterministic by construction: pledges are granted in descending size
/// (ties broken toward the smaller recipient index), so the result is a
/// property of the pledge values alone, never of the order recipients were
/// produced in. Exposed for tests; devise() applies it as its final step.
[[nodiscard]] core::DtrPolicy clamp_pledges(
    const std::vector<std::vector<int>>& pledges,
    const std::vector<int>& queues);

}  // namespace agedtr::policy
