// Algorithm 1 (Section II-E): the scalable multi-server DTR heuristic.
//
// Each sender i starts from the Eq. (5) fair-share pledge, forms its
// candidate-recipient set U_i = {j : L⁰_ij > 0}, and iteratively refines
// each pledge L_ij by solving the exact *2-server* problem between (its own
// remaining queue after all other pledges) and (its estimate of j's queue),
// until the pledges stop changing or K iterations elapse. Every server
// solves at most n−1 two-server problems per iteration, so the cost grows
// linearly in the number of servers — the paper's scalability argument.
//
// The 2-server subproblem fixes L₂₁ = 0: sender i controls only its own
// outflow; whatever j sends is j's decision in j's own instance of the
// algorithm.
#pragma once

#include "agedtr/core/scenario.hpp"
#include "agedtr/policy/initial_policy.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::policy {

struct Algorithm1Options {
  /// K: iteration cap.
  int max_iterations = 8;
  /// Λ criterion for the Eq. (5) initial policy.
  ReallocationCriterion criterion = ReallocationCriterion::kSpeed;
  /// Metric the 2-server subproblems optimize.
  Objective objective = Objective::kMeanExecutionTime;
  /// Deadline for Objective::kQos.
  double deadline = 0.0;
  /// Devise under the Markovian (exponentialized) model instead of the true
  /// laws — the comparison column of Table II.
  bool markovian = false;
  /// Lattice options for the age-dependent subproblem evaluators.
  core::ConvolutionOptions conv;
  /// Parallelizes the subproblem policy grids (nullptr = serial).
  ThreadPool* pool = nullptr;
};

struct Algorithm1Result {
  core::DtrPolicy policy;
  int iterations = 0;
  bool converged = false;
};

class Algorithm1 {
 public:
  explicit Algorithm1(Algorithm1Options options = {});

  /// Devises the DTR policy for the scenario given each server's
  /// queue-length estimates.
  [[nodiscard]] Algorithm1Result devise(const core::DcsScenario& scenario,
                                        const QueueEstimates& estimates) const;

  /// Convenience: perfect queue information.
  [[nodiscard]] Algorithm1Result devise(
      const core::DcsScenario& scenario) const {
    return devise(scenario, perfect_estimates(scenario));
  }

 private:
  /// Solves the (3)/(4) subproblem for sender resources m1 at server i and
  /// estimated m2 at server j; returns the optimal L_ij.
  [[nodiscard]] int solve_pair(const core::DcsScenario& scenario,
                               std::size_t i, std::size_t j, int m1,
                               int m2) const;

  Algorithm1Options options_;
};

}  // namespace agedtr::policy
