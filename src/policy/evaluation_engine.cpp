#include "agedtr/policy/evaluation_engine.hpp"

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"
#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::policy {

namespace {

metrics::Counter& evaluations_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "engine.evaluations_total", "policy evaluations served by the engine");
  return c;
}

metrics::Histogram& batch_size_histogram() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "engine.batch_size", metrics::exponential_buckets(1.0, 2.0, 14),
      "policies per batched evaluate() call");
  return h;
}

metrics::Histogram& batch_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "engine.batch_seconds", metrics::exponential_buckets(1e-4, 4.0, 12),
      "wall time of one batched evaluate() call");
  return h;
}

}  // namespace

struct EvaluationEngine::Impl {
  std::shared_ptr<const core::DcsScenario> scenario;
  EvaluationEngineOptions options;
  std::shared_ptr<core::LatticeWorkspace> workspace;
  std::shared_ptr<const core::ConvolutionSolver> solver;

  // Markovian group-transfer memo: (per-task base law, group size) -> the
  // flattened exponential. Stable identities keep the workspace's
  // identity-keyed cache effective across evaluations. The address key is
  // lookup-only — the memo is never iterated, so its address-dependent
  // ordering can never reach an output — and the cached DistPtr pins the
  // base law alive, so a key cannot alias a recycled address.
  mutable Mutex law_mutex;
  // agedtr-lint: allow(nondet-order)
  mutable std::map<std::pair<const dist::Distribution*, int>, dist::DistPtr>
      group_laws AGEDTR_GUARDED_BY(law_mutex);

  [[nodiscard]] dist::DistPtr flattened_group_law(const dist::DistPtr& base,
                                                  int tasks) const {
    MutexLock lock(&law_mutex);
    auto& law = group_laws[{base.get(), tasks}];
    if (law == nullptr) {
      law = dist::Exponential::with_mean(base->mean() * tasks);
    }
    return law;
  }

  [[nodiscard]] std::vector<core::ServerWorkload> workloads_for(
      const core::DtrPolicy& policy) const {
    std::vector<core::ServerWorkload> workloads =
        core::apply_policy(*scenario, policy);
    if (options.markovian) {
      // The Markovian model of [2],[7] has no per-task sums: a group's
      // transfer is one exponential with the group's true mean (L·z̄).
      for (core::ServerWorkload& w : workloads) {
        for (core::ServerWorkload::Inbound& g : w.inbound) {
          if (g.per_task) {
            g.transfer = flattened_group_law(g.transfer, g.tasks);
            g.per_task = false;
          }
        }
      }
    }
    return workloads;
  }

  [[nodiscard]] double evaluate(const core::DtrPolicy& policy) const {
    evaluations_counter().add();
    const std::vector<core::ServerWorkload> workloads = workloads_for(policy);
    switch (options.objective) {
      case Objective::kMeanExecutionTime:
        return solver->mean_execution_time(workloads);
      case Objective::kQos:
        return solver->qos(workloads, options.deadline);
      case Objective::kReliability:
        return solver->reliability(workloads);
    }
    throw LogicError("EvaluationEngine: unknown objective");
  }
};

EvaluationEngine::EvaluationEngine(
    core::DcsScenario scenario, EvaluationEngineOptions options,
    std::shared_ptr<core::LatticeWorkspace> workspace)
    : impl_(std::make_shared<Impl>()) {
  scenario.validate();
  if (options.objective == Objective::kQos) {
    AGEDTR_REQUIRE(options.deadline > 0.0,
                   "EvaluationEngine: QoS needs a positive deadline");
  }
  impl_->options = std::move(options);
  impl_->scenario = std::make_shared<const core::DcsScenario>(
      impl_->options.markovian ? exponentialized(scenario)
                               : std::move(scenario));
  impl_->workspace = workspace != nullptr
                         ? std::move(workspace)
                         : std::make_shared<core::LatticeWorkspace>();
  impl_->solver = std::make_shared<const core::ConvolutionSolver>(
      impl_->options.conv, impl_->workspace);
}

double EvaluationEngine::evaluate(const core::DtrPolicy& policy) const {
  return impl_->evaluate(policy);
}

std::vector<double> EvaluationEngine::evaluate(
    std::span<const core::DtrPolicy> policies,
    std::span<const std::string> labels) const {
  AGEDTR_REQUIRE(labels.empty() || labels.size() == policies.size(),
                 "EvaluationEngine::evaluate: labels must be empty or "
                 "index-aligned with the policy batch");
  metrics::TraceSpan span("engine.evaluate_batch", "engine", &batch_seconds());
  batch_size_histogram().observe(static_cast<double>(policies.size()));
  std::vector<double> values(policies.size(), 0.0);
  // Per-element error capture: one failing policy must not poison the
  // rest of the batch, and the rethrown error must say which index failed.
  std::vector<std::exception_ptr> errors(policies.size());
  const Impl& impl = *impl_;
  const auto body = [&](std::size_t i) {
    try {
      values[i] = impl.evaluate(policies[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };
  if (impl.options.pool != nullptr) {
    impl.options.pool->parallel_for(0, policies.size(), body);
  } else {
    for (std::size_t i = 0; i < policies.size(); ++i) body(i);
  }
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (!errors[i]) continue;
    try {
      std::rethrow_exception(errors[i]);
    } catch (const BudgetExceeded& e) {
      throw BatchElementBudgetExceeded(
          i, labels.empty() ? std::string() : labels[i], e.what());
    }
  }
  return values;
}

SupervisedBatchResult EvaluationEngine::evaluate_supervised(
    std::span<const core::DtrPolicy> policies, const SupervisorOptions& options,
    std::span<const std::string> labels) const {
  AGEDTR_REQUIRE(labels.empty() || labels.size() == policies.size(),
                 "EvaluationEngine::evaluate_supervised: labels must be empty "
                 "or index-aligned with the policy batch");
  SupervisorOptions supervise = options;
  if (supervise.deadline_seconds <= 0.0) {
    supervise.deadline_seconds =
        supervisor_for_budget(impl_->options.conv.budget).deadline_seconds;
  }
  metrics::TraceSpan span("engine.evaluate_supervised", "engine",
                          &batch_seconds());
  batch_size_histogram().observe(static_cast<double>(policies.size()));
  SupervisedBatchResult result;
  result.values.assign(policies.size(),
                       std::numeric_limits<double>::quiet_NaN());
  const Impl& impl = *impl_;
  result.supervision = Supervisor(supervise).run(
      policies.size(), [&](std::size_t i, const CancelToken& token) {
        token.check("EvaluationEngine::evaluate_supervised");
        try {
          result.values[i] = impl.evaluate(policies[i]);
        } catch (const BudgetExceeded& e) {
          // Re-wrap so the quarantine entry (and any caller catching the
          // supervised batch's errors) names the element — by its label
          // (the originating request id) when the batch is labelled, not
          // just its batch position.
          throw BatchElementBudgetExceeded(
              i, labels.empty() ? std::string() : labels[i], e.what());
        }
      });
  return result;
}

core::ReplicationBounds EvaluationEngine::replication_bounds(
    const core::DtrPolicy& policy, const core::ReplicationPlan& plan,
    double slowdown_factor) const {
  evaluations_counter().add();
  core::ReplicationBoundsOptions bounds_options;
  bounds_options.deadline = impl_->options.deadline;
  bounds_options.slowdown_factor = slowdown_factor;
  bounds_options.budget = impl_->options.conv.budget;
  return core::replication_completion_bounds(*impl_->scenario, policy, plan,
                                             bounds_options);
}

PolicyEvaluator EvaluationEngine::as_policy_evaluator() const {
  return [impl = impl_](const core::DtrPolicy& policy) {
    return impl->evaluate(policy);
  };
}

const core::DcsScenario& EvaluationEngine::scenario() const {
  return *impl_->scenario;
}

const EvaluationEngineOptions& EvaluationEngine::options() const {
  return impl_->options;
}

const std::shared_ptr<core::LatticeWorkspace>& EvaluationEngine::workspace()
    const {
  return impl_->workspace;
}

core::WorkspaceStats EvaluationEngine::workspace_stats() const {
  return impl_->workspace->stats();
}

}  // namespace agedtr::policy
