#include "agedtr/policy/initial_policy.hpp"

#include <cmath>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::policy {

QueueEstimates perfect_estimates(const core::DcsScenario& scenario) {
  const std::size_t n = scenario.size();
  QueueEstimates estimates(n, std::vector<int>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      estimates[i][j] = scenario.servers[j].initial_tasks;
    }
  }
  return estimates;
}

std::vector<double> reallocation_weights(const core::DcsScenario& scenario,
                                         ReallocationCriterion criterion) {
  std::vector<double> weights;
  weights.reserve(scenario.size());
  for (const core::ServerSpec& s : scenario.servers) {
    AGEDTR_REQUIRE(s.service != nullptr,
                   "reallocation_weights: missing service law");
    const double speed = 1.0 / s.service->mean();
    switch (criterion) {
      case ReallocationCriterion::kSpeed:
        weights.push_back(speed);
        break;
      case ReallocationCriterion::kReliability: {
        // Expected tasks served before failure; reliable servers are capped
        // at a large finite weight so ratios stay meaningful.
        const double mttf = s.failure ? s.failure->mean() : 1e9;
        weights.push_back(mttf * speed);
        break;
      }
    }
  }
  return weights;
}

core::DtrPolicy initial_policy(const core::DcsScenario& scenario,
                               const QueueEstimates& estimates,
                               ReallocationCriterion criterion) {
  scenario.validate();
  const std::size_t n = scenario.size();
  AGEDTR_REQUIRE(estimates.size() == n,
                 "initial_policy: estimate matrix has wrong row count");
  const std::vector<double> weights =
      reallocation_weights(scenario, criterion);
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  AGEDTR_ASSERT(weight_sum > 0.0);

  core::DtrPolicy policy(n);
  for (std::size_t i = 0; i < n; ++i) {
    AGEDTR_REQUIRE(estimates[i].size() == n,
                   "initial_policy: estimate matrix has wrong column count");
    const int m_i = scenario.servers[i].initial_tasks;
    AGEDTR_REQUIRE(estimates[i][i] == m_i,
                   "initial_policy: a server must know its own queue");
    // M̂_i: the system load as estimated by server i.
    double estimated_load = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      AGEDTR_REQUIRE(estimates[i][j] >= 0,
                     "initial_policy: negative queue estimate");
      estimated_load += estimates[i][j];
    }
    const auto target = [&](std::size_t j) {
      return estimated_load * weights[j] / weight_sum;
    };
    const double excess = static_cast<double>(m_i) - target(i);
    if (excess <= 0.0) continue;
    double deficit_sum = 0.0;
    std::vector<double> deficit(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      deficit[j] = std::max(target(j) - static_cast<double>(estimates[i][j]),
                            0.0);
      deficit_sum += deficit[j];
    }
    if (deficit_sum <= 0.0) continue;
    int pledged = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || deficit[j] <= 0.0) continue;
      const int l = static_cast<int>(
          std::floor(excess * deficit[j] / deficit_sum));
      const int bounded = std::min(l, m_i - pledged);
      if (bounded > 0) {
        policy.set(i, j, bounded);
        pledged += bounded;
      }
    }
  }
  return policy;
}

}  // namespace agedtr::policy
