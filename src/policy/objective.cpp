#include "agedtr/policy/objective.hpp"

#include <string>
#include <utility>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {

std::string objective_name(Objective objective) {
  switch (objective) {
    case Objective::kMeanExecutionTime:
      return "mean_execution_time";
    case Objective::kQos:
      return "qos";
    case Objective::kReliability:
      return "reliability";
  }
  throw LogicError("objective_name: unknown objective");
}

bool is_maximization(Objective objective) {
  return objective != Objective::kMeanExecutionTime;
}

PolicyEvaluator make_age_dependent_evaluator(core::DcsScenario scenario,
                                             Objective objective,
                                             double deadline,
                                             core::ConvolutionOptions options) {
  AGEDTR_REQUIRE(objective != Objective::kQos || deadline > 0.0,
                 "make_age_dependent_evaluator: QoS needs a deadline");
  EvaluationEngineOptions engine_options;
  engine_options.objective = objective;
  engine_options.deadline = deadline;
  engine_options.conv = options;
  return EvaluationEngine(std::move(scenario), std::move(engine_options))
      .as_policy_evaluator();
}

core::DcsScenario exponentialized(const core::DcsScenario& scenario) {
  scenario.validate();
  core::DcsScenario out = scenario;
  const auto exponential_like = [](const dist::DistPtr& law) -> dist::DistPtr {
    if (!law || law->is_memoryless()) return law;
    return dist::Exponential::with_mean(law->mean());
  };
  for (core::ServerSpec& s : out.servers) {
    s.service = exponential_like(s.service);
    s.failure = exponential_like(s.failure);
  }
  for (auto& row : out.transfer) {
    for (auto& law : row) law = exponential_like(law);
  }
  for (auto& row : out.fn_transfer) {
    for (auto& law : row) law = exponential_like(law);
  }
  return out;
}

PolicyEvaluator make_markovian_evaluator(core::DcsScenario scenario,
                                         Objective objective, double deadline,
                                         core::ConvolutionOptions options) {
  AGEDTR_REQUIRE(objective != Objective::kQos || deadline > 0.0,
                 "make_markovian_evaluator: QoS needs a deadline");
  // The Markovian model of [2],[7]: every law exponential, and each group's
  // transfer exponential with the group's true mean (L·z̄ under per-task
  // scaling). Metrics are evaluated with the exact ConvolutionSolver, which
  // on an all-exponential configuration coincides with the DP/uniformization
  // machinery (validated in tests) while scaling to large policy sweeps.
  EvaluationEngineOptions engine_options;
  engine_options.objective = objective;
  engine_options.deadline = deadline;
  engine_options.markovian = true;
  engine_options.conv = options;
  return EvaluationEngine(std::move(scenario), std::move(engine_options))
      .as_policy_evaluator();
}

}  // namespace agedtr::policy
