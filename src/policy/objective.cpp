#include "agedtr/policy/objective.hpp"

#include <memory>

#include "agedtr/core/ctmc.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {

std::string objective_name(Objective objective) {
  switch (objective) {
    case Objective::kMeanExecutionTime:
      return "mean_execution_time";
    case Objective::kQos:
      return "qos";
    case Objective::kReliability:
      return "reliability";
  }
  throw LogicError("objective_name: unknown objective");
}

bool is_maximization(Objective objective) {
  return objective != Objective::kMeanExecutionTime;
}

PolicyEvaluator make_age_dependent_evaluator(core::DcsScenario scenario,
                                             Objective objective,
                                             double deadline,
                                             core::ConvolutionOptions options) {
  scenario.validate();
  if (objective == Objective::kQos) {
    AGEDTR_REQUIRE(deadline > 0.0,
                   "make_age_dependent_evaluator: QoS needs a deadline");
  }
  auto solver = std::make_shared<core::ConvolutionSolver>(options);
  auto shared_scenario =
      std::make_shared<const core::DcsScenario>(std::move(scenario));
  return [solver, shared_scenario, objective,
          deadline](const core::DtrPolicy& policy) {
    const auto workloads = core::apply_policy(*shared_scenario, policy);
    switch (objective) {
      case Objective::kMeanExecutionTime:
        return solver->mean_execution_time(workloads);
      case Objective::kQos:
        return solver->qos(workloads, deadline);
      case Objective::kReliability:
        return solver->reliability(workloads);
    }
    throw LogicError("age-dependent evaluator: unknown objective");
  };
}

core::DcsScenario exponentialized(const core::DcsScenario& scenario) {
  scenario.validate();
  core::DcsScenario out = scenario;
  const auto exponential_like = [](const dist::DistPtr& law) -> dist::DistPtr {
    if (!law || law->is_memoryless()) return law;
    return dist::Exponential::with_mean(law->mean());
  };
  for (core::ServerSpec& s : out.servers) {
    s.service = exponential_like(s.service);
    s.failure = exponential_like(s.failure);
  }
  for (auto& row : out.transfer) {
    for (auto& law : row) law = exponential_like(law);
  }
  for (auto& row : out.fn_transfer) {
    for (auto& law : row) law = exponential_like(law);
  }
  return out;
}

PolicyEvaluator make_markovian_evaluator(core::DcsScenario scenario,
                                         Objective objective,
                                         double deadline) {
  if (objective == Objective::kQos) {
    AGEDTR_REQUIRE(deadline > 0.0,
                   "make_markovian_evaluator: QoS needs a deadline");
  }
  // The Markovian model of [2],[7]: every law exponential, and each group's
  // transfer exponential with the group's true mean (L·z̄ under per-task
  // scaling). Metrics are evaluated with the exact ConvolutionSolver, which
  // on an all-exponential configuration coincides with the DP/uniformization
  // machinery (validated in tests) while scaling to large policy sweeps.
  auto markovian_scenario =
      std::make_shared<const core::DcsScenario>(exponentialized(scenario));
  auto solver = std::make_shared<core::ConvolutionSolver>();
  return [markovian_scenario, solver, objective,
          deadline](const core::DtrPolicy& policy) {
    auto workloads = core::apply_policy(*markovian_scenario, policy);
    for (core::ServerWorkload& w : workloads) {
      for (core::ServerWorkload::Inbound& g : w.inbound) {
        if (g.per_task) {
          g.transfer = dist::Exponential::with_mean(g.transfer->mean() *
                                                    g.tasks);
          g.per_task = false;
        }
      }
    }
    switch (objective) {
      case Objective::kMeanExecutionTime:
        return solver->mean_execution_time(workloads);
      case Objective::kQos:
        return solver->qos(workloads, deadline);
      case Objective::kReliability:
        return solver->reliability(workloads);
    }
    throw LogicError("markovian evaluator: unknown objective");
  };
}

}  // namespace agedtr::policy
