#include "agedtr/policy/policy_comparer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/core/state.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {
namespace {

/// Everything one trajectory contributes, stored in its pre-allocated slot
/// so aggregation order — and hence every floating-point sum — is
/// independent of the thread schedule.
struct TrajectoryOutcome {
  bool completed = false;
  bool truncated = false;
  double completion_time = 0.0;
  std::size_t epochs_fired = 0;
  int tasks_reallocated = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_number(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

}  // namespace

PolicyComparer::PolicyComparer(std::vector<ComparerScenario> scenarios,
                               std::vector<ComparerEntry> policies,
                               PolicyComparerOptions options)
    : scenarios_(std::move(scenarios)),
      policies_(std::move(policies)),
      options_(std::move(options)) {
  AGEDTR_REQUIRE(!scenarios_.empty(), "PolicyComparer: no scenarios");
  AGEDTR_REQUIRE(!policies_.empty(), "PolicyComparer: no policies");
  AGEDTR_REQUIRE(options_.trajectories > 0,
                 "PolicyComparer: trajectories must be positive");
  for (const ComparerEntry& entry : policies_) {
    AGEDTR_REQUIRE(entry.policy != nullptr,
                   "PolicyComparer: null policy entry '" + entry.name + "'");
  }
}

PolicyAssessment PolicyComparer::assess(const ComparerScenario& scenario,
                                        const ComparerEntry& entry) const {
  const std::size_t n = scenario.scenario.size();

  // The deterministic t = 0 decision, once per cell: at age 0 the re-seed
  // round trip is exact, so this is precisely the one-shot decision the
  // paper's problem statement asks for.
  const core::SystemState fresh = core::SystemState::initial(
      scenario.scenario, core::DtrPolicy(n));
  const core::DtrPolicy initial =
      decide_from_state(*entry.policy, scenario.scenario, fresh,
                        options_.engine);

  sim::RollingOptions rolling;
  rolling.epochs = entry.policy->decision_epochs();
  bool rolls = false;
  for (const double epoch : rolling.epochs) rolls |= epoch > 0.0;
  if (rolls) {
    rolling.redecide = make_reallocation_callback(
        entry.policy, scenario.scenario, options_.engine);
  }

  const sim::DcsSimulator simulator(scenario.scenario, options_.simulator);
  std::vector<TrajectoryOutcome> outcomes(options_.trajectories);
  const auto one_trajectory = [&](std::size_t r) {
    // CRN: stream r depends on (seed, r) only — not on the policy, the
    // scenario, or which thread runs it — so every cell replays the same
    // randomness and the grid is a paired experiment.
    random::Rng rng =
        random::make_counter_rng(options_.seed, static_cast<std::uint64_t>(r));
    const sim::SimResult result = simulator.run_rolling(initial, rolling, rng);
    TrajectoryOutcome& out = outcomes[r];
    out.completed = result.completed;
    out.truncated = result.truncated;
    out.completion_time = result.completion_time;
    out.epochs_fired = result.rolling.epochs_fired;
    out.tasks_reallocated = result.rolling.tasks_reallocated;
  };
  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, options_.trajectories, one_trajectory);
  } else {
    for (std::size_t r = 0; r < options_.trajectories; ++r) one_trajectory(r);
  }

  PolicyAssessment a;
  a.policy_name = entry.name;
  a.scenario_name = scenario.name;
  a.trajectories = options_.trajectories;
  std::vector<double> completion_times;
  completion_times.reserve(options_.trajectories);
  std::size_t within_deadline = 0;
  for (const TrajectoryOutcome& out : outcomes) {
    if (out.completed) {
      ++a.completed;
      completion_times.push_back(out.completion_time);
      if (options_.deadline > 0.0 && out.completion_time <= options_.deadline) {
        ++within_deadline;
      }
    }
    if (out.truncated) ++a.truncated;
    a.epochs_fired += out.epochs_fired;
    a.tasks_reallocated += out.tasks_reallocated;
  }
  if (completion_times.size() >= 2) {
    a.mean_completion_time = stats::mean_confidence_interval(completion_times);
  } else if (completion_times.size() == 1) {
    // A single completion has a mean but no spread estimate.
    const double t = completion_times.front();
    a.mean_completion_time = {t, t, t};
  }
  a.reliability =
      stats::proportion_confidence_interval(a.completed, a.trajectories);
  if (options_.deadline > 0.0) {
    a.qos =
        stats::proportion_confidence_interval(within_deadline, a.trajectories);
  }
  return a;
}

std::vector<PolicyAssessment> PolicyComparer::compare() const {
  std::vector<PolicyAssessment> assessments;
  assessments.reserve(scenarios_.size() * policies_.size());
  for (const ComparerScenario& scenario : scenarios_) {
    for (const ComparerEntry& entry : policies_) {
      assessments.push_back(assess(scenario, entry));
    }
  }
  assign_ranks(assessments);
  return assessments;
}

void PolicyComparer::assign_ranks(std::vector<PolicyAssessment>& assessments) {
  // Rank within each scenario: smallest simulated mean completion time
  // first; cells that never completed sort last; ties by name so the order
  // is total and platform-independent.
  std::vector<std::string> scenario_names;
  for (const PolicyAssessment& a : assessments) {
    if (std::find(scenario_names.begin(), scenario_names.end(),
                  a.scenario_name) == scenario_names.end()) {
      scenario_names.push_back(a.scenario_name);
    }
  }
  const auto key = [&](std::size_t idx) {
    const PolicyAssessment& a = assessments[idx];
    return a.completed > 0 ? a.mean_completion_time.center
                           : std::numeric_limits<double>::infinity();
  };
  for (const std::string& scenario : scenario_names) {
    std::vector<std::size_t> order;
    for (std::size_t idx = 0; idx < assessments.size(); ++idx) {
      if (assessments[idx].scenario_name == scenario) order.push_back(idx);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t lhs, std::size_t rhs) {
                const double kl = key(lhs), kr = key(rhs);
                if (kl != kr) return kl < kr;
                return assessments[lhs].policy_name <
                       assessments[rhs].policy_name;
              });
    for (std::size_t k = 0; k < order.size(); ++k) {
      assessments[order[k]].rank = static_cast<int>(k + 1);
    }
  }
}

Table PolicyComparer::to_table(
    const std::vector<PolicyAssessment>& assessments) {
  Table table({"policy", "scenario", "trajectories", "completed", "truncated",
               "mean_t", "mean_t_lo", "mean_t_hi", "reliability",
               "reliability_lo", "reliability_hi", "qos", "qos_lo", "qos_hi",
               "epochs_fired", "tasks_reallocated", "rank"});
  for (const PolicyAssessment& a : assessments) {
    table.begin_row()
        .cell(a.policy_name)
        .cell(a.scenario_name)
        .cell(static_cast<long long>(a.trajectories))
        .cell(static_cast<long long>(a.completed))
        .cell(static_cast<long long>(a.truncated))
        .cell(a.mean_completion_time.center, 12)
        .cell(a.mean_completion_time.lower, 12)
        .cell(a.mean_completion_time.upper, 12)
        .cell(a.reliability.center, 12)
        .cell(a.reliability.lower, 12)
        .cell(a.reliability.upper, 12)
        .cell(a.qos.center, 12)
        .cell(a.qos.lower, 12)
        .cell(a.qos.upper, 12)
        .cell(static_cast<long long>(a.epochs_fired))
        .cell(a.tasks_reallocated)
        .cell(a.rank);
  }
  return table;
}

void PolicyComparer::write_csv(const std::vector<PolicyAssessment>& assessments,
                               const std::string& path) {
  to_table(assessments).write_csv_file(path);
}

void PolicyComparer::write_json(
    const std::vector<PolicyAssessment>& assessments,
    const std::string& path) {
  std::ofstream os(path);
  AGEDTR_REQUIRE(os.good(),
                 "PolicyComparer::write_json: cannot open " + path);
  os << "[\n";
  for (std::size_t k = 0; k < assessments.size(); ++k) {
    const PolicyAssessment& a = assessments[k];
    os << "  {\"policy\": \"" << json_escape(a.policy_name)
       << "\", \"scenario\": \"" << json_escape(a.scenario_name)
       << "\", \"trajectories\": " << a.trajectories
       << ", \"completed\": " << a.completed
       << ", \"truncated\": " << a.truncated
       << ", \"mean_t\": " << json_number(a.mean_completion_time.center)
       << ", \"mean_t_lo\": " << json_number(a.mean_completion_time.lower)
       << ", \"mean_t_hi\": " << json_number(a.mean_completion_time.upper)
       << ", \"reliability\": " << json_number(a.reliability.center)
       << ", \"reliability_lo\": " << json_number(a.reliability.lower)
       << ", \"reliability_hi\": " << json_number(a.reliability.upper)
       << ", \"qos\": " << json_number(a.qos.center)
       << ", \"qos_lo\": " << json_number(a.qos.lower)
       << ", \"qos_hi\": " << json_number(a.qos.upper)
       << ", \"epochs_fired\": " << a.epochs_fired
       << ", \"tasks_reallocated\": " << a.tasks_reallocated
       << ", \"rank\": " << a.rank << "}"
       << (k + 1 < assessments.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

ComparerDemoGrid make_comparer_demo_grid() {
  using dist::ModelFamily;
  ComparerDemoGrid grid;

  // Two small heterogeneous systems: an overloaded fast server feeding a
  // slow one, and a 3-server system with a skewed load. Non-memoryless
  // failure laws make the aged re-seeding path do real work in the rolling
  // cells, and finite deadlines give the QoS column content.
  {
    // Expensive, heavy-tailed transfers make the fair share (which ignores
    // transfer cost) overshoot, and non-exponential services split the
    // Markovian prescription from the age-dependent one.
    std::vector<core::ServerSpec> servers(2);
    servers[0].initial_tasks = 12;
    servers[0].service =
        dist::make_model_distribution(ModelFamily::kPareto1, 1.0);
    servers[0].failure =
        dist::make_model_distribution(ModelFamily::kUniform, 40.0);
    servers[1].initial_tasks = 1;
    servers[1].service =
        dist::make_model_distribution(ModelFamily::kUniform, 1.8);
    servers[1].failure =
        dist::make_model_distribution(ModelFamily::kUniform, 60.0);
    grid.scenarios.push_back(
        {"duo", core::make_uniform_network_scenario(
                    std::move(servers),
                    dist::make_model_distribution(ModelFamily::kPareto1, 2.5),
                    dist::make_model_distribution(ModelFamily::kExponential,
                                                  0.1))});
  }
  {
    std::vector<core::ServerSpec> servers(3);
    const int tasks[] = {12, 2, 0};
    const ModelFamily service_families[] = {ModelFamily::kShiftedExponential,
                                            ModelFamily::kPareto1,
                                            ModelFamily::kUniform};
    const double service_means[] = {1.0, 1.5, 2.2};
    const double failure_means[] = {30.0, 45.0, 60.0};
    for (std::size_t j = 0; j < 3; ++j) {
      servers[j].initial_tasks = tasks[j];
      servers[j].service = dist::make_model_distribution(
          service_families[j], service_means[j]);
      servers[j].failure = dist::make_model_distribution(
          ModelFamily::kUniform, failure_means[j]);
    }
    grid.scenarios.push_back(
        {"trio", core::make_uniform_network_scenario(
                     std::move(servers),
                     dist::make_model_distribution(ModelFamily::kPareto1, 1.0),
                     dist::make_model_distribution(ModelFamily::kExponential,
                                                   0.1))});
  }

  const auto algorithm1 = std::make_shared<Algorithm1Policy>();
  grid.policies.push_back(
      {"fair-share", std::make_shared<FairSharePolicy>()});
  grid.policies.push_back({"algorithm1", algorithm1});
  grid.policies.push_back(
      {"markovian-prescribed", make_markovian_prescribed_policy()});
  grid.policies.push_back(
      {"rolling-algorithm1",
       std::make_shared<RollingHorizonPolicy>(
           algorithm1, std::vector<double>{2.0, 5.0})});

  grid.options.trajectories = 48;
  grid.options.seed = 0x5eedc0de;
  grid.options.deadline = 16.0;
  grid.options.engine.workspace = std::make_shared<core::LatticeWorkspace>();
  return grid;
}

}  // namespace agedtr::policy
