#include "agedtr/policy/algorithm1.hpp"

#include <algorithm>
#include <vector>

#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {

Algorithm1::Algorithm1(Algorithm1Options options)
    : options_(std::move(options)) {
  AGEDTR_REQUIRE(options_.max_iterations >= 1,
                 "Algorithm1: max_iterations must be >= 1");
  if (options_.objective == Objective::kQos) {
    AGEDTR_REQUIRE(options_.deadline > 0.0, "Algorithm1: QoS needs a deadline");
  }
}

int Algorithm1::solve_pair(const core::DcsScenario& scenario, std::size_t i,
                           std::size_t j, int m1, int m2) const {
  // Build the 2-server instance (sender i, candidate recipient j). The
  // queue sizes enter only through the policies evaluated below, so the
  // instance is built with the *full* queues and the search range carries
  // (m1, m2); this lets the evaluator (and its lattice caches) be reused
  // across iterations for the same (i, j) pair.
  core::DcsScenario pair;
  pair.servers = {core::ServerSpec{scenario.servers[i].initial_tasks,
                                   scenario.servers[i].service,
                                   scenario.servers[i].failure},
                  core::ServerSpec{m2, scenario.servers[j].service,
                                   scenario.servers[j].failure}};
  pair.transfer = {{nullptr, scenario.transfer[i][j]},
                   {scenario.transfer[j][i], nullptr}};
  pair.transfer_scaling = scenario.transfer_scaling;
  if (!scenario.fn_transfer.empty()) {
    pair.fn_transfer = {{nullptr, scenario.fn_transfer[i][j]},
                        {scenario.fn_transfer[j][i], nullptr}};
  }
  // The average execution time is defined for reliable servers; when the
  // subproblem optimizes it, drop the failure laws (Table II's T̄ column
  // follows the paper in devising policies under the reliable model).
  if (options_.objective == Objective::kMeanExecutionTime) {
    pair.servers[0].failure = nullptr;
    pair.servers[1].failure = nullptr;
  }
  pair.servers[0].initial_tasks = m1;
  const PolicyEvaluator evaluator =
      options_.markovian
          ? make_markovian_evaluator(pair, options_.objective,
                                     options_.deadline)
          : make_age_dependent_evaluator(pair, options_.objective,
                                         options_.deadline, options_.conv);
  // Sender i controls only L12; sweep it with L21 = 0.
  const TwoServerPolicySearch search(m1, m2);
  const std::vector<PolicyPoint> line =
      search.sweep_l12(evaluator, /*l21=*/0, options_.pool);
  const bool maximize = is_maximization(options_.objective);
  const PolicyPoint* best = &line.front();
  for (const PolicyPoint& p : line) {
    const bool better =
        maximize ? p.value > best->value : p.value < best->value;
    if (better) best = &p;
  }
  return best->l12;
}

Algorithm1Result Algorithm1::devise(const core::DcsScenario& scenario,
                                    const QueueEstimates& estimates) const {
  scenario.validate();
  const std::size_t n = scenario.size();
  const core::DtrPolicy l0 =
      initial_policy(scenario, estimates, options_.criterion);

  Algorithm1Result result{core::DtrPolicy(n), 0, false};
  // previous[i][j]: L_ij from the prior iteration (starts at Eq. (5)).
  std::vector<std::vector<int>> previous(n, std::vector<int>(n, 0));
  std::vector<std::vector<int>> current(n, std::vector<int>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) previous[i][j] = l0(i, j);
    }
  }

  for (int k = 1; k <= options_.max_iterations; ++k) {
    result.iterations = k;
    for (std::size_t i = 0; i < n; ++i) {
      const int m_i = scenario.servers[i].initial_tasks;
      // U_i: candidate recipients (positive pledge in the initial policy).
      std::vector<std::size_t> candidates;
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && l0(i, j) > 0) candidates.push_back(j);
      }
      // Refine each pledge given the *other* pledges: already-updated ones
      // at their k-th value, not-yet-updated ones at their (k−1)-th value.
      std::vector<char> updated(n, 0);
      for (std::size_t j : candidates) {
        int pledged_elsewhere = 0;
        for (std::size_t k2 : candidates) {
          if (k2 == j) continue;
          pledged_elsewhere += updated[k2] ? current[i][k2] : previous[i][k2];
        }
        const int m1 = std::max(m_i - pledged_elsewhere, 0);
        const int m2 = estimates[i][j];
        current[i][j] = std::min(solve_pair(scenario, i, j, m1, m2), m1);
        updated[j] = 1;
      }
    }
    // Convergence: pledges unchanged across the iteration.
    bool changed = false;
    for (std::size_t i = 0; i < n && !changed; ++i) {
      for (std::size_t j = 0; j < n && !changed; ++j) {
        changed = current[i][j] != previous[i][j];
      }
    }
    previous = current;
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  // Clamp total outflow to the available queue (the per-pair solves bound
  // each pledge but the sum can still exceed m_i if estimates shifted).
  for (std::size_t i = 0; i < n; ++i) {
    int budget = scenario.servers[i].initial_tasks;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const int l = std::min(previous[i][j], budget);
      if (l > 0) {
        result.policy.set(i, j, l);
        budget -= l;
      }
    }
  }
  return result;
}

}  // namespace agedtr::policy
