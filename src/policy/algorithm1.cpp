#include "agedtr/policy/algorithm1.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/core/replication_bounds.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {

Algorithm1::Algorithm1(Algorithm1Options options)
    : options_(std::move(options)) {
  AGEDTR_REQUIRE(options_.max_iterations >= 1,
                 "Algorithm1: max_iterations must be >= 1");
  if (options_.objective == Objective::kQos) {
    AGEDTR_REQUIRE(options_.deadline > 0.0, "Algorithm1: QoS needs a deadline");
  }
  AGEDTR_REQUIRE(options_.max_replication >= 1,
                 "Algorithm1: max_replication must be >= 1");
  AGEDTR_REQUIRE(options_.slowdown_factor > 0.0 &&
                     options_.slowdown_factor <= 1.0,
                 "Algorithm1: slowdown_factor must lie in (0, 1]");
}

namespace {

/// The 2-server instance for sender i pledging to recipient j: m1 of i's
/// tasks against j's estimated m2, connected by the i↔j transfer laws.
core::DcsScenario make_pair_scenario(const core::DcsScenario& scenario,
                                     const Algorithm1Options& options,
                                     std::size_t i, std::size_t j, int m1,
                                     int m2) {
  core::DcsScenario pair;
  pair.servers = {core::ServerSpec{m1, scenario.servers[i].service,
                                   scenario.servers[i].failure},
                  core::ServerSpec{m2, scenario.servers[j].service,
                                   scenario.servers[j].failure}};
  pair.transfer = {{nullptr, scenario.transfer[i][j]},
                   {scenario.transfer[j][i], nullptr}};
  pair.transfer_scaling = scenario.transfer_scaling;
  if (!scenario.fn_transfer.empty()) {
    pair.fn_transfer = {{nullptr, scenario.fn_transfer[i][j]},
                        {scenario.fn_transfer[j][i], nullptr}};
  }
  // The average execution time is defined for reliable servers; when the
  // subproblem optimizes it, drop the failure laws (Table II's T̄ column
  // follows the paper in devising policies under the reliable model).
  if (options.objective == Objective::kMeanExecutionTime) {
    pair.servers[0].failure = nullptr;
    pair.servers[1].failure = nullptr;
  }
  return pair;
}

/// An m1-invariant lattice horizon for the (i, j) subproblems: i's full
/// queue plus j's estimate served at the slower of the two, plus the i→j
/// transfer mean (the only in-transit group the L21 = 0 sweeps create),
/// times the safety multiple. Freezing it up front keeps every engine of
/// the pair on one grid — so a shared workspace serves all iterations and
/// remaining-queue sizes — and makes the grid independent of which policy
/// a pool thread happens to evaluate first.
double pair_horizon(const core::DcsScenario& scenario,
                    const core::ConvolutionOptions& conv, std::size_t i,
                    std::size_t j, int m2) {
  const int worst_queue = scenario.servers[i].initial_tasks + m2;
  const double service_mean = std::max(scenario.servers[i].service->mean(),
                                       scenario.servers[j].service->mean());
  const double transfer_mean =
      scenario.transfer[i][j] ? scenario.transfer[i][j]->mean() : 0.0;
  return conv.horizon_multiple * (worst_queue * service_mean + transfer_mean);
}

std::string fmt_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Identity of a law as far as the devised policy is concerned: family,
/// mean, variance. Two laws agreeing on all three could in principle still
/// differ, but within this library a family is parameterized by at most two
/// moments, so the triple pins the law.
std::string law_fingerprint(const dist::DistPtr& law) {
  if (law == nullptr) return "-";
  return law->name() + ":" + fmt_double(law->mean()) + ":" +
         fmt_double(law->variance());
}

std::string serialize_pledges(const std::vector<std::vector<int>>& pledges) {
  std::string out;
  for (const auto& row : pledges) {
    for (const int l : row) {
      if (!out.empty()) out += ' ';
      out += std::to_string(l);
    }
  }
  return out;
}

std::string serialize_result(const Algorithm1Result& result) {
  std::string out = std::to_string(result.policy.size()) + ";" +
                    std::to_string(result.iterations) + ";" +
                    (result.converged ? "1" : "0") + ";";
  for (std::size_t i = 0; i < result.policy.size(); ++i) {
    for (std::size_t j = 0; j < result.policy.size(); ++j) {
      out += std::to_string(result.policy(i, j)) + " ";
    }
  }
  return out;
}

/// Picks the uniform replication factor with the smallest analytic
/// mean_upper bound on the reliable model (ties and degenerate bounds fall
/// back to the smaller factor; r = 1 always competes, so the selection can
/// only improve on no replication as the bounds see it).
void select_replication(const core::DcsScenario& scenario,
                        const Algorithm1Options& options,
                        Algorithm1Result& result) {
  core::DcsScenario reliable = scenario;
  for (core::ServerSpec& s : reliable.servers) s.failure = nullptr;
  core::ReplicationBoundsOptions bounds_options;
  bounds_options.deadline =
      options.objective == Objective::kQos ? options.deadline : 0.0;
  bounds_options.slowdown_factor = options.slowdown_factor;
  bounds_options.budget = options.conv.budget;
  const int n = static_cast<int>(scenario.size());
  const int max_factor = std::min(options.max_replication, n);
  if (max_factor <= 1) {
    result.replication_factor = 1;
    result.replication =
        core::make_uniform_replication(reliable, result.policy, 1);
    return;
  }
  double best_upper = std::numeric_limits<double>::infinity();
  for (int r = 1; r <= max_factor; ++r) {
    const core::ReplicationPlan plan =
        core::make_uniform_replication(reliable, result.policy, r);
    const core::ReplicationBounds bounds = core::replication_completion_bounds(
        reliable, result.policy, plan, bounds_options);
    if (bounds.mean_upper < best_upper) {
      best_upper = bounds.mean_upper;
      result.replication_factor = r;
      result.replication = plan;
    }
  }
  if (result.replication.replica_sets.empty()) {
    // Every bound degenerated (all +inf): keep the unreplicated plan.
    result.replication_factor = 1;
    result.replication =
        core::make_uniform_replication(reliable, result.policy, 1);
  }
}

Algorithm1Result parse_result(const std::string& payload) {
  std::istringstream in(payload);
  std::size_t n = 0;
  int iterations = 0;
  int converged = 0;
  char sep = 0;
  in >> n >> sep >> iterations >> sep >> converged >> sep;
  AGEDTR_REQUIRE(in && n >= 1,
                 "Algorithm1: corrupt journaled result payload");
  Algorithm1Result result{core::DtrPolicy(n), iterations, converged != 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      int l = 0;
      in >> l;
      AGEDTR_REQUIRE(in, "Algorithm1: corrupt journaled result payload");
      if (i != j && l > 0) result.policy.set(i, j, l);
    }
  }
  return result;
}

}  // namespace

std::string algorithm1_checkpoint_tag(const core::DcsScenario& scenario,
                                      const QueueEstimates& estimates,
                                      const Algorithm1Options& options) {
  std::string tag = "algorithm1 v1|n=" + std::to_string(scenario.size());
  for (const core::ServerSpec& s : scenario.servers) {
    tag += "|srv " + std::to_string(s.initial_tasks) + " " +
           law_fingerprint(s.service) + " " + law_fingerprint(s.failure);
  }
  tag += "|scaling=" +
         std::to_string(static_cast<int>(scenario.transfer_scaling));
  for (const auto& row : scenario.transfer) {
    for (const dist::DistPtr& z : row) tag += "|z " + law_fingerprint(z);
  }
  for (const auto& row : scenario.fn_transfer) {
    for (const dist::DistPtr& x : row) tag += "|x " + law_fingerprint(x);
  }
  tag += "|est";
  for (const auto& row : estimates) {
    // Append in two steps: `tag += " " + std::to_string(e)` trips GCC 12's
    // -Wrestrict false positive (PR105651) on the concatenation temporary.
    for (const int e : row) {
      tag += ' ';
      tag += std::to_string(e);
    }
  }
  tag += "|opts " + std::to_string(options.max_iterations) + " " +
         std::to_string(static_cast<int>(options.criterion)) + " " +
         std::to_string(static_cast<int>(options.objective)) + " " +
         fmt_double(options.deadline) + " " +
         (options.markovian ? "m" : "a") + "|conv " +
         fmt_double(options.conv.dt) + " " +
         std::to_string(options.conv.cells) + " " +
         fmt_double(options.conv.horizon) + " " +
         fmt_double(options.conv.horizon_multiple);
  return tag;
}

EvaluationEngine Algorithm1::make_pair_engine(
    const core::DcsScenario& scenario, std::size_t i, std::size_t j, int m1,
    int m2, std::shared_ptr<core::LatticeWorkspace> workspace) const {
  EvaluationEngineOptions engine_options;
  engine_options.objective = options_.objective;
  engine_options.deadline = options_.deadline;
  engine_options.markovian = options_.markovian;
  engine_options.conv = options_.conv;
  engine_options.pool = options_.pool;
  if (engine_options.conv.dt <= 0.0 && engine_options.conv.horizon <= 0.0) {
    engine_options.conv.horizon =
        pair_horizon(scenario, engine_options.conv, i, j, m2);
  }
  return EvaluationEngine(make_pair_scenario(scenario, options_, i, j, m1, m2),
                          std::move(engine_options), std::move(workspace));
}

int Algorithm1::solve_pair(const EvaluationEngine& engine, int m1, int m2) {
  // Sender i controls only L12; sweep it with L21 = 0.
  const TwoServerPolicySearch search(m1, m2);
  const std::vector<PolicyPoint> line = search.sweep_l12(engine, /*l21=*/0);
  const bool maximize = is_maximization(engine.options().objective);
  const PolicyPoint* best = &line.front();
  for (const PolicyPoint& p : line) {
    const bool better =
        maximize ? p.value > best->value : p.value < best->value;
    if (better) best = &p;
  }
  return best->l12;
}

Algorithm1Result Algorithm1::devise(const core::DcsScenario& scenario,
                                    const QueueEstimates& estimates) const {
  scenario.validate();
  const std::size_t n = scenario.size();

  // Crash-consistent journal: solved subproblems and completed iterations
  // are persisted as they finish, so a killed devise() restarted with the
  // same inputs replays them instead of re-solving.
  std::unique_ptr<Checkpoint> journal;
  if (!options_.checkpoint_path.empty()) {
    journal = std::make_unique<Checkpoint>(
        options_.checkpoint_path,
        algorithm1_checkpoint_tag(scenario, estimates, options_),
        options_.checkpoint_resume);
    if (options_.checkpoint_crash_after_units > 0) {
      journal->crash_after_records_for_testing(
          options_.checkpoint_crash_after_units);
    }
    if (const std::optional<std::string> done = journal->find("result")) {
      Algorithm1Result resumed = parse_result(*done);
      resumed.journal_hits = journal->stats().hits;
      // The replication factor is derived from the (journaled) policy, not
      // journaled itself — recomputing keeps old journals replayable.
      select_replication(scenario, options_, resumed);
      return resumed;
    }
  }

  const core::DtrPolicy l0 =
      initial_policy(scenario, estimates, options_.criterion);

  // One workspace spans every subproblem of this devise() (and outlives it
  // when the caller supplied options_.workspace). The (i, j) grids are
  // m1-invariant, so iterations k ≥ 2 re-solve their pairs against warm
  // lattice caches; identical (i, j, m1) subproblems are not re-solved at
  // all (m2 is fixed by the estimates, so m1 is the only moving part).
  std::shared_ptr<core::LatticeWorkspace> workspace;
  if (options_.share_workspace) {
    workspace = options_.workspace
                    ? options_.workspace
                    : std::make_shared<core::LatticeWorkspace>();
  }
  std::map<std::tuple<std::size_t, std::size_t, int>, int> solved;
  const auto pledge = [&](std::size_t i, std::size_t j, int m1) -> int {
    const int m2 = estimates[i][j];
    // Subproblem results depend only on (i, j, m1) — m2 is pinned by the
    // estimates, which the journal tag fingerprints — so the journal key
    // mirrors the in-memory memo and replays across iterations and runs.
    const std::string unit =
        journal ? "pair " + std::to_string(i) + " " + std::to_string(j) +
                      " " + std::to_string(m1)
                : std::string();
    if (journal) {
      if (const std::optional<std::string> replay = journal->find(unit)) {
        return std::stoi(*replay);
      }
    }
    if (!options_.share_workspace) {
      // Baseline mode: a fresh engine with a private workspace per solve,
      // on the same fixed grids — identical policies, lattice work redone.
      const int best = solve_pair(
          make_pair_engine(scenario, i, j, m1, m2, nullptr), m1, m2);
      if (journal) journal->record(unit, std::to_string(best));
      return best;
    }
    const std::tuple<std::size_t, std::size_t, int> key{i, j, m1};
    if (const auto it = solved.find(key); it != solved.end()) {
      return it->second;
    }
    const int best =
        solve_pair(make_pair_engine(scenario, i, j, m1, m2, workspace), m1,
                   m2);
    solved.emplace(key, best);
    if (journal) journal->record(unit, std::to_string(best));
    return best;
  };

  Algorithm1Result result{core::DtrPolicy(n), 0, false};
  // previous[i][j]: L_ij from the prior iteration (starts at Eq. (5)).
  std::vector<std::vector<int>> previous(n, std::vector<int>(n, 0));
  std::vector<std::vector<int>> current(n, std::vector<int>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) previous[i][j] = l0(i, j);
    }
  }

  for (int k = 1; k <= options_.max_iterations; ++k) {
    result.iterations = k;
    for (std::size_t i = 0; i < n; ++i) {
      const int m_i = scenario.servers[i].initial_tasks;
      // U_i: candidate recipients (positive pledge in the initial policy).
      std::vector<std::size_t> candidates;
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && l0(i, j) > 0) candidates.push_back(j);
      }
      // Refine each pledge given the *other* pledges: already-updated ones
      // at their k-th value, not-yet-updated ones at their (k−1)-th value.
      std::vector<char> updated(n, 0);
      for (std::size_t j : candidates) {
        int pledged_elsewhere = 0;
        for (std::size_t k2 : candidates) {
          if (k2 == j) continue;
          pledged_elsewhere += updated[k2] ? current[i][k2] : previous[i][k2];
        }
        const int m1 = std::max(m_i - pledged_elsewhere, 0);
        current[i][j] = std::min(pledge(i, j, m1), m1);
        updated[j] = 1;
      }
    }
    // Convergence: pledges unchanged across the iteration.
    bool changed = false;
    for (std::size_t i = 0; i < n && !changed; ++i) {
      for (std::size_t j = 0; j < n && !changed; ++j) {
        changed = current[i][j] != previous[i][j];
      }
    }
    previous = current;
    // Journal the iteration's pledge state. A resumed run replays the same
    // iterations (the pair units above make that cheap), so the unit may
    // already exist; re-recording it would be a duplicate-key error.
    if (journal && !journal->contains("iter " + std::to_string(k))) {
      journal->record("iter " + std::to_string(k),
                      serialize_pledges(previous));
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  // Clamp total outflow to the available queue (the per-pair solves bound
  // each pledge but the sum can still exceed m_i if estimates shifted).
  std::vector<int> queues(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    queues[i] = scenario.servers[i].initial_tasks;
  }
  result.policy = clamp_pledges(previous, queues);
  if (journal) {
    journal->record("result", serialize_result(result));
    result.journal_hits = journal->stats().hits;
  }
  select_replication(scenario, options_, result);
  return result;
}

core::DtrPolicy clamp_pledges(const std::vector<std::vector<int>>& pledges,
                              const std::vector<int>& queues) {
  const std::size_t n = queues.size();
  AGEDTR_REQUIRE(pledges.size() == n,
                 "clamp_pledges: pledge matrix / queue size mismatch");
  core::DtrPolicy policy(n);
  for (std::size_t i = 0; i < n; ++i) {
    AGEDTR_REQUIRE(pledges[i].size() == n,
                   "clamp_pledges: pledge matrix is not square");
    // Grant the largest pledges first (stable sort: ties fall back to the
    // smaller recipient index) so truncation does not privilege whichever
    // recipient happened to come first.
    std::vector<std::size_t> order;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && pledges[i][j] > 0) order.push_back(j);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return pledges[i][a] > pledges[i][b];
                     });
    int budget = queues[i];
    for (std::size_t j : order) {
      if (budget == 0) break;
      const int l = std::min(pledges[i][j], budget);
      policy.set(i, j, l);
      budget -= l;
    }
  }
  return policy;
}

}  // namespace agedtr::policy
