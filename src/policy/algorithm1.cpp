#include "agedtr/policy/algorithm1.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {

Algorithm1::Algorithm1(Algorithm1Options options)
    : options_(std::move(options)) {
  AGEDTR_REQUIRE(options_.max_iterations >= 1,
                 "Algorithm1: max_iterations must be >= 1");
  if (options_.objective == Objective::kQos) {
    AGEDTR_REQUIRE(options_.deadline > 0.0, "Algorithm1: QoS needs a deadline");
  }
}

namespace {

/// The 2-server instance for sender i pledging to recipient j: m1 of i's
/// tasks against j's estimated m2, connected by the i↔j transfer laws.
core::DcsScenario make_pair_scenario(const core::DcsScenario& scenario,
                                     const Algorithm1Options& options,
                                     std::size_t i, std::size_t j, int m1,
                                     int m2) {
  core::DcsScenario pair;
  pair.servers = {core::ServerSpec{m1, scenario.servers[i].service,
                                   scenario.servers[i].failure},
                  core::ServerSpec{m2, scenario.servers[j].service,
                                   scenario.servers[j].failure}};
  pair.transfer = {{nullptr, scenario.transfer[i][j]},
                   {scenario.transfer[j][i], nullptr}};
  pair.transfer_scaling = scenario.transfer_scaling;
  if (!scenario.fn_transfer.empty()) {
    pair.fn_transfer = {{nullptr, scenario.fn_transfer[i][j]},
                        {scenario.fn_transfer[j][i], nullptr}};
  }
  // The average execution time is defined for reliable servers; when the
  // subproblem optimizes it, drop the failure laws (Table II's T̄ column
  // follows the paper in devising policies under the reliable model).
  if (options.objective == Objective::kMeanExecutionTime) {
    pair.servers[0].failure = nullptr;
    pair.servers[1].failure = nullptr;
  }
  return pair;
}

/// An m1-invariant lattice horizon for the (i, j) subproblems: i's full
/// queue plus j's estimate served at the slower of the two, plus the i→j
/// transfer mean (the only in-transit group the L21 = 0 sweeps create),
/// times the safety multiple. Freezing it up front keeps every engine of
/// the pair on one grid — so a shared workspace serves all iterations and
/// remaining-queue sizes — and makes the grid independent of which policy
/// a pool thread happens to evaluate first.
double pair_horizon(const core::DcsScenario& scenario,
                    const core::ConvolutionOptions& conv, std::size_t i,
                    std::size_t j, int m2) {
  const int worst_queue = scenario.servers[i].initial_tasks + m2;
  const double service_mean = std::max(scenario.servers[i].service->mean(),
                                       scenario.servers[j].service->mean());
  const double transfer_mean =
      scenario.transfer[i][j] ? scenario.transfer[i][j]->mean() : 0.0;
  return conv.horizon_multiple * (worst_queue * service_mean + transfer_mean);
}

}  // namespace

EvaluationEngine Algorithm1::make_pair_engine(
    const core::DcsScenario& scenario, std::size_t i, std::size_t j, int m1,
    int m2, std::shared_ptr<core::LatticeWorkspace> workspace) const {
  EvaluationEngineOptions engine_options;
  engine_options.objective = options_.objective;
  engine_options.deadline = options_.deadline;
  engine_options.markovian = options_.markovian;
  engine_options.conv = options_.conv;
  engine_options.pool = options_.pool;
  if (engine_options.conv.dt <= 0.0 && engine_options.conv.horizon <= 0.0) {
    engine_options.conv.horizon =
        pair_horizon(scenario, engine_options.conv, i, j, m2);
  }
  return EvaluationEngine(make_pair_scenario(scenario, options_, i, j, m1, m2),
                          std::move(engine_options), std::move(workspace));
}

int Algorithm1::solve_pair(const EvaluationEngine& engine, int m1, int m2) {
  // Sender i controls only L12; sweep it with L21 = 0.
  const TwoServerPolicySearch search(m1, m2);
  const std::vector<PolicyPoint> line = search.sweep_l12(engine, /*l21=*/0);
  const bool maximize = is_maximization(engine.options().objective);
  const PolicyPoint* best = &line.front();
  for (const PolicyPoint& p : line) {
    const bool better =
        maximize ? p.value > best->value : p.value < best->value;
    if (better) best = &p;
  }
  return best->l12;
}

Algorithm1Result Algorithm1::devise(const core::DcsScenario& scenario,
                                    const QueueEstimates& estimates) const {
  scenario.validate();
  const std::size_t n = scenario.size();
  const core::DtrPolicy l0 =
      initial_policy(scenario, estimates, options_.criterion);

  // One workspace spans every subproblem of this devise() (and outlives it
  // when the caller supplied options_.workspace). The (i, j) grids are
  // m1-invariant, so iterations k ≥ 2 re-solve their pairs against warm
  // lattice caches; identical (i, j, m1) subproblems are not re-solved at
  // all (m2 is fixed by the estimates, so m1 is the only moving part).
  std::shared_ptr<core::LatticeWorkspace> workspace;
  if (options_.share_workspace) {
    workspace = options_.workspace
                    ? options_.workspace
                    : std::make_shared<core::LatticeWorkspace>();
  }
  std::map<std::tuple<std::size_t, std::size_t, int>, int> solved;
  const auto pledge = [&](std::size_t i, std::size_t j, int m1) -> int {
    const int m2 = estimates[i][j];
    if (!options_.share_workspace) {
      // Baseline mode: a fresh engine with a private workspace per solve,
      // on the same fixed grids — identical policies, lattice work redone.
      return solve_pair(make_pair_engine(scenario, i, j, m1, m2, nullptr),
                        m1, m2);
    }
    const std::tuple<std::size_t, std::size_t, int> key{i, j, m1};
    if (const auto it = solved.find(key); it != solved.end()) {
      return it->second;
    }
    const int best =
        solve_pair(make_pair_engine(scenario, i, j, m1, m2, workspace), m1,
                   m2);
    solved.emplace(key, best);
    return best;
  };

  Algorithm1Result result{core::DtrPolicy(n), 0, false};
  // previous[i][j]: L_ij from the prior iteration (starts at Eq. (5)).
  std::vector<std::vector<int>> previous(n, std::vector<int>(n, 0));
  std::vector<std::vector<int>> current(n, std::vector<int>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) previous[i][j] = l0(i, j);
    }
  }

  for (int k = 1; k <= options_.max_iterations; ++k) {
    result.iterations = k;
    for (std::size_t i = 0; i < n; ++i) {
      const int m_i = scenario.servers[i].initial_tasks;
      // U_i: candidate recipients (positive pledge in the initial policy).
      std::vector<std::size_t> candidates;
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && l0(i, j) > 0) candidates.push_back(j);
      }
      // Refine each pledge given the *other* pledges: already-updated ones
      // at their k-th value, not-yet-updated ones at their (k−1)-th value.
      std::vector<char> updated(n, 0);
      for (std::size_t j : candidates) {
        int pledged_elsewhere = 0;
        for (std::size_t k2 : candidates) {
          if (k2 == j) continue;
          pledged_elsewhere += updated[k2] ? current[i][k2] : previous[i][k2];
        }
        const int m1 = std::max(m_i - pledged_elsewhere, 0);
        current[i][j] = std::min(pledge(i, j, m1), m1);
        updated[j] = 1;
      }
    }
    // Convergence: pledges unchanged across the iteration.
    bool changed = false;
    for (std::size_t i = 0; i < n && !changed; ++i) {
      for (std::size_t j = 0; j < n && !changed; ++j) {
        changed = current[i][j] != previous[i][j];
      }
    }
    previous = current;
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  // Clamp total outflow to the available queue (the per-pair solves bound
  // each pledge but the sum can still exceed m_i if estimates shifted).
  std::vector<int> queues(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    queues[i] = scenario.servers[i].initial_tasks;
  }
  result.policy = clamp_pledges(previous, queues);
  return result;
}

core::DtrPolicy clamp_pledges(const std::vector<std::vector<int>>& pledges,
                              const std::vector<int>& queues) {
  const std::size_t n = queues.size();
  AGEDTR_REQUIRE(pledges.size() == n,
                 "clamp_pledges: pledge matrix / queue size mismatch");
  core::DtrPolicy policy(n);
  for (std::size_t i = 0; i < n; ++i) {
    AGEDTR_REQUIRE(pledges[i].size() == n,
                   "clamp_pledges: pledge matrix is not square");
    // Grant the largest pledges first (stable sort: ties fall back to the
    // smaller recipient index) so truncation does not privilege whichever
    // recipient happened to come first.
    std::vector<std::size_t> order;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && pledges[i][j] > 0) order.push_back(j);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return pledges[i][a] > pledges[i][b];
                     });
    int budget = queues[i];
    for (std::size_t j : order) {
      if (budget == 0) break;
      const int l = std::min(pledges[i][j], budget);
      policy.set(i, j, l);
      budget -= l;
    }
  }
  return policy;
}

}  // namespace agedtr::policy
