#include "agedtr/policy/resilient_eval.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/core/ctmc.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::policy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

metrics::Counter& answered_counter(EvalTier tier) {
  static metrics::Counter* counters[kEvalTierCount] = {
      &metrics::MetricsRegistry::global().counter(
          "resilient.answered.regenerative",
          "evaluations the regenerative tier answered"),
      &metrics::MetricsRegistry::global().counter(
          "resilient.answered.convolution",
          "evaluations the convolution tier answered"),
      &metrics::MetricsRegistry::global().counter(
          "resilient.answered.markovian",
          "evaluations the markovian tier answered"),
      &metrics::MetricsRegistry::global().counter(
          "resilient.answered.monte_carlo",
          "evaluations the monte-carlo tier answered"),
  };
  return *counters[static_cast<int>(tier)];
}

metrics::Counter& declined_counter(EvalTier tier) {
  static metrics::Counter* counters[kEvalTierCount] = {
      &metrics::MetricsRegistry::global().counter(
          "resilient.declined.regenerative",
          "evaluations the regenerative tier declined"),
      &metrics::MetricsRegistry::global().counter(
          "resilient.declined.convolution",
          "evaluations the convolution tier declined"),
      &metrics::MetricsRegistry::global().counter(
          "resilient.declined.markovian",
          "evaluations the markovian tier declined"),
      &metrics::MetricsRegistry::global().counter(
          "resilient.declined.monte_carlo",
          "evaluations the monte-carlo tier declined"),
  };
  return *counters[static_cast<int>(tier)];
}

metrics::Counter& wall_fallback_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "resilient.fallback_wall_budget_total",
      "tier declines caused by the wall-clock budget");
  return c;
}

metrics::Counter& depth_fallback_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "resilient.fallback_depth_budget_total",
      "tier declines caused by a structural depth/state cap");
  return c;
}

FailureCause classify_failure(const std::exception& e) {
  if (dynamic_cast<const WallBudgetExceeded*>(&e) != nullptr) {
    return FailureCause::kWallBudget;
  }
  if (dynamic_cast<const DepthBudgetExceeded*>(&e) != nullptr) {
    return FailureCause::kDepthBudget;
  }
  if (dynamic_cast<const BudgetExceeded*>(&e) != nullptr) {
    return FailureCause::kOtherBudget;
  }
  return FailureCause::kOther;
}

bool scenario_is_memoryless(const core::DcsScenario& scenario) {
  const auto memoryless = [](const dist::DistPtr& law) {
    return !law || law->is_memoryless();
  };
  for (const core::ServerSpec& s : scenario.servers) {
    if (!memoryless(s.service) || !memoryless(s.failure)) return false;
  }
  for (const auto& row : scenario.transfer) {
    for (const auto& law : row) {
      if (!memoryless(law)) return false;
    }
  }
  for (const auto& row : scenario.fn_transfer) {
    for (const auto& law : row) {
      if (!memoryless(law)) return false;
    }
  }
  return true;
}

/// Upper bound on the Markovian DP/CTMC state count under the policy:
/// task counters × up flags × in-transit group subsets.
double markovian_state_estimate(const core::DcsScenario& scenario,
                                const core::DtrPolicy& policy) {
  const std::vector<core::ServerWorkload> workloads =
      core::apply_policy(scenario, policy);
  double states = 1.0;
  double groups = 0.0;
  for (const core::ServerWorkload& w : workloads) {
    states *= static_cast<double>(w.total_tasks() + 1);
    groups += static_cast<double>(w.inbound.size());
  }
  states *= std::pow(2.0, static_cast<double>(workloads.size()));
  states *= std::pow(2.0, groups);
  return states;
}

}  // namespace

std::string eval_tier_name(EvalTier tier) {
  switch (tier) {
    case EvalTier::kRegenerative:
      return "regenerative";
    case EvalTier::kConvolution:
      return "convolution";
    case EvalTier::kMarkovian:
      return "markovian";
    case EvalTier::kMonteCarlo:
      return "monte-carlo";
  }
  throw LogicError("eval_tier_name: unknown tier");
}

std::string failure_cause_name(FailureCause cause) {
  switch (cause) {
    case FailureCause::kWallBudget:
      return "wall budget";
    case FailureCause::kDepthBudget:
      return "depth budget";
    case FailureCause::kOtherBudget:
      return "budget";
    case FailureCause::kOther:
      return "error";
  }
  throw LogicError("failure_cause_name: unknown cause");
}

std::string EvalOutcome::describe() const {
  std::string text = ok ? eval_tier_name(tier) + " answered"
                        : "no tier answered";
  for (const TierFailure& f : failures) {
    text += "; " + eval_tier_name(f.tier) + " declined [" +
            failure_cause_name(f.cause) + "]: " + f.reason;
  }
  return text;
}

void EvalTally::record(const EvalOutcome& outcome) {
  ++evaluations;
  if (outcome.ok) {
    ++answered[static_cast<int>(outcome.tier)];
  } else {
    ++total_failures;
  }
  for (const TierFailure& f : outcome.failures) {
    ++declined[static_cast<int>(f.tier)];
    if (f.cause == FailureCause::kWallBudget) ++declined_wall_budget;
    if (f.cause == FailureCause::kDepthBudget) ++declined_depth_budget;
  }
}

ResilientEvaluator::ResilientEvaluator(core::DcsScenario scenario,
                                       ResilientEvalOptions options)
    : options_(std::move(options)) {
  scenario.validate();
  if (options_.objective == Objective::kQos) {
    AGEDTR_REQUIRE(options_.deadline > 0.0,
                   "ResilientEvaluator: QoS needs a positive deadline");
  }
  AGEDTR_REQUIRE(options_.monte_carlo.replications >= 2,
                 "ResilientEvaluator: Monte-Carlo tier needs >= 2 "
                 "replications");
  scenario_ =
      std::make_shared<const core::DcsScenario>(std::move(scenario));
  exponentialized_ =
      std::make_shared<const core::DcsScenario>(exponentialized(*scenario_));
  EvaluationEngineOptions engine_options;
  engine_options.objective = options_.objective;
  engine_options.deadline = options_.deadline;
  engine_options.conv = options_.convolution;
  convolution_ = std::make_shared<const EvaluationEngine>(
      *scenario_, std::move(engine_options), options_.workspace);
}

const std::shared_ptr<core::LatticeWorkspace>&
ResilientEvaluator::workspace() const {
  return convolution_->workspace();
}

double ResilientEvaluator::evaluate_regenerative(
    const core::DtrPolicy& policy) const {
  // Constructed per call: the solver is cheap to build, and the tight
  // budget lives in its options.
  const core::RegenerativeSolver solver(*scenario_, options_.regenerative);
  switch (options_.objective) {
    case Objective::kMeanExecutionTime:
      return solver.mean_execution_time(policy);
    case Objective::kQos:
      return solver.qos(policy, options_.deadline);
    case Objective::kReliability:
      return solver.reliability(policy);
  }
  throw LogicError("evaluate_regenerative: unknown objective");
}

double ResilientEvaluator::evaluate_convolution(
    const core::DtrPolicy& policy) const {
  return convolution_->evaluate(policy);
}

double ResilientEvaluator::evaluate_markovian(
    const core::DtrPolicy& policy) const {
  AGEDTR_REQUIRE(options_.allow_markovian_approximation ||
                     scenario_is_memoryless(*scenario_),
                 "Markovian tier: scenario has non-exponential laws and "
                 "allow_markovian_approximation is off");
  const double states = markovian_state_estimate(*exponentialized_, policy);
  if (states > static_cast<double>(options_.markovian_max_states)) {
    // Structural, like a recursion-depth overrun: the state space is a
    // deterministic function of the configuration.
    throw DepthBudgetExceeded(
        "Markovian tier: DP state space exceeds markovian_max_states");
  }
  switch (options_.objective) {
    case Objective::kMeanExecutionTime:
      return core::MarkovianSolver(*exponentialized_)
          .mean_execution_time(policy);
    case Objective::kQos:
      return core::CtmcTransientSolver(*exponentialized_, policy)
          .qos(options_.deadline);
    case Objective::kReliability:
      return core::MarkovianSolver(*exponentialized_).reliability(policy);
  }
  throw LogicError("evaluate_markovian: unknown objective");
}

double ResilientEvaluator::evaluate_monte_carlo(
    const core::DtrPolicy& policy) const {
  sim::MonteCarloOptions mc = options_.monte_carlo;
  if (options_.objective == Objective::kQos) mc.deadline = options_.deadline;
  const sim::MonteCarloMetrics metrics =
      sim::run_monte_carlo(*scenario_, policy, mc);
  switch (options_.objective) {
    case Objective::kMeanExecutionTime: {
      // The paper defines T̄ over runs that complete; refuse estimates with
      // no support rather than returning a silent 0.
      if (metrics.completed < 2) {
        throw ConvergenceError(
            "Monte-Carlo tier: too few completed replications to estimate "
            "the mean execution time");
      }
      return metrics.mean_completion_time.center;
    }
    case Objective::kQos:
      return metrics.qos.center;
    case Objective::kReliability:
      return metrics.reliability.center;
  }
  throw LogicError("evaluate_monte_carlo: unknown objective");
}

EvalOutcome ResilientEvaluator::evaluate(
    const core::DtrPolicy& policy) const {
  EvalOutcome outcome;
  const auto attempt = [&](EvalTier tier, auto&& body) {
    try {
      outcome.value = body();
      outcome.tier = tier;
      outcome.ok = true;
      answered_counter(tier).add();
      return true;
    } catch (const std::exception& e) {
      const FailureCause cause = classify_failure(e);
      declined_counter(tier).add();
      if (cause == FailureCause::kWallBudget) wall_fallback_counter().add();
      if (cause == FailureCause::kDepthBudget) depth_fallback_counter().add();
      outcome.failures.push_back({tier, cause, e.what()});
      return false;
    }
  };
  if (options_.try_regenerative &&
      attempt(EvalTier::kRegenerative,
              [&] { return evaluate_regenerative(policy); })) {
    return outcome;
  }
  if (attempt(EvalTier::kConvolution,
              [&] { return evaluate_convolution(policy); })) {
    return outcome;
  }
  if (attempt(EvalTier::kMarkovian,
              [&] { return evaluate_markovian(policy); })) {
    return outcome;
  }
  attempt(EvalTier::kMonteCarlo,
          [&] { return evaluate_monte_carlo(policy); });
  return outcome;
}

PolicyEvaluator ResilientEvaluator::as_policy_evaluator() const {
  // The evaluator object outlives typical searches; share ownership of the
  // pieces so the closure stays valid even if this wrapper is destroyed.
  auto self = std::make_shared<ResilientEvaluator>(*this);
  const double worst =
      is_maximization(options_.objective) ? -kInf : kInf;
  return [self, worst](const core::DtrPolicy& policy) {
    const EvalOutcome outcome = self->evaluate(policy);
    return outcome.ok ? outcome.value : worst;
  };
}

}  // namespace agedtr::policy
