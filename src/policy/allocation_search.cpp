#include "agedtr/policy/allocation_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/policy/evaluation_engine.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::policy {
namespace {

core::DcsScenario with_allocation(const core::DcsScenario& scenario,
                                  const std::vector<int>& allocation) {
  core::DcsScenario out = scenario;
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    out.servers[j].initial_tasks = allocation[j];
  }
  return out;
}

}  // namespace

namespace {

// Shared-workspace scoring: every analytically scored candidate hits the
// same lattice cache entries (the grid is allocation-invariant because the
// auto horizon depends only on totals).
double score_allocation_with(
    const core::DcsScenario& scenario, const std::vector<int>& allocation,
    const AllocationSearchOptions& options,
    const std::shared_ptr<core::LatticeWorkspace>& workspace) {
  AGEDTR_REQUIRE(allocation.size() == scenario.size(),
                 "score_allocation: allocation size mismatch");
  core::DcsScenario placed = with_allocation(scenario, allocation);
  if (options.objective == Objective::kMeanExecutionTime) {
    for (core::ServerSpec& s : placed.servers) s.failure = nullptr;
  }
  const core::DtrPolicy identity(placed.size());
  if (options.analytic) {
    EvaluationEngineOptions engine_options;
    engine_options.objective = options.objective;
    engine_options.deadline = options.deadline;
    engine_options.conv = options.conv;
    const EvaluationEngine engine(std::move(placed),
                                          std::move(engine_options),
                                          workspace);
    return engine.evaluate(identity);
  }
  sim::MonteCarloOptions mc;
  mc.replications = options.replications;
  mc.seed = options.seed;  // common random numbers across candidates
  mc.deadline = options.deadline;
  mc.pool = options.pool;
  const sim::MonteCarloMetrics metrics =
      sim::run_monte_carlo(placed, identity, mc);
  switch (options.objective) {
    case Objective::kMeanExecutionTime:
      return metrics.mean_completion_time.center;
    case Objective::kQos:
      return metrics.qos.center;
    case Objective::kReliability:
      return metrics.reliability.center;
  }
  throw LogicError("score_allocation: unknown objective");
}

// Supervised scoring: the candidate's evaluation is retried/quarantined by
// a Supervisor, and a quarantined candidate comes back as nullopt (the
// search skips it). `ordinal` is the candidate-evaluation index recorded in
// the aggregate report. Without options.supervise this is the plain
// fail-fast call.
std::optional<double> supervised_score(
    const core::DcsScenario& scenario, const std::vector<int>& allocation,
    const AllocationSearchOptions& options,
    const std::shared_ptr<core::LatticeWorkspace>& workspace,
    std::size_t ordinal, SupervisionReport& aggregate) {
  if (!options.supervise.has_value()) {
    return score_allocation_with(scenario, allocation, options, workspace);
  }
  std::optional<double> value;
  const SupervisionReport report =
      Supervisor(*options.supervise)
          .run(1, [&](std::size_t, const CancelToken& token) {
            token.check("optimal_allocation");
            value = score_allocation_with(scenario, allocation, options,
                                          workspace);
          });
  aggregate.absorb(report, ordinal);
  if (!report.all_succeeded()) return std::nullopt;
  return value;
}

}  // namespace

double score_allocation(const core::DcsScenario& scenario,
                        const std::vector<int>& allocation,
                        const AllocationSearchOptions& options) {
  const auto workspace = options.workspace
                             ? options.workspace
                             : std::make_shared<core::LatticeWorkspace>();
  return score_allocation_with(scenario, allocation, options, workspace);
}

AllocationSearchResult optimal_allocation(
    const core::DcsScenario& scenario,
    const AllocationSearchOptions& options) {
  scenario.validate();
  const std::size_t n = scenario.size();
  const int total = scenario.total_tasks();
  AGEDTR_REQUIRE(total > 0, "optimal_allocation: the workload is empty");
  const bool maximize = is_maximization(options.objective);

  AllocationSearchResult result;
  // Start from the speed-proportional allocation (a strong prior: it is
  // optimal when transfers are free and the system is reliable).
  std::vector<double> speed(n);
  double speed_sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    speed[j] = 1.0 / scenario.servers[j].service->mean();
    speed_sum += speed[j];
  }
  std::vector<int> alloc(n, 0);
  int assigned = 0;
  for (std::size_t j = 0; j < n; ++j) {
    alloc[j] = static_cast<int>(
        std::floor(total * speed[j] / speed_sum));
    assigned += alloc[j];
  }
  for (std::size_t j = 0; assigned < total; j = (j + 1) % n) {
    ++alloc[j];
    ++assigned;
  }

  const auto workspace = options.workspace
                             ? options.workspace
                             : std::make_shared<core::LatticeWorkspace>();
  // A quarantined incumbent (supervised mode only) leaves `best` invalid:
  // the first candidate that scores successfully then takes over.
  bool best_valid = false;
  double best = 0.0;
  const std::optional<double> seed_value = supervised_score(
      scenario, alloc, options, workspace,
      static_cast<std::size_t>(result.evaluations), result.supervision);
  result.evaluations = 1;
  if (seed_value.has_value()) {
    best = *seed_value;
    best_valid = true;
  }
  const auto better = [maximize](double candidate, double incumbent) {
    return maximize ? candidate > incumbent : candidate < incumbent;
  };

  int step = std::max(
      1, static_cast<int>(std::lround(total * options.coarse_step_fraction)));
  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    // Coordinate moves: shift `step` tasks from donor i to recipient j.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const int moved = std::min(step, alloc[i]);
        if (moved == 0) continue;
        std::vector<int> candidate = alloc;
        candidate[i] -= moved;
        candidate[j] += moved;
        const std::optional<double> value = supervised_score(
            scenario, candidate, options, workspace,
            static_cast<std::size_t>(result.evaluations), result.supervision);
        ++result.evaluations;
        if (!value.has_value()) continue;  // quarantined: not an improvement
        if (!best_valid || better(*value, best)) {
          best = *value;
          best_valid = true;
          alloc = std::move(candidate);
          improved = true;
        }
      }
    }
    if (!improved) {
      if (step == 1) break;
      step = std::max(1, step / 2);
    }
  }
  result.allocation = std::move(alloc);
  result.value =
      best_valid ? best : std::numeric_limits<double>::quiet_NaN();
  result.replicated_value = std::numeric_limits<double>::quiet_NaN();

  // Replication post-pass: the reallocation winner fixed, sweep the factor
  // axis by Monte Carlo (common random numbers across factors) and keep the
  // best — the (reallocation × replication) search's second coordinate.
  if (!options.replication_factors.empty()) {
    core::DcsScenario placed = with_allocation(scenario, result.allocation);
    if (options.objective == Objective::kMeanExecutionTime) {
      for (core::ServerSpec& s : placed.servers) s.failure = nullptr;
    }
    const core::DtrPolicy identity(placed.size());
    bool have_best = false;
    double best_replicated = 0.0;
    for (const int factor : options.replication_factors) {
      AGEDTR_REQUIRE(factor >= 1,
                     "optimal_allocation: replication factors must be >= 1");
      sim::MonteCarloOptions mc;
      mc.replications = options.replications;
      mc.seed = options.seed;
      mc.deadline = options.deadline;
      mc.pool = options.pool;
      mc.simulator.faults = options.replication_faults;
      mc.simulator.replication =
          core::make_uniform_replication(placed, identity, factor);
      mc.stream_split = sim::StreamSplit::kCounter;  // same draws for every factor
      const sim::MonteCarloMetrics metrics =
          sim::run_monte_carlo(placed, identity, mc);
      ++result.evaluations;
      double value = 0.0;
      switch (options.objective) {
        case Objective::kMeanExecutionTime:
          value = metrics.mean_completion_time.center;
          break;
        case Objective::kQos:
          value = metrics.qos.center;
          break;
        case Objective::kReliability:
          value = metrics.reliability.center;
          break;
      }
      if (!have_best || better(value, best_replicated)) {
        best_replicated = value;
        have_best = true;
        result.replication_factor = factor;
        result.replicated_value = value;
      }
    }
  }
  return result;
}

}  // namespace agedtr::policy
