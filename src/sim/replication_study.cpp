#include "agedtr/sim/replication_study.hpp"

#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "agedtr/core/replication.hpp"
#include "agedtr/core/replication_bounds.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::sim {

namespace {

metrics::Histogram& study_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "replication.study_seconds", metrics::exponential_buckets(1e-2, 4.0, 10),
      "wall time of one run_replication_study call (the full grid)");
  return h;
}

}  // namespace

std::vector<ReplicationStudyRow> run_replication_study(
    const core::DcsScenario& scenario, const core::DtrPolicy& policy,
    const ReplicationStudyOptions& options) {
  scenario.validate();
  AGEDTR_REQUIRE(!options.factors.empty(),
                 "run_replication_study: need at least one factor");
  AGEDTR_REQUIRE(!options.slowdown_intensities.empty(),
                 "run_replication_study: need at least one intensity");
  for (const int factor : options.factors) {
    AGEDTR_REQUIRE(factor >= 1,
                   "run_replication_study: factors must be >= 1");
  }
  bool any_slowdown = false;
  for (const double intensity : options.slowdown_intensities) {
    AGEDTR_REQUIRE(intensity >= 0.0,
                   "run_replication_study: intensities must be >= 0");
    if (intensity > 0.0) any_slowdown = true;
  }
  if (any_slowdown) {
    AGEDTR_REQUIRE(options.base_slowdown.active(),
                   "run_replication_study: positive intensities need an "
                   "active base slowdown process");
    options.base_slowdown.validate("slowdown");
  }
  if (options.analytic_bounds) {
    for (std::size_t j = 0; j < scenario.size(); ++j) {
      AGEDTR_REQUIRE(scenario.servers[j].failure == nullptr,
                     "run_replication_study: analytic bounds require a "
                     "reliable scenario");
    }
    if (any_slowdown) {
      AGEDTR_REQUIRE(options.base_slowdown.factor > 0.0,
                     "run_replication_study: analytic bounds under "
                     "slowdowns need factor > 0 (a permanent stall has no "
                     "finite upper bound)");
    }
  }
  metrics::TraceSpan span("replication.study", "sim", &study_seconds());

  // The bounds depend on (factor, worst-case slowdown factor) only, not on
  // the intensity itself; memoize so the inner intensity loop is pure MC.
  std::map<std::pair<int, double>, core::ReplicationBounds> bound_memo;
  const auto bounds_for = [&](int factor, double phi,
                              const core::ReplicationPlan& plan) {
    const std::pair<int, double> key{factor, phi};
    if (const auto it = bound_memo.find(key); it != bound_memo.end()) {
      return it->second;
    }
    core::ReplicationBoundsOptions bopts;
    bopts.deadline = options.deadline;
    bopts.slowdown_factor = phi;
    bopts.budget = options.budget;
    const core::ReplicationBounds bounds =
        core::replication_completion_bounds(scenario, policy, plan, bopts);
    bound_memo.emplace(key, bounds);
    return bounds;
  };

  std::vector<ReplicationStudyRow> rows;
  rows.reserve(options.factors.size() * options.slowdown_intensities.size());
  for (const int factor : options.factors) {
    const core::ReplicationPlan plan =
        core::make_uniform_replication(scenario, policy, factor);
    for (const double intensity : options.slowdown_intensities) {
      ReplicationStudyRow row;
      row.factor = factor;
      row.intensity = intensity;

      MonteCarloOptions mc;
      mc.replications = options.replications;
      mc.seed = options.seed;
      mc.deadline = options.deadline;
      mc.pool = options.pool;
      mc.simulator.replication = plan;
      // Counter-based streams for the whole grid: every cell sees the same
      // draw sequences (common random numbers), so differences across
      // cells are the treatment, not the noise.
      mc.stream_split = StreamSplit::kCounter;
      if (intensity > 0.0) {
        mc.simulator.faults.slowdown = options.base_slowdown;
        mc.simulator.faults.slowdown.rate *= intensity;
      }
      const MonteCarloMetrics metrics = run_monte_carlo(scenario, policy, mc);
      row.mc_mean = metrics.mean_completion_time.center;
      row.mc_mean_halfwidth = metrics.mean_completion_time.half_width();
      row.mc_qos = metrics.qos.center;
      row.replicas_cancelled = metrics.replicas_cancelled;
      row.slowdowns = metrics.fault_totals.slowdowns;
      row.truncated = metrics.truncated;

      if (options.analytic_bounds) {
        // The worst case the MC run can experience: never slowed when the
        // intensity is 0, slowed to the process's factor otherwise.
        const double phi =
            intensity > 0.0 ? options.base_slowdown.factor : 1.0;
        const core::ReplicationBounds bounds = bounds_for(factor, phi, plan);
        row.bound_lower = bounds.mean_lower;
        row.bound_upper = bounds.mean_upper;
        row.qos_lower = bounds.qos_lower;
        row.qos_upper = bounds.qos_upper;
      } else {
        row.bound_upper = std::numeric_limits<double>::infinity();
      }
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace agedtr::sim
