#include "agedtr/sim/monte_carlo.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::sim {

namespace {

metrics::Counter& replications_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "montecarlo.replications_total", "simulation replications executed");
  return c;
}

metrics::Histogram& run_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "montecarlo.run_seconds", metrics::exponential_buckets(1e-3, 4.0, 10),
      "wall time of one run_monte_carlo call (all replications)");
  return h;
}

}  // namespace

MonteCarloMetrics run_monte_carlo(const core::DcsScenario& scenario,
                                  const core::DtrPolicy& policy,
                                  const MonteCarloOptions& options) {
  AGEDTR_REQUIRE(options.replications >= 2,
                 "run_monte_carlo: need at least two replications");
  metrics::TraceSpan span("montecarlo.run", "sim", &run_seconds());
  const DcsSimulator simulator(scenario, options.simulator);
  const std::size_t reps = options.replications;
  const std::size_t n = scenario.size();

  std::vector<double> times(reps, 0.0);
  std::vector<char> completed(reps, 0);
  std::vector<char> truncated(reps, 0);
  std::vector<double> busy(reps * n, 0.0);
  std::vector<FaultStats> fault_stats(reps);
  std::vector<std::size_t> cancelled(reps, 0);

  // kAuto: the historical hash-based streams, unless the run replicates —
  // replicated studies are new, so they get counter-based streams without
  // perturbing any pinned unreplicated result.
  const bool replicating = options.simulator.replication.has_value() &&
                           !options.simulator.replication->is_identity();
  const bool counter_streams =
      options.stream_split == StreamSplit::kCounter ||
      (options.stream_split == StreamSplit::kAuto && replicating);

  // Replication r always uses stream r, supervised or not, retried or not —
  // results stay bit-identical regardless of scheduling or retry history.
  const auto simulate_one = [&](std::size_t r) {
    replications_counter().add();
    const auto stream = static_cast<std::uint64_t>(r);
    random::Rng rng = counter_streams
                          ? random::make_counter_rng(options.seed, stream)
                          : random::make_replication_rng(options.seed, stream);
    const SimResult result = simulator.run(policy, rng);
    completed[r] = result.completed ? 1 : 0;
    truncated[r] = result.truncated ? 1 : 0;
    times[r] = result.completion_time;
    for (std::size_t j = 0; j < n; ++j) {
      busy[r * n + j] = result.busy_time[j];
    }
    fault_stats[r] = result.faults;
    cancelled[r] = result.replicas_cancelled;
  };

  MonteCarloMetrics metrics;
  if (options.supervise.has_value()) {
    metrics.supervision = Supervisor(*options.supervise)
                              .run(reps, [&](std::size_t r,
                                             const CancelToken& token) {
                                token.check("run_monte_carlo");
                                simulate_one(r);
                              });
  } else {
    ThreadPool& pool = options.pool ? *options.pool : ThreadPool::global();
    pool.parallel_for(0, reps, simulate_one);
  }

  // Quarantined replications were never simulated: exclude them from every
  // denominator instead of letting them masquerade as failures.
  std::vector<char> quarantined(reps, 0);
  for (const QuarantineEntry& q : metrics.supervision.quarantined) {
    quarantined[q.index] = 1;
  }
  const std::size_t effective =
      reps - metrics.supervision.quarantined.size();

  metrics.replications = reps;
  for (std::size_t r = 0; r < reps; ++r) {
    if (quarantined[r]) continue;
    if (truncated[r]) ++metrics.truncated;
    metrics.fault_totals += fault_stats[r];
    metrics.replicas_cancelled += cancelled[r];
  }
  std::vector<double> finished_times;
  finished_times.reserve(reps);
  std::size_t within_deadline = 0;
  metrics.mean_busy_time.assign(n, 0.0);
  for (std::size_t r = 0; r < reps; ++r) {
    if (quarantined[r] || !completed[r]) continue;
    ++metrics.completed;
    finished_times.push_back(times[r]);
    if (options.deadline > 0.0 && times[r] < options.deadline) {
      ++within_deadline;
    }
    for (std::size_t j = 0; j < n; ++j) {
      metrics.mean_busy_time[j] += busy[r * n + j];
    }
  }
  metrics.all_completed = metrics.completed == reps;
  if (effective > 0) {
    metrics.reliability =
        stats::proportion_confidence_interval(metrics.completed, effective);
    if (options.deadline > 0.0) {
      metrics.qos =
          stats::proportion_confidence_interval(within_deadline, effective);
    }
  }
  if (finished_times.size() >= 2) {
    metrics.mean_completion_time =
        stats::mean_confidence_interval(finished_times);
    for (double& b : metrics.mean_busy_time) {
      b /= static_cast<double>(metrics.completed);
    }
  }
  return metrics;
}

}  // namespace agedtr::sim
