#include "agedtr/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "agedtr/dist/sum_iid.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Event {
  enum class Kind {
    kServiceComplete,
    kFailure,
    kGroupArrival,
    kGroupExpired,  // sender exhausted the retransmission budget
    kFnArrival,
    kInfoBroadcast,
    kInfoArrival,
    kShock,          // common-cause failure shock (fault injection)
    kStallBegin,     // transient full service stall (fault injection)
    kSlowdownBegin,  // transient rate-scaling slowdown (fault injection)
    kDecisionEpoch,  // rolling-horizon re-decision point
  };
  double time = 0.0;
  Kind kind = Kind::kServiceComplete;
  std::size_t a = 0;  // server (service/failure/broadcast), sender otherwise
  std::size_t b = 0;  // receiver for transfers
  int payload = 0;    // tasks in a group / queue length in an info packet
  std::uint64_t gen = 0;  // service generation (stale-completion filter)
  std::uint64_t seq = 0;  // FIFO tie-break for equal times
  std::uint32_t unit = 0;     // work unit of a group event
  std::uint32_t replica = 0;  // replica index within the unit's set

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

/// Result of pushing one payload through a lossy channel: when delivered,
/// the delivering attempt starts `start_offset` after the logical send time
/// (the dropped attempts' RTOs); when not, `start_offset` is when the
/// sender gives up. Draws nothing from the RNG on an inactive channel.
struct SendOutcome {
  bool delivered = true;
  double start_offset = 0.0;
  std::size_t retries = 0;
};

SendOutcome attempt_send(const ChannelFaults& channel, random::Rng& rng) {
  SendOutcome out;
  if (!channel.active()) return out;
  double rto = channel.retransmit_timeout;
  for (int attempt = 0;; ++attempt) {
    if (rng.next_double() >= channel.drop_probability) return out;
    out.start_offset += rto;  // sender notices the loss after the RTO
    rto *= channel.backoff_factor;
    if (attempt == channel.max_retries) {
      out.delivered = false;
      return out;
    }
    ++out.retries;
  }
}

/// One replica's share of a work unit sitting in a server's FIFO.
struct Segment {
  std::size_t unit = 0;
  std::size_t replica = 0;
  int remaining = 0;
};

/// Race bookkeeping for one work unit across its replica set.
struct UnitState {
  bool done = false;
  int live = 0;                // replicas not yet failed/expired/cancelled
  std::vector<char> alive;     // per replica
  std::vector<char> arrived;   // copy materialized in its host's queue
};

/// Ledger entry for one group transmission — enough to reconstruct the
/// C(t) component of a snapshot without touching the event queue. Recorded
/// only when a run needs snapshots (rolling or capture_final_state).
struct Flight {
  std::size_t unit = 0;
  std::size_t replica = 0;
  double depart = 0.0;   // logical send time (ages count from here)
  double arrival = 0.0;  // delivery time, or give-up time when dropped
  bool delivered = true;
};

/// Ledger entry for one FN packet transmission (the off-diagonal F/a_F
/// reconstruction): delivered packets flip the receiver's perception.
struct FnFlight {
  std::size_t from = 0;
  std::size_t to = 0;
  double depart = 0.0;
  double arrival = 0.0;
};

}  // namespace

DcsSimulator::DcsSimulator(core::DcsScenario scenario, SimulatorOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  scenario_.validate();
  options_.faults.validate();
  if (options_.queue_info_period > 0.0 && !options_.info_transfer) {
    AGEDTR_REQUIRE(!scenario_.fn_transfer.empty(),
                   "DcsSimulator: queue-info exchange needs a delay law "
                   "(set info_transfer or provide FN laws)");
  }
}

SimResult DcsSimulator::run(const core::DtrPolicy& policy,
                            random::Rng& rng) const {
  return run_impl(policy, rng, nullptr);
}

SimResult DcsSimulator::run_rolling(const core::DtrPolicy& initial,
                                    const RollingOptions& rolling,
                                    random::Rng& rng) const {
  double prev = 0.0;
  bool any_positive = false;
  for (const double epoch : rolling.epochs) {
    AGEDTR_REQUIRE(std::isfinite(epoch) && epoch >= 0.0,
                   "run_rolling: decision epochs must be finite and >= 0");
    AGEDTR_REQUIRE(epoch >= prev,
                   "run_rolling: decision epochs must be sorted ascending");
    prev = epoch;
    if (epoch > 0.0) any_positive = true;
  }
  AGEDTR_REQUIRE(!any_positive || static_cast<bool>(rolling.redecide),
                 "run_rolling: scheduled epochs need a re-decision callback");
  return run_impl(initial, rng, &rolling);
}

SimResult DcsSimulator::run_impl(const core::DtrPolicy& policy,
                                 random::Rng& rng,
                                 const RollingOptions* rolling) const {
  const std::size_t n = scenario_.size();
  const std::vector<core::ServerWorkload> workloads =
      core::apply_policy(scenario_, policy);
  const FaultPlan& faults = options_.faults;

  // The canonical unit order (enumerate_work_units) interleaves with the
  // t = 0 loop below: for each destination j, the local block first, then
  // the inbound groups in apply_policy's source order. Re-decisions append
  // fresh singleton units, so the vector is mutable under rolling.
  std::vector<core::WorkUnit> units =
      core::enumerate_work_units(scenario_, policy);
  std::vector<std::vector<std::size_t>> replica_sets;
  if (options_.replication.has_value()) {
    options_.replication->validate(scenario_, policy);
    replica_sets = options_.replication->replica_sets;
  } else {
    replica_sets.resize(units.size());
    for (std::size_t u = 0; u < units.size(); ++u) {
      replica_sets[u] = {units[u].destination};
    }
  }
  // Only a plan that actually replicates draws extra randomness; identity
  // plans keep this run bit-identical to the unreplicated simulator.
  bool replicated = false;
  for (const std::vector<std::size_t>& hosts : replica_sets) {
    if (hosts.size() > 1) replicated = true;
  }

  SimResult result;
  result.tasks_lost.assign(n, 0);
  result.busy_time.assign(n, 0.0);
  result.tasks_served.assign(n, 0);
  result.failure_time.assign(n, kInf);

  std::vector<std::deque<Segment>> queue(n);
  std::vector<char> up(n, 1);
  std::vector<char> serving(n, 0);
  std::vector<double> service_started(n, 0.0);
  std::vector<double> service_sample(n, 0.0);
  // Fault-injection state. All of it stays at its initial value under a
  // null plan, in which case every fault hook below reduces to the seed
  // simulator's behavior without consuming RNG draws.
  std::vector<SlowdownWindow> stall_win(n);
  std::vector<SlowdownWindow> slow_win(n);
  std::vector<double> work_left(n, 0.0);
  std::vector<double> last_touch(n, 0.0);
  std::vector<double> service_pause(n, 0.0);
  std::vector<double> pending_completion(n, 0.0);
  std::vector<std::uint64_t> service_gen(n, 0);

  std::vector<UnitState> unit_state(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::size_t r = replica_sets[u].size();
    unit_state[u].live = static_cast<int>(r);
    unit_state[u].alive.assign(r, 1);
    unit_state[u].arrived.assign(r, 0);
  }
  std::size_t units_pending = units.size();

  // Snapshot support: the flight ledgers cost a push per transmission, so
  // they are kept only when somebody will actually read a snapshot. They
  // never touch the RNG, which is what keeps run() and empty-epoch
  // run_rolling() bit-identical with or without them.
  const bool track_flights =
      rolling != nullptr || options_.capture_final_state;
  std::vector<Flight> flights;
  std::vector<FnFlight> fn_flights;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;
  const auto push = [&](Event e) {
    e.seq = seq++;
    events.push(e);
  };
  const auto push_group = [&](double time, Event::Kind kind, std::size_t to,
                              int tasks, std::size_t u, std::size_t rep) {
    Event e;
    e.time = time;
    e.kind = kind;
    e.b = to;
    e.payload = tasks;
    e.unit = static_cast<std::uint32_t>(u);
    e.replica = static_cast<std::uint32_t>(rep);
    push(e);
  };
  const auto exp_sample = [&rng](double rate) {
    return -std::log1p(-rng.next_double()) / rate;
  };

  bool lost = false;
  const auto emit_fn_packets = [&](std::size_t j, double now) {
    if (!options_.model_fn_packets || scenario_.fn_transfer.empty()) return;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == j || !scenario_.fn_transfer[j][k]) continue;
      const SendOutcome send = attempt_send(faults.fn_channel, rng);
      result.faults.fn_retransmissions += send.retries;
      if (!send.delivered) {
        ++result.faults.fn_packets_dropped;
        continue;
      }
      const double arrival =
          now + send.start_offset + scenario_.fn_transfer[j][k]->sample(rng);
      push({arrival, Event::Kind::kFnArrival, j, k, 0, 0});
      if (track_flights) fn_flights.push_back({j, k, now, arrival});
    }
  };
  // A replica leaves the race: on the unit's last viable replica the
  // workload is lost (identity plans lose it on the first, exactly the
  // unreplicated semantics).
  const auto kill_replica = [&](std::size_t u, std::size_t rep) {
    UnitState& unit = unit_state[u];
    if (unit.done || !unit.alive[rep]) return;
    unit.alive[rep] = 0;
    if (--unit.live == 0) lost = true;
  };
  // Shared by natural failures and common-cause shocks.
  const auto fail_server = [&](std::size_t j, double now) {
    if (!up[j]) return;
    up[j] = 0;
    serving[j] = 0;
    result.failure_time[j] = now;
    for (const Segment& seg : queue[j]) {
      result.tasks_lost[j] += seg.remaining;
      kill_replica(seg.unit, seg.replica);
    }
    queue[j].clear();
    emit_fn_packets(j, now);
  };

  // Wall-clock completion of `work` natural service units started at `now`
  // under the pending degradation windows: stalled until the stall horizon,
  // served at rate `factor` inside the slowdown window, at rate 1 after.
  // Under a null plan both horizons are 0 and this is now + work — the seed
  // simulator's arithmetic, bit for bit.
  const auto completion_after = [&](std::size_t j, double now, double work) {
    double s = std::max(now, stall_win[j].until);
    const double slow_end = slow_win[j].until;
    if (slow_end > s) {
      const double phi = faults.slowdown.factor;
      if (phi <= 0.0) {
        s = slow_end;  // a zero-factor slowdown is a stall
      } else {
        const double slowed_capacity = phi * (slow_end - s);
        if (work <= slowed_capacity) return s + work / phi;
        work -= slowed_capacity;
        s = slow_end;
      }
    }
    return s + work;
  };
  // Advances server j's in-flight work to `now` using the rate profile in
  // effect since the last touch. Called before a window extends, so the
  // horizons seen here are the ones that actually governed the span.
  const auto update_progress = [&](std::size_t j, double now) {
    if (serving[j] && now > last_touch[j]) {
      const double start =
          std::min(std::max(last_touch[j], stall_win[j].until), now);
      if (start < now) {
        const double slow_end =
            std::min(std::max(slow_win[j].until, start), now);
        const double done = faults.slowdown.factor * (slow_end - start) +
                            (now - slow_end);
        work_left[j] = std::max(work_left[j] - done, 0.0);
      }
    }
    last_touch[j] = now;
  };
  const auto start_service = [&](std::size_t j, double now) {
    serving[j] = 1;
    service_started[j] = now;
    service_pause[j] = 0.0;
    service_sample[j] = scenario_.servers[j].service->sample(rng);
    work_left[j] = service_sample[j];
    last_touch[j] = now;
    pending_completion[j] = completion_after(j, now, work_left[j]);
    push({pending_completion[j], Event::Kind::kServiceComplete, j, 0, 0,
          service_gen[j]});
  };
  // Re-derives the pending completion after a degradation window extended;
  // the stale event is retired through the generation counter, and the
  // accumulated pause keeps busy_time equal to the natural work performed.
  const auto reschedule_service = [&](std::size_t j, double now) {
    pending_completion[j] = completion_after(j, now, work_left[j]);
    service_pause[j] =
        pending_completion[j] - service_started[j] - service_sample[j];
    ++service_gen[j];
    push({pending_completion[j], Event::Kind::kServiceComplete, j, 0, 0,
          service_gen[j]});
  };

  // --- t = 0: queues after the policy, groups in flight, failure clocks.
  std::size_t next_unit = 0;
  std::vector<std::size_t> local_unit(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    if (workloads[j].local_tasks > 0) {
      const std::size_t u = next_unit++;
      local_unit[j] = u;
      unit_state[u].arrived[0] = 1;
      queue[j].push_back({u, 0, workloads[j].local_tasks});
    }
    for (const core::ServerWorkload::Inbound& g : workloads[j].inbound) {
      const std::size_t u = next_unit++;
      const SendOutcome send = attempt_send(faults.group_channel, rng);
      result.faults.group_retransmissions += send.retries;
      if (!send.delivered) {
        push_group(send.start_offset, Event::Kind::kGroupExpired, j, g.tasks,
                   u, 0);
        if (track_flights) flights.push_back({u, 0, 0.0, send.start_offset,
                                              false});
        continue;
      }
      double transfer_time = g.transfer->sample(rng);
      if (g.per_task) {
        for (int t = 1; t < g.tasks; ++t) {
          transfer_time += g.transfer->sample(rng);
        }
      }
      push_group(send.start_offset + transfer_time,
                 Event::Kind::kGroupArrival, j, g.tasks, u, 0);
      if (track_flights) {
        flights.push_back({u, 0, 0.0, send.start_offset + transfer_time,
                           true});
      }
    }
    if (scenario_.servers[j].failure) {
      push({scenario_.servers[j].failure->sample(rng), Event::Kind::kFailure,
            j, 0, 0, 0});
    }
  }
  AGEDTR_ASSERT(next_unit == units.size());
  // Replica fan-out: copies of each unit travel from the unit's origin to
  // their hosts (no transfer when the origin hosts the copy itself). Only a
  // genuinely replicating plan reaches these draws.
  if (replicated) {
    for (std::size_t u = 0; u < units.size(); ++u) {
      for (std::size_t k = 1; k < replica_sets[u].size(); ++k) {
        const std::size_t host = replica_sets[u][k];
        const std::size_t origin = units[u].origin;
        if (host == origin) {
          unit_state[u].arrived[k] = 1;
          queue[host].push_back({u, k, units[u].tasks});
          continue;
        }
        const SendOutcome send = attempt_send(faults.group_channel, rng);
        result.faults.group_retransmissions += send.retries;
        if (!send.delivered) {
          push_group(send.start_offset, Event::Kind::kGroupExpired, host,
                     units[u].tasks, u, k);
          if (track_flights) flights.push_back({u, k, 0.0, send.start_offset,
                                                false});
          continue;
        }
        const dist::DistPtr& law = scenario_.transfer[origin][host];
        double transfer_time = law->sample(rng);
        if (scenario_.transfer_scaling == core::TransferScaling::kPerTask) {
          for (int t = 1; t < units[u].tasks; ++t) {
            transfer_time += law->sample(rng);
          }
        }
        push_group(send.start_offset + transfer_time,
                   Event::Kind::kGroupArrival, host, units[u].tasks, u, k);
        if (track_flights) {
          flights.push_back({u, k, 0.0, send.start_offset + transfer_time,
                             true});
        }
      }
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (!queue[j].empty()) start_service(j, 0.0);
  }
  if (options_.queue_info_period > 0.0) {
    for (std::size_t j = 0; j < n; ++j) {
      push({options_.queue_info_period, Event::Kind::kInfoBroadcast, j, 0, 0,
            0});
    }
  }
  if (faults.shock_rate > 0.0) {
    push({exp_sample(faults.shock_rate), Event::Kind::kShock, 0, 0, 0, 0});
  }
  if (faults.stall_rate > 0.0) {
    for (std::size_t j = 0; j < n; ++j) {
      push({exp_sample(faults.stall_rate), Event::Kind::kStallBegin, j, 0, 0,
            0});
    }
  }
  if (faults.slowdown.active()) {
    for (std::size_t j = 0; j < n; ++j) {
      push({exp_sample(faults.slowdown.rate), Event::Kind::kSlowdownBegin, j,
            0, 0, 0});
    }
  }
  if (rolling != nullptr) {
    // Epoch 0 coincides with the initial decision (the policy this run
    // started from *is* the epoch-0 decision), so only positive epochs are
    // scheduled — which also makes the epoch-at-0 run identical to the
    // one-shot run by construction.
    for (const double epoch : rolling->epochs) {
      if (epoch > 0.0) push({epoch, Event::Kind::kDecisionEpoch, 0, 0, 0, 0});
    }
  }

  // First-completion cancellation: replicas leave the race in set order, a
  // deterministic sweep. A cancelled in-flight task is aborted through the
  // generation counter and its host immediately starts its next segment.
  const auto cancel_other_replicas = [&](std::size_t u, std::size_t winner,
                                         double now) {
    UnitState& unit = unit_state[u];
    for (std::size_t k = 0; k < replica_sets[u].size(); ++k) {
      if (k == winner || !unit.alive[k]) continue;
      unit.alive[k] = 0;
      --unit.live;
      ++result.replicas_cancelled;
      if (!unit.arrived[k]) continue;  // its arrival event is now stale
      const std::size_t h = replica_sets[u][k];
      if (!up[h]) continue;  // the host died and already dropped the queue
      auto& q = queue[h];
      bool found = false;
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->unit == u && it->replica == k) {
          const bool in_service = serving[h] && it == q.begin();
          q.erase(it);
          found = true;
          if (in_service) {
            ++service_gen[h];
            serving[h] = 0;
            if (!q.empty()) start_service(h, now);
          }
          break;
        }
      }
      AGEDTR_ASSERT(found);
    }
  };

  // Reconstructs the hybrid state S(now) of Section II-B from the live
  // bookkeeping: queue lengths, survivors, perception (via delivered FN
  // packets), in-transit groups/packets with their ages, and the service /
  // failure clock ages. Read-only — in particular the service progress is
  // replayed without committing it, so snapshotting never perturbs later
  // floating-point accounting.
  const auto build_state = [&](double now) {
    core::SystemState snap;
    snap.tasks.assign(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      for (const Segment& seg : queue[j]) snap.tasks[j] += seg.remaining;
    }
    snap.up.assign(up.begin(), up.end());
    snap.perceived.assign(n, std::vector<char>(n, 1));
    for (std::size_t j = 0; j < n; ++j) snap.perceived[j][j] = up[j];
    for (const FnFlight& f : fn_flights) {
      if (f.arrival <= now) {
        snap.perceived[f.to][f.from] = 0;
      } else {
        snap.fn_packets.push_back(
            {f.from, f.to, scenario_.fn_transfer[f.from][f.to],
             now - f.depart});
      }
    }
    for (const Flight& f : flights) {
      if (!f.delivered || f.arrival <= now) continue;
      if (unit_state[f.unit].done || !unit_state[f.unit].alive[f.replica]) {
        continue;
      }
      core::TransitGroup g;
      g.from = units[f.unit].origin;
      g.to = replica_sets[f.unit][f.replica];
      g.tasks = units[f.unit].tasks;
      const dist::DistPtr& base = scenario_.transfer[g.from][g.to];
      g.transfer =
          scenario_.transfer_scaling == core::TransferScaling::kPerTask
              ? dist::sum_iid(base, static_cast<unsigned>(g.tasks))
              : base;
      g.age = now - f.depart;
      snap.groups.push_back(std::move(g));
    }
    snap.service_age.assign(n, 0.0);
    snap.failure_age.assign(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (up[j] && serving[j]) {
        // update_progress's arithmetic, replayed without mutation.
        double left = work_left[j];
        if (now > last_touch[j]) {
          const double start =
              std::min(std::max(last_touch[j], stall_win[j].until), now);
          if (start < now) {
            const double slow_end =
                std::min(std::max(slow_win[j].until, start), now);
            const double done = faults.slowdown.factor * (slow_end - start) +
                                (now - slow_end);
            left = std::max(left - done, 0.0);
          }
        }
        snap.service_age[j] = std::max(service_sample[j] - left, 0.0);
      }
      // Forward simulation samples every failure clock once at t = 0, so a
      // surviving clock has simply been running since then.
      if (up[j] && scenario_.servers[j].failure) snap.failure_age[j] = now;
    }
    return snap;
  };

  // Applies a mid-run re-decision: for every positive L(i, j) up to
  // L(i, j) tasks are carved from the *tail* of i's queue (the work that
  // would be served last) and shipped to j as a fresh singleton work unit
  // through the usual group channel. Tasks pinned in service and units
  // under replication never move; pledges that cannot be honored are
  // counted in rolling.moves_clamped rather than invented.
  const auto apply_reallocation = [&](const core::DtrPolicy& fresh,
                                      double now) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        int want = fresh(i, j);
        if (want <= 0) continue;
        if (!up[i] || !up[j]) {
          result.rolling.moves_clamped += want;
          continue;
        }
        int take = 0;
        for (auto it = queue[i].rbegin();
             it != queue[i].rend() && want > 0; ++it) {
          if (replica_sets[it->unit].size() != 1) continue;  // replicated
          int avail = it->remaining;
          if (serving[i] && std::next(it) == queue[i].rend()) {
            avail -= 1;  // the task in service is pinned to its server
          }
          if (avail <= 0) continue;
          const int grab = std::min(avail, want);
          it->remaining -= grab;
          take += grab;
          want -= grab;
        }
        result.rolling.moves_clamped += want;
        // Segments emptied by the carve (never the in-service head) retire
        // their unit: nothing of it remains anywhere, and the moved tasks
        // live on as the new unit below.
        for (auto it = queue[i].begin(); it != queue[i].end();) {
          if (it->remaining == 0) {
            AGEDTR_ASSERT(!unit_state[it->unit].done);
            unit_state[it->unit].done = true;
            --units_pending;
            it = queue[i].erase(it);
          } else {
            ++it;
          }
        }
        if (take == 0) continue;
        const std::size_t u = units.size();
        units.push_back({i, j, take});
        replica_sets.push_back({j});
        UnitState st;
        st.live = 1;
        st.alive.assign(1, 1);
        st.arrived.assign(1, 0);
        unit_state.push_back(std::move(st));
        ++units_pending;
        result.rolling.tasks_reallocated += take;
        const SendOutcome send = attempt_send(faults.group_channel, rng);
        result.faults.group_retransmissions += send.retries;
        if (!send.delivered) {
          push_group(now + send.start_offset, Event::Kind::kGroupExpired, j,
                     take, u, 0);
          flights.push_back({u, 0, now, now + send.start_offset, false});
          continue;
        }
        const dist::DistPtr& law = scenario_.transfer[i][j];
        double transfer_time = law->sample(rng);
        if (scenario_.transfer_scaling == core::TransferScaling::kPerTask) {
          for (int t = 1; t < take; ++t) transfer_time += law->sample(rng);
        }
        const double arrival = now + send.start_offset + transfer_time;
        push_group(arrival, Event::Kind::kGroupArrival, j, take, u, 0);
        flights.push_back({u, 0, now, arrival, true});
      }
    }
  };

  double last_progress_time = 0.0;
  double end_time = 0.0;
  while (!events.empty()) {
    if (result.events_processed >= options_.max_events) {
      // A runtime budget, not a precondition: report the truncation and let
      // the caller decide (Monte-Carlo sweeps count these separately).
      result.truncated = true;
      break;
    }
    const Event e = events.top();
    events.pop();
    ++result.events_processed;
    end_time = e.time;
    switch (e.kind) {
      case Event::Kind::kServiceComplete: {
        const std::size_t j = e.a;
        // Stale after a failure, a cancellation, or a window reschedule.
        if (!up[j] || !serving[j] || e.gen != service_gen[j]) break;
        AGEDTR_ASSERT(!queue[j].empty());
        Segment& seg = queue[j].front();
        --seg.remaining;
        ++result.tasks_served[j];
        result.busy_time[j] += e.time - service_started[j] - service_pause[j];
        last_progress_time = e.time;
        if (seg.remaining == 0) {
          // This replica finished its whole unit: first completion wins
          // (ties broken by event schedule order) and cancels the rest.
          const std::size_t u = seg.unit;
          const std::size_t winner = seg.replica;
          queue[j].pop_front();
          AGEDTR_ASSERT(!unit_state[u].done);
          unit_state[u].done = true;
          --units_pending;
          cancel_other_replicas(u, winner, e.time);
        }
        serving[j] = 0;
        if (!queue[j].empty()) start_service(j, e.time);
        break;
      }
      case Event::Kind::kFailure: {
        fail_server(e.a, e.time);
        break;
      }
      case Event::Kind::kGroupArrival: {
        const std::size_t j = e.b;
        const std::size_t u = e.unit;
        const std::size_t rep = e.replica;
        if (unit_state[u].done || !unit_state[u].alive[rep]) {
          break;  // the race ended (or this copy died) while in transit
        }
        if (!up[j]) {
          // Delivered to a failed server: the copy is stranded (reliable
          // message passing forbids dropping it in the network, and failed
          // servers provide no recovery).
          result.tasks_lost[j] += e.payload;
          kill_replica(u, rep);
          break;
        }
        unit_state[u].arrived[rep] = 1;
        queue[j].push_back({u, rep, e.payload});
        if (!serving[j]) start_service(j, e.time);
        break;
      }
      case Event::Kind::kGroupExpired: {
        // Every transmission attempt was dropped: this copy's tasks are
        // stranded in the network; the unit survives iff a sibling does.
        result.faults.tasks_lost_in_network += e.payload;
        kill_replica(e.unit, e.replica);
        break;
      }
      case Event::Kind::kFnArrival: {
        result.fn_deliveries.push_back({e.a, e.b, e.time});
        break;
      }
      case Event::Kind::kInfoBroadcast: {
        const std::size_t j = e.a;
        if (up[j]) {
          int queue_len = 0;
          for (const Segment& seg : queue[j]) queue_len += seg.remaining;
          const dist::DistPtr& law = options_.info_transfer;
          for (std::size_t k = 0; k < n; ++k) {
            if (k == j) continue;
            const dist::DistPtr& delay =
                law ? law : scenario_.fn_transfer[j][k];
            if (!delay) continue;
            push({e.time + delay->sample(rng), Event::Kind::kInfoArrival, j,
                  k, queue_len, 0});
          }
          push({e.time + options_.queue_info_period,
                Event::Kind::kInfoBroadcast, j, 0, 0, 0});
        }
        break;
      }
      case Event::Kind::kInfoArrival:
        break;  // estimates are not consumed mid-run (policies act at t = 0)
      case Event::Kind::kShock: {
        ++result.faults.shocks;
        for (std::size_t j = 0; j < n; ++j) {
          if (!up[j]) continue;
          if (rng.next_double() < faults.shock_kill_probability) {
            ++result.faults.shock_failures;
            fail_server(j, e.time);
          }
        }
        // Reschedule only while somebody is left to strike, so a dead
        // system does not generate events forever.
        if (std::any_of(up.begin(), up.end(), [](char u) { return u != 0; })) {
          push({e.time + exp_sample(faults.shock_rate), Event::Kind::kShock,
                0, 0, 0, 0});
        }
        break;
      }
      case Event::Kind::kStallBegin: {
        const std::size_t j = e.a;
        if (!up[j]) break;  // dead servers stall no more (stop the stream)
        ++result.faults.stalls;
        const double duration = faults.stall_duration->sample(rng);
        // Progress up to now ran under the old horizons; only then may the
        // window extend. Overlapping windows merge instead of stacking.
        update_progress(j, e.time);
        const double fresh = stall_win[j].extend(e.time, duration);
        result.faults.total_stall_time += fresh;
        if (serving[j] && fresh > 0.0) reschedule_service(j, e.time);
        push({e.time + exp_sample(faults.stall_rate),
              Event::Kind::kStallBegin, j, 0, 0, 0});
        break;
      }
      case Event::Kind::kSlowdownBegin: {
        const std::size_t j = e.a;
        if (!up[j]) break;
        ++result.faults.slowdowns;
        const double duration = faults.slowdown.duration->sample(rng);
        update_progress(j, e.time);
        const double fresh = slow_win[j].extend(e.time, duration);
        result.faults.total_slowdown_time += fresh;
        if (serving[j] && fresh > 0.0) reschedule_service(j, e.time);
        push({e.time + exp_sample(faults.slowdown.rate),
              Event::Kind::kSlowdownBegin, j, 0, 0, 0});
        break;
      }
      case Event::Kind::kDecisionEpoch: {
        // Only reachable mid-workload: the loop exits right after the event
        // that completes or loses the run, so a popped epoch always sees
        // pending work.
        AGEDTR_ASSERT(rolling != nullptr);
        ++result.rolling.epochs_fired;
        const core::SystemState snap = build_state(e.time);
        const core::DtrPolicy fresh = rolling->redecide(snap);
        AGEDTR_REQUIRE(fresh.size() == n,
                       "run_rolling: re-decision policy size mismatch");
        apply_reallocation(fresh, e.time);
        break;
      }
    }
    if (lost) break;
    if (units_pending == 0) break;
  }
  result.completed = !lost && !result.truncated && units_pending == 0;
  result.completion_time = result.completed ? last_progress_time : kInf;
  if (options_.capture_final_state) result.final_state = build_state(end_time);
  return result;
}

}  // namespace agedtr::sim
