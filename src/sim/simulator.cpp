#include "agedtr/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "agedtr/util/error.hpp"

namespace agedtr::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Event {
  enum class Kind {
    kServiceComplete,
    kFailure,
    kGroupArrival,
    kFnArrival,
    kInfoBroadcast,
    kInfoArrival,
  };
  double time = 0.0;
  Kind kind = Kind::kServiceComplete;
  std::size_t a = 0;  // server (service/failure/broadcast), sender otherwise
  std::size_t b = 0;  // receiver for transfers
  int payload = 0;    // tasks in a group / queue length in an info packet
  std::uint64_t seq = 0;  // FIFO tie-break for equal times

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

}  // namespace

DcsSimulator::DcsSimulator(core::DcsScenario scenario, SimulatorOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  scenario_.validate();
  if (options_.queue_info_period > 0.0 && !options_.info_transfer) {
    AGEDTR_REQUIRE(!scenario_.fn_transfer.empty(),
                   "DcsSimulator: queue-info exchange needs a delay law "
                   "(set info_transfer or provide FN laws)");
  }
}

SimResult DcsSimulator::run(const core::DtrPolicy& policy,
                            random::Rng& rng) const {
  const std::size_t n = scenario_.size();
  const std::vector<core::ServerWorkload> workloads =
      core::apply_policy(scenario_, policy);

  SimResult result;
  result.tasks_lost.assign(n, 0);
  result.busy_time.assign(n, 0.0);
  result.tasks_served.assign(n, 0);
  result.failure_time.assign(n, kInf);

  std::vector<int> queue(n);
  std::vector<char> up(n, 1);
  std::vector<char> serving(n, 0);
  std::vector<double> service_started(n, 0.0);
  int groups_in_flight = 0;
  int remaining_tasks = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;
  const auto push = [&](Event e) {
    e.seq = seq++;
    events.push(e);
  };

  // --- t = 0: queues after the policy, groups in flight, failure clocks.
  for (std::size_t j = 0; j < n; ++j) {
    queue[j] = workloads[j].local_tasks;
    remaining_tasks += workloads[j].total_tasks();
    for (const core::ServerWorkload::Inbound& g : workloads[j].inbound) {
      ++groups_in_flight;
      double transfer_time = g.transfer->sample(rng);
      if (g.per_task) {
        for (int t = 1; t < g.tasks; ++t) {
          transfer_time += g.transfer->sample(rng);
        }
      }
      push({transfer_time, Event::Kind::kGroupArrival, 0, j, g.tasks, 0});
    }
    if (scenario_.servers[j].failure) {
      push({scenario_.servers[j].failure->sample(rng), Event::Kind::kFailure,
            j, 0, 0, 0});
    }
  }
  const auto start_service = [&](std::size_t j, double now) {
    serving[j] = 1;
    service_started[j] = now;
    push({now + scenario_.servers[j].service->sample(rng),
          Event::Kind::kServiceComplete, j, 0, 0, 0});
  };
  for (std::size_t j = 0; j < n; ++j) {
    if (queue[j] > 0) start_service(j, 0.0);
  }
  if (options_.queue_info_period > 0.0) {
    for (std::size_t j = 0; j < n; ++j) {
      push({options_.queue_info_period, Event::Kind::kInfoBroadcast, j, 0, 0,
            0});
    }
  }

  double last_progress_time = 0.0;
  bool lost = false;
  while (!events.empty()) {
    AGEDTR_REQUIRE(result.events_processed < options_.max_events,
                   "DcsSimulator: event budget exhausted");
    const Event e = events.top();
    events.pop();
    ++result.events_processed;
    switch (e.kind) {
      case Event::Kind::kServiceComplete: {
        const std::size_t j = e.a;
        if (!up[j] || !serving[j]) break;  // stale completion after failure
        --queue[j];
        --remaining_tasks;
        ++result.tasks_served[j];
        result.busy_time[j] += e.time - service_started[j];
        last_progress_time = e.time;
        if (queue[j] > 0) {
          start_service(j, e.time);
        } else {
          serving[j] = 0;
        }
        break;
      }
      case Event::Kind::kFailure: {
        const std::size_t j = e.a;
        if (!up[j]) break;
        up[j] = 0;
        serving[j] = 0;
        result.failure_time[j] = e.time;
        if (queue[j] > 0) {
          result.tasks_lost[j] += queue[j];
          lost = true;
        }
        if (options_.model_fn_packets && !scenario_.fn_transfer.empty()) {
          for (std::size_t k = 0; k < n; ++k) {
            if (k == j || !scenario_.fn_transfer[j][k]) continue;
            push({e.time + scenario_.fn_transfer[j][k]->sample(rng),
                  Event::Kind::kFnArrival, j, k, 0, 0});
          }
        }
        break;
      }
      case Event::Kind::kGroupArrival: {
        const std::size_t j = e.b;
        --groups_in_flight;
        if (!up[j]) {
          // Delivered to a failed server: the tasks are stranded (reliable
          // message passing forbids dropping them in the network, and
          // failed servers provide no recovery).
          result.tasks_lost[j] += e.payload;
          lost = true;
          break;
        }
        queue[j] += e.payload;
        if (!serving[j]) start_service(j, e.time);
        break;
      }
      case Event::Kind::kFnArrival: {
        result.fn_deliveries.push_back({e.a, e.b, e.time});
        break;
      }
      case Event::Kind::kInfoBroadcast: {
        const std::size_t j = e.a;
        if (up[j]) {
          const dist::DistPtr& law = options_.info_transfer;
          for (std::size_t k = 0; k < n; ++k) {
            if (k == j) continue;
            const dist::DistPtr& delay =
                law ? law : scenario_.fn_transfer[j][k];
            if (!delay) continue;
            push({e.time + delay->sample(rng), Event::Kind::kInfoArrival, j,
                  k, queue[j], 0});
          }
          push({e.time + options_.queue_info_period,
                Event::Kind::kInfoBroadcast, j, 0, 0, 0});
        }
        break;
      }
      case Event::Kind::kInfoArrival:
        break;  // estimates are not consumed mid-run (policies act at t = 0)
    }
    if (lost) break;
    if (remaining_tasks == 0 && groups_in_flight == 0) {
      result.completed = true;
      result.completion_time = last_progress_time;
      return result;
    }
  }
  result.completed = !lost && remaining_tasks == 0 && groups_in_flight == 0;
  result.completion_time = result.completed ? last_progress_time : kInf;
  return result;
}

}  // namespace agedtr::sim
