#include "agedtr/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Event {
  enum class Kind {
    kServiceComplete,
    kFailure,
    kGroupArrival,
    kGroupExpired,  // sender exhausted the retransmission budget
    kFnArrival,
    kInfoBroadcast,
    kInfoArrival,
    kShock,       // common-cause failure shock (fault injection)
    kStallBegin,  // transient service stall (fault injection)
  };
  double time = 0.0;
  Kind kind = Kind::kServiceComplete;
  std::size_t a = 0;  // server (service/failure/broadcast), sender otherwise
  std::size_t b = 0;  // receiver for transfers
  int payload = 0;    // tasks in a group / queue length in an info packet
  std::uint64_t gen = 0;  // service generation (stale-completion filter)
  std::uint64_t seq = 0;  // FIFO tie-break for equal times

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

/// Result of pushing one payload through a lossy channel: when delivered,
/// the delivering attempt starts `start_offset` after the logical send time
/// (the dropped attempts' RTOs); when not, `start_offset` is when the
/// sender gives up. Draws nothing from the RNG on an inactive channel.
struct SendOutcome {
  bool delivered = true;
  double start_offset = 0.0;
  std::size_t retries = 0;
};

SendOutcome attempt_send(const ChannelFaults& channel, random::Rng& rng) {
  SendOutcome out;
  if (!channel.active()) return out;
  double rto = channel.retransmit_timeout;
  for (int attempt = 0;; ++attempt) {
    if (rng.next_double() >= channel.drop_probability) return out;
    out.start_offset += rto;  // sender notices the loss after the RTO
    rto *= channel.backoff_factor;
    if (attempt == channel.max_retries) {
      out.delivered = false;
      return out;
    }
    ++out.retries;
  }
}

}  // namespace

DcsSimulator::DcsSimulator(core::DcsScenario scenario, SimulatorOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  scenario_.validate();
  options_.faults.validate();
  if (options_.queue_info_period > 0.0 && !options_.info_transfer) {
    AGEDTR_REQUIRE(!scenario_.fn_transfer.empty(),
                   "DcsSimulator: queue-info exchange needs a delay law "
                   "(set info_transfer or provide FN laws)");
  }
}

SimResult DcsSimulator::run(const core::DtrPolicy& policy,
                            random::Rng& rng) const {
  const std::size_t n = scenario_.size();
  const std::vector<core::ServerWorkload> workloads =
      core::apply_policy(scenario_, policy);
  const FaultPlan& faults = options_.faults;

  SimResult result;
  result.tasks_lost.assign(n, 0);
  result.busy_time.assign(n, 0.0);
  result.tasks_served.assign(n, 0);
  result.failure_time.assign(n, kInf);

  std::vector<int> queue(n);
  std::vector<char> up(n, 1);
  std::vector<char> serving(n, 0);
  std::vector<double> service_started(n, 0.0);
  // Fault-injection state. All of it stays at its initial value under a
  // null plan, in which case every fault hook below reduces to the seed
  // simulator's behavior without consuming RNG draws.
  std::vector<double> stall_until(n, 0.0);
  std::vector<double> service_pause(n, 0.0);
  std::vector<double> pending_completion(n, 0.0);
  std::vector<std::uint64_t> service_gen(n, 0);
  int groups_in_flight = 0;
  int remaining_tasks = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;
  const auto push = [&](Event e) {
    e.seq = seq++;
    events.push(e);
  };
  const auto exp_sample = [&rng](double rate) {
    return -std::log1p(-rng.next_double()) / rate;
  };

  bool lost = false;
  const auto emit_fn_packets = [&](std::size_t j, double now) {
    if (!options_.model_fn_packets || scenario_.fn_transfer.empty()) return;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == j || !scenario_.fn_transfer[j][k]) continue;
      const SendOutcome send = attempt_send(faults.fn_channel, rng);
      result.faults.fn_retransmissions += send.retries;
      if (!send.delivered) {
        ++result.faults.fn_packets_dropped;
        continue;
      }
      push({now + send.start_offset + scenario_.fn_transfer[j][k]->sample(rng),
            Event::Kind::kFnArrival, j, k, 0, 0});
    }
  };
  // Shared by natural failures and common-cause shocks.
  const auto fail_server = [&](std::size_t j, double now) {
    if (!up[j]) return;
    up[j] = 0;
    serving[j] = 0;
    result.failure_time[j] = now;
    if (queue[j] > 0) {
      result.tasks_lost[j] += queue[j];
      lost = true;
    }
    emit_fn_packets(j, now);
  };

  // --- t = 0: queues after the policy, groups in flight, failure clocks.
  for (std::size_t j = 0; j < n; ++j) {
    queue[j] = workloads[j].local_tasks;
    remaining_tasks += workloads[j].total_tasks();
    for (const core::ServerWorkload::Inbound& g : workloads[j].inbound) {
      ++groups_in_flight;
      const SendOutcome send = attempt_send(faults.group_channel, rng);
      result.faults.group_retransmissions += send.retries;
      if (!send.delivered) {
        push({send.start_offset, Event::Kind::kGroupExpired, 0, j, g.tasks,
              0});
        continue;
      }
      double transfer_time = g.transfer->sample(rng);
      if (g.per_task) {
        for (int t = 1; t < g.tasks; ++t) {
          transfer_time += g.transfer->sample(rng);
        }
      }
      push({send.start_offset + transfer_time, Event::Kind::kGroupArrival, 0,
            j, g.tasks, 0});
    }
    if (scenario_.servers[j].failure) {
      push({scenario_.servers[j].failure->sample(rng), Event::Kind::kFailure,
            j, 0, 0, 0});
    }
  }
  const auto start_service = [&](std::size_t j, double now) {
    // A stalled server starts (or resumes accepting) work only once the
    // stall clears; under a null plan stall_until is 0 and begin_at == now.
    const double begin_at = std::max(now, stall_until[j]);
    serving[j] = 1;
    service_started[j] = begin_at;
    service_pause[j] = 0.0;
    pending_completion[j] =
        begin_at + scenario_.servers[j].service->sample(rng);
    push({pending_completion[j], Event::Kind::kServiceComplete, j, 0, 0,
          service_gen[j]});
  };
  for (std::size_t j = 0; j < n; ++j) {
    if (queue[j] > 0) start_service(j, 0.0);
  }
  if (options_.queue_info_period > 0.0) {
    for (std::size_t j = 0; j < n; ++j) {
      push({options_.queue_info_period, Event::Kind::kInfoBroadcast, j, 0, 0,
            0});
    }
  }
  if (faults.shock_rate > 0.0) {
    push({exp_sample(faults.shock_rate), Event::Kind::kShock, 0, 0, 0, 0});
  }
  if (faults.stall_rate > 0.0) {
    for (std::size_t j = 0; j < n; ++j) {
      push({exp_sample(faults.stall_rate), Event::Kind::kStallBegin, j, 0, 0,
            0});
    }
  }

  double last_progress_time = 0.0;
  while (!events.empty()) {
    if (result.events_processed >= options_.max_events) {
      // A runtime budget, not a precondition: report the truncation and let
      // the caller decide (Monte-Carlo sweeps count these separately).
      result.truncated = true;
      break;
    }
    const Event e = events.top();
    events.pop();
    ++result.events_processed;
    switch (e.kind) {
      case Event::Kind::kServiceComplete: {
        const std::size_t j = e.a;
        // Stale after a failure, or superseded by a stall reschedule.
        if (!up[j] || !serving[j] || e.gen != service_gen[j]) break;
        --queue[j];
        --remaining_tasks;
        ++result.tasks_served[j];
        result.busy_time[j] += e.time - service_started[j] - service_pause[j];
        last_progress_time = e.time;
        if (queue[j] > 0) {
          start_service(j, e.time);
        } else {
          serving[j] = 0;
        }
        break;
      }
      case Event::Kind::kFailure: {
        fail_server(e.a, e.time);
        break;
      }
      case Event::Kind::kGroupArrival: {
        const std::size_t j = e.b;
        --groups_in_flight;
        if (!up[j]) {
          // Delivered to a failed server: the tasks are stranded (reliable
          // message passing forbids dropping them in the network, and
          // failed servers provide no recovery).
          result.tasks_lost[j] += e.payload;
          lost = true;
          break;
        }
        queue[j] += e.payload;
        if (!serving[j]) start_service(j, e.time);
        break;
      }
      case Event::Kind::kGroupExpired: {
        // Every transmission attempt was dropped: the group's tasks are
        // stranded in the network and the workload cannot complete.
        --groups_in_flight;
        result.faults.tasks_lost_in_network += e.payload;
        lost = true;
        break;
      }
      case Event::Kind::kFnArrival: {
        result.fn_deliveries.push_back({e.a, e.b, e.time});
        break;
      }
      case Event::Kind::kInfoBroadcast: {
        const std::size_t j = e.a;
        if (up[j]) {
          const dist::DistPtr& law = options_.info_transfer;
          for (std::size_t k = 0; k < n; ++k) {
            if (k == j) continue;
            const dist::DistPtr& delay =
                law ? law : scenario_.fn_transfer[j][k];
            if (!delay) continue;
            push({e.time + delay->sample(rng), Event::Kind::kInfoArrival, j,
                  k, queue[j], 0});
          }
          push({e.time + options_.queue_info_period,
                Event::Kind::kInfoBroadcast, j, 0, 0, 0});
        }
        break;
      }
      case Event::Kind::kInfoArrival:
        break;  // estimates are not consumed mid-run (policies act at t = 0)
      case Event::Kind::kShock: {
        ++result.faults.shocks;
        for (std::size_t j = 0; j < n; ++j) {
          if (!up[j]) continue;
          if (rng.next_double() < faults.shock_kill_probability) {
            ++result.faults.shock_failures;
            fail_server(j, e.time);
          }
        }
        // Reschedule only while somebody is left to strike, so a dead
        // system does not generate events forever.
        if (std::any_of(up.begin(), up.end(), [](char u) { return u != 0; })) {
          push({e.time + exp_sample(faults.shock_rate), Event::Kind::kShock,
                0, 0, 0, 0});
        }
        break;
      }
      case Event::Kind::kStallBegin: {
        const std::size_t j = e.a;
        if (!up[j]) break;  // dead servers stall no more (stop the stream)
        ++result.faults.stalls;
        const double duration = faults.stall_duration->sample(rng);
        // Overlapping stalls merge: only time beyond the current stall
        // horizon extends the pause.
        const double extension = std::max(
            0.0, e.time + duration - std::max(e.time, stall_until[j]));
        stall_until[j] = std::max(stall_until[j], e.time + duration);
        result.faults.total_stall_time += extension;
        if (serving[j] && extension > 0.0) {
          // In-flight work pauses and resumes: push the pending completion
          // out by the added pause and retire the stale event via the
          // generation counter.
          pending_completion[j] += extension;
          service_pause[j] += extension;
          ++service_gen[j];
          push({pending_completion[j], Event::Kind::kServiceComplete, j, 0,
                0, service_gen[j]});
        }
        push({e.time + exp_sample(faults.stall_rate),
              Event::Kind::kStallBegin, j, 0, 0, 0});
        break;
      }
    }
    if (lost) break;
    if (remaining_tasks == 0 && groups_in_flight == 0) {
      result.completed = true;
      result.completion_time = last_progress_time;
      return result;
    }
  }
  result.completed = !lost && !result.truncated && remaining_tasks == 0 &&
                     groups_in_flight == 0;
  result.completion_time = result.completed ? last_progress_time : kInf;
  return result;
}

}  // namespace agedtr::sim
