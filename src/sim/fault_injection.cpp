#include "agedtr/sim/fault_injection.hpp"

#include <algorithm>
#include <string>

#include "agedtr/util/error.hpp"

namespace agedtr::sim {

namespace {

void validate_channel(const ChannelFaults& channel, const char* name) {
  AGEDTR_REQUIRE(channel.drop_probability >= 0.0 &&
                     channel.drop_probability <= 1.0,
                 std::string("FaultPlan: ") + name +
                     " drop probability must lie in [0, 1]");
  if (!channel.active()) return;
  AGEDTR_REQUIRE(channel.retransmit_timeout > 0.0,
                 std::string("FaultPlan: ") + name +
                     " retransmit timeout must be positive");
  AGEDTR_REQUIRE(channel.backoff_factor >= 1.0,
                 std::string("FaultPlan: ") + name +
                     " backoff factor must be >= 1");
  AGEDTR_REQUIRE(channel.max_retries >= 0,
                 std::string("FaultPlan: ") + name +
                     " retry count must be nonnegative");
}

}  // namespace

void SlowdownProcess::validate(const char* what) const {
  AGEDTR_REQUIRE(rate >= 0.0,
                 std::string("FaultPlan: ") + what + " rate must be >= 0");
  AGEDTR_REQUIRE(factor >= 0.0 && factor < 1.0,
                 std::string("FaultPlan: ") + what +
                     " factor must lie in [0, 1)");
  if (rate > 0.0) {
    AGEDTR_REQUIRE(duration != nullptr, std::string("FaultPlan: ") + what +
                                            " needs a duration law");
  }
}

bool FaultPlan::is_null() const {
  return !group_channel.active() && !fn_channel.active() &&
         shock_rate <= 0.0 && stall_rate <= 0.0 && !slowdown.active();
}

void FaultPlan::validate() const {
  validate_channel(group_channel, "group channel");
  validate_channel(fn_channel, "FN channel");
  AGEDTR_REQUIRE(shock_rate >= 0.0, "FaultPlan: shock rate must be >= 0");
  AGEDTR_REQUIRE(
      shock_kill_probability >= 0.0 && shock_kill_probability <= 1.0,
      "FaultPlan: shock kill probability must lie in [0, 1]");
  if (shock_rate > 0.0) {
    AGEDTR_REQUIRE(shock_kill_probability > 0.0,
                   "FaultPlan: shocks need a positive kill probability");
  }
  AGEDTR_REQUIRE(stall_rate >= 0.0, "FaultPlan: stall rate must be >= 0");
  if (stall_rate > 0.0) {
    AGEDTR_REQUIRE(stall_duration != nullptr,
                   "FaultPlan: stalls need a duration law");
  }
  stall_process().validate("stall");
  slowdown.validate("slowdown");
}

FaultPlan scale_fault_plan(const FaultPlan& base, double intensity) {
  AGEDTR_REQUIRE(intensity >= 0.0,
                 "scale_fault_plan: intensity must be nonnegative");
  base.validate();
  FaultPlan plan = base;
  const auto clamp01 = [](double p) { return std::min(p, 1.0); };
  plan.group_channel.drop_probability =
      clamp01(base.group_channel.drop_probability * intensity);
  plan.fn_channel.drop_probability =
      clamp01(base.fn_channel.drop_probability * intensity);
  plan.shock_rate = base.shock_rate * intensity;
  plan.shock_kill_probability = base.shock_kill_probability;
  plan.stall_rate = base.stall_rate * intensity;
  // Frequency scales; per-window severity (factor, duration) does not.
  plan.slowdown.rate = base.slowdown.rate * intensity;
  return plan;
}

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  group_retransmissions += other.group_retransmissions;
  fn_retransmissions += other.fn_retransmissions;
  tasks_lost_in_network += other.tasks_lost_in_network;
  fn_packets_dropped += other.fn_packets_dropped;
  shocks += other.shocks;
  shock_failures += other.shock_failures;
  stalls += other.stalls;
  total_stall_time += other.total_stall_time;
  slowdowns += other.slowdowns;
  total_slowdown_time += other.total_slowdown_time;
  return *this;
}

}  // namespace agedtr::sim
