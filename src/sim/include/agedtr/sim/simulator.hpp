// Discrete-event simulation of the DCS model (the forward counterpart of
// the analytical solvers): servers serving sequentially with random service
// times, permanent failures, task groups and FN packets crossing a network
// with random delays, and optional periodic queue-length information
// exchange with its own delays (the mechanism the paper's servers build
// their m̂_ji estimates from).
//
// Forward simulation needs no age variables: every clock is sampled fresh
// when its activity starts, which realizes exactly the non-Markovian law
// the age-dependent analysis characterizes.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <vector>

#include "agedtr/core/replication.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/core/state.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/sim/fault_injection.hpp"

namespace agedtr::sim {

/// A mid-run re-decision hook: given the observed hybrid state S(t) at a
/// decision epoch, returns a fresh DTR policy in the *full* index space
/// (rows/columns of dead servers must be zero; they are ignored anyway).
/// The callback must not consume the simulation RNG — re-decisions are
/// deterministic functions of the snapshot, which is what keeps rolling
/// runs reproducible and CRN comparisons honest. The sim layer cannot see
/// policy::DecisionPolicy (layering), so the bridge is this std::function;
/// policy::make_reallocation_callback builds one from any DecisionPolicy.
using ReallocationCallback =
    std::function<core::DtrPolicy(const core::SystemState&)>;

/// Schedule for DcsSimulator::run_rolling. With an empty epoch list the
/// rolling run is bit-identical to run() — including the RNG stream
/// position — because no snapshot, re-decision, or extra draw happens.
struct RollingOptions {
  /// Decision epochs (absolute times), sorted ascending, each finite and
  /// >= 0. Entries equal to 0 coincide with the initial decision and are
  /// skipped: the t = 0 policy already *is* the epoch-0 decision.
  std::vector<double> epochs;
  /// Invoked at each epoch > 0 while the workload is still in progress.
  ReallocationCallback redecide;
};

struct SimulatorOptions {
  /// Simulate FN packet propagation on failures.
  bool model_fn_packets = true;
  /// Period of queue-length info broadcasts; 0 disables them.
  double queue_info_period = 0.0;
  /// Delay law for info packets (defaults to the scenario's FN laws when
  /// empty and info exchange is enabled).
  dist::DistPtr info_transfer;
  /// Hard cap on simulated events. Exceeding it does not throw: the run
  /// returns early with truncated == true (and completed == false) so one
  /// runaway replication cannot abort a whole Monte-Carlo sweep.
  std::size_t max_events = 50'000'000;
  /// Injected model-assumption violations; the default plan is null and
  /// leaves the fault-free path bit-identical to the seed simulator.
  FaultPlan faults;
  /// Replication of the policy's work units with cancel-on-first-completion
  /// (validated against the policy at run()). Disengaged or identity plans
  /// draw nothing extra from the RNG and stay bit-identical to the
  /// unreplicated simulator. When two replicas complete at the same instant
  /// the one whose completion event was scheduled first wins — a
  /// deterministic FIFO tie-break, independent of platform.
  std::optional<core::ReplicationPlan> replication;
  /// Populate SimResult::final_state with a snapshot of S(t) at the instant
  /// the run ends. Off by default: the snapshot allocates and is only
  /// needed by post-mortem diagnostics and rolling-horizon analyses.
  bool capture_final_state = false;
};

/// Outcome of one simulated realization.
struct SimResult {
  /// True iff every task was served: T < ∞.
  bool completed = false;
  /// The workload execution time T (makespan); +inf when !completed.
  double completion_time = 0.0;
  /// Tasks stranded per server (at failed servers / delivered to them).
  std::vector<int> tasks_lost;
  /// Per-server busy time (service work performed) — resource-usage
  /// diagnostics for the Section III-A discussion.
  std::vector<double> busy_time;
  /// Per-server count of tasks served.
  std::vector<int> tasks_served;
  /// Time each server failed (+inf if it survived the run).
  std::vector<double> failure_time;
  /// FN packet deliveries as (from, to, time) triples (diagnostics).
  struct FnDelivery {
    std::size_t from, to;
    double time;
  };
  std::vector<FnDelivery> fn_deliveries;
  std::size_t events_processed = 0;
  /// Replicas cancelled because a sibling completed their unit first (0
  /// without replication). Cancelled in-flight tasks contribute neither to
  /// busy_time nor to tasks_served: only completed tasks count as work.
  std::size_t replicas_cancelled = 0;
  /// True when the run hit SimulatorOptions::max_events and stopped early;
  /// the realization is then neither a success nor a failure observation
  /// and Monte-Carlo layers count it separately.
  bool truncated = false;
  /// Fault-injection counters (all zero under a null FaultPlan).
  FaultStats faults;
  /// Rolling-horizon counters (all zero outside run_rolling).
  struct RollingStats {
    /// Epochs at which a re-decision actually fired (epochs after the run
    /// ended, at 0, or with nothing to decide do not count).
    std::size_t epochs_fired = 0;
    /// Tasks moved between queues by mid-run re-decisions.
    int tasks_reallocated = 0;
    /// Pledged moves that could not be honored (sender dead, queue shorter
    /// than the plan, task pinned in service, or unit replicated — only
    /// singleton-replica work may move mid-run).
    int moves_clamped = 0;
  };
  RollingStats rolling;
  /// Snapshot of the hybrid state S(t) at the instant the run ended, when
  /// SimulatorOptions::capture_final_state is set: surviving servers,
  /// per-server remaining work, in-transit groups, clock ages.
  std::optional<core::SystemState> final_state;
};

// One SimResult per Monte-Carlo realization flows into the aggregation
// vectors; a throwing move would copy every per-server array on growth
// (rule `noexcept-move`, docs/layering.toml).
static_assert(std::is_nothrow_move_constructible_v<SimResult>);

class DcsSimulator {
 public:
  explicit DcsSimulator(core::DcsScenario scenario,
                        SimulatorOptions options = {});

  /// Simulates one realization under the policy. Deterministic given the
  /// RNG state. The run stops early (with completed == false) as soon as a
  /// task is stranded, since no later event can rescue the workload.
  [[nodiscard]] SimResult run(const core::DtrPolicy& policy,
                              random::Rng& rng) const;

  /// Rolling-horizon variant: starts from `initial` (the t = 0 decision,
  /// computed by the caller so deterministic work is not repeated per
  /// trajectory) and at each epoch in `rolling.epochs` snapshots the
  /// observed hybrid state and asks `rolling.redecide` for a fresh policy.
  /// Positive entries L(i, j) of the fresh policy move up to L(i, j) tasks
  /// from the tail of i's queue to j as a new in-flight work unit;
  /// in-service tasks and replicated units never move. An empty epoch list
  /// makes this bit-identical to run(), including the RNG stream position.
  [[nodiscard]] SimResult run_rolling(const core::DtrPolicy& initial,
                                      const RollingOptions& rolling,
                                      random::Rng& rng) const;

  [[nodiscard]] const core::DcsScenario& scenario() const { return scenario_; }

 private:
  [[nodiscard]] SimResult run_impl(const core::DtrPolicy& policy,
                                   random::Rng& rng,
                                   const RollingOptions* rolling) const;

  core::DcsScenario scenario_;
  SimulatorOptions options_;
};

}  // namespace agedtr::sim
