// Controlled violations of the paper's model assumptions, injected into the
// discrete-event simulator.
//
// The analytical solvers rest on three idealizations: a perfectly reliable
// network (every task group and FN packet is delivered), mutually
// independent failure clocks (Assumption A2), and permanent crash-only
// failures. A FaultPlan relaxes each one in a parameterized way:
//
//   (a) Unreliable network — every transmission attempt on a channel is
//       dropped with probability p. The sender recovers by timeout: after
//       an RTO that grows by `backoff_factor` per retry it retransmits, up
//       to `max_retries` times; if every attempt is dropped, a task group's
//       tasks are stranded in the network (the workload is lost) and an FN
//       packet is silently never delivered.
//   (b) Correlated failures — a common-cause shock process (Poisson with
//       rate `shock_rate`) strikes the whole system; each functioning
//       server dies with probability `shock_kill_probability` per shock,
//       violating A2's independence across servers.
//   (c) Transient stalls — each server is hit by a Poisson process of rate
//       `stall_rate`; a stall pauses service (in-flight work resumes, it is
//       not lost) for a random duration, violating the crash-only model.
//   (d) Random slowdowns — a rate-scaling generalization of (c): during a
//       slowdown window the server still serves, but at `factor` times its
//       natural rate (factor == 0 degenerates to a stall). Stalls and
//       slowdowns share the SlowdownProcess machinery and its merge
//       invariant (overlapping windows extend, they never stack).
//
// A FaultPlan with every intensity at zero is the exact seed model: the
// simulator's fault hooks are engineered to draw nothing from the RNG and
// schedule no events in that case, so fault-free runs are bit-identical to
// the pre-fault-injection simulator (guarded by a regression test).
//
// docs/FAULT_MODEL.md tabulates which paper assumption each injector
// relaxes and the expected qualitative effect on R_∞.
#pragma once

#include <algorithm>
#include <cstddef>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::sim {

/// Drop/retransmission model for one logical channel.
struct ChannelFaults {
  /// Probability that one transmission attempt is lost, in [0, 1].
  double drop_probability = 0.0;
  /// Sender RTO before the first retransmission (seconds).
  double retransmit_timeout = 1.0;
  /// RTO multiplier per successive retry (>= 1).
  double backoff_factor = 2.0;
  /// Retransmissions after the initial attempt; when all
  /// 1 + max_retries attempts drop, the payload is lost for good.
  int max_retries = 3;

  [[nodiscard]] bool active() const { return drop_probability > 0.0; }
};

/// A Poisson process of transient service-rate degradations on one server:
/// windows open at rate `rate`, last for a `duration` draw, and scale the
/// server's service rate by `factor` while open. factor == 0 is a full
/// stall (FaultPlan's legacy stall fields route through this same struct),
/// factor in (0, 1) is a straggler-style slowdown.
struct SlowdownProcess {
  /// Per-server window onset rate (per second); 0 disables the process.
  double rate = 0.0;
  /// Law of a window's length; required when rate > 0.
  dist::DistPtr duration;
  /// Service-rate multiplier inside a window, in [0, 1).
  double factor = 0.0;

  [[nodiscard]] bool active() const { return rate > 0.0; }
  /// Throws InvalidArgument on malformed parameters; `what` names the
  /// process in the message.
  void validate(const char* what) const;
};

/// Merged-window state for one server under one SlowdownProcess: the shared
/// invariant of stalls and slowdowns. A window opening at `now` for
/// `duration` only extends the horizon beyond what is already pending —
/// overlapping windows merge instead of stacking, so injected degradation
/// time is additive in *distinct* coverage, never double-counted.
struct SlowdownWindow {
  /// Wall-clock time the merged window closes (0 = no window ever opened).
  double until = 0.0;

  /// Absorbs a window [now, now + duration); returns the horizon extension
  /// (the freshly covered time, 0 when fully inside the pending window).
  double extend(double now, double duration) {
    const double fresh =
        std::max(0.0, now + duration - std::max(now, until));
    until = std::max(until, now + duration);
    return fresh;
  }

  /// True while the merged window covers `now`.
  [[nodiscard]] bool covers(double now) const { return now < until; }
};

/// The full set of injected faults. Default-constructed = no faults.
struct FaultPlan {
  /// Task-group transfers: dropped groups strand their tasks after the
  /// retry budget (the workload is then lost).
  ChannelFaults group_channel;
  /// Failure-notice packets: dropped FNs are simply never delivered.
  ChannelFaults fn_channel;

  /// Rate of system-wide common-cause shocks (per second); 0 disables.
  double shock_rate = 0.0;
  /// Probability a shock kills each individual functioning server.
  double shock_kill_probability = 0.0;

  /// Per-server rate of transient stalls (per second); 0 disables.
  double stall_rate = 0.0;
  /// Law of a stall's duration; required when stall_rate > 0.
  dist::DistPtr stall_duration;

  /// Rate-scaling slowdowns (stragglers), independent of the stall process;
  /// both run through the same SlowdownWindow merge machinery.
  SlowdownProcess slowdown;

  /// The stall fields viewed as the factor-0 SlowdownProcess they are.
  [[nodiscard]] SlowdownProcess stall_process() const {
    return {stall_rate, stall_duration, 0.0};
  }

  /// True when the plan injects nothing: the simulator then follows the
  /// fault-free code path exactly (no extra RNG draws, no extra events).
  [[nodiscard]] bool is_null() const;

  /// Throws InvalidArgument on malformed parameters (probabilities outside
  /// [0, 1], negative rates/timeouts, missing stall law, ...).
  void validate() const;
};

/// Scales the *frequency* of every fault by `intensity` >= 0: drop
/// probabilities are multiplied (clamped to 1) and shock/stall rates are
/// multiplied, while per-event severity (the shock kill probability, the
/// stall-duration law) and the retransmission parameters are kept as in
/// `base` so intensity acts linearly, not quadratically. intensity == 0
/// yields a null plan (the seed model) — the abscissa of the degradation
/// sweep.
[[nodiscard]] FaultPlan scale_fault_plan(const FaultPlan& base,
                                         double intensity);

/// Per-realization fault/bookkeeping counters reported by the simulator.
struct FaultStats {
  /// Group retransmissions actually sent (attempts beyond each first try).
  std::size_t group_retransmissions = 0;
  /// FN retransmissions actually sent.
  std::size_t fn_retransmissions = 0;
  /// Tasks stranded in the network after exhausting the retry budget.
  int tasks_lost_in_network = 0;
  /// FN packets never delivered (retry budget exhausted).
  std::size_t fn_packets_dropped = 0;
  /// Common-cause shocks that struck while the run was live.
  std::size_t shocks = 0;
  /// Servers killed by shocks (failures violating A2).
  std::size_t shock_failures = 0;
  /// Transient stalls that hit a functioning server.
  std::size_t stalls = 0;
  /// Total stall time injected (sum of effective pause extensions).
  double total_stall_time = 0.0;
  /// Rate-scaling slowdown windows that hit a functioning server.
  std::size_t slowdowns = 0;
  /// Total slowed time injected (merged-window coverage, like stalls).
  double total_slowdown_time = 0.0;

  FaultStats& operator+=(const FaultStats& other);
};

}  // namespace agedtr::sim
