// Parallel Monte-Carlo estimation of the three metrics, replicating the
// paper's experimental methodology: "the service reliability is calculated
// by averaging failure or success outcomes" over independent realizations,
// with 95% confidence intervals (Table II reports their centers).
//
// Replication r uses the stream make_replication_rng(seed, r), so results
// are bit-identical regardless of the thread count or scheduling.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "agedtr/sim/simulator.hpp"
#include "agedtr/stats/summary.hpp"
#include "agedtr/util/supervisor.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::sim {

/// How replication r's RNG sub-stream is derived from (seed, r).
enum class StreamSplit {
  /// kSplitMix for bit-compatibility with historical runs, unless the
  /// simulator options carry a genuinely replicating plan — replicated
  /// studies are new, so they get the counter-based derivation from day one.
  kAuto,
  /// Hash-based: make_replication_rng (the historical derivation).
  kSplitMix,
  /// Counter-based: make_counter_rng — (seed, r) -> state is a pure
  /// function through Philox4x32, giving scheduling-independent streams
  /// with cryptographic-quality separation between neighbouring indices.
  kCounter,
};

struct MonteCarloOptions {
  std::size_t replications = 10'000;
  std::uint64_t seed = 0x5eed;
  /// Deadline used for the QoS estimate (<= 0 disables it).
  double deadline = 0.0;
  /// Worker pool; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  SimulatorOptions simulator;
  /// Runs the replications under a util::Supervisor: a replication whose
  /// simulation throws is retried with backoff, and one that keeps failing
  /// is quarantined — excluded from every estimate and listed in
  /// MonteCarloMetrics::supervision — instead of sinking the whole run.
  /// Disengaged (the default) reproduces the unsupervised path bit for bit.
  /// The supervisor runs on its own options' pool; `pool` above is ignored
  /// while supervised.
  std::optional<SupervisorOptions> supervise;
  /// Sub-stream derivation per replication (pinned by a fixed-seed test).
  StreamSplit stream_split = StreamSplit::kAuto;
};

struct MonteCarloMetrics {
  std::size_t replications = 0;
  std::size_t completed = 0;
  /// Replications that hit the simulator's event budget and stopped early.
  /// They count as not-completed in the reliability estimate (a truncated
  /// run never finished) but are reported separately so a runaway
  /// configuration is visible instead of masquerading as failures.
  std::size_t truncated = 0;

  /// R̂_∞ with Wilson 95% CI.
  stats::ConfidenceInterval reliability;
  /// R̂_TM with Wilson 95% CI (center 0 when no deadline was given).
  stats::ConfidenceInterval qos;
  /// Mean of T over *completed* runs with normal 95% CI. Equals the paper's
  /// T̄ when the scenario is failure-free (every run completes).
  stats::ConfidenceInterval mean_completion_time;
  /// True iff every replication completed (mean_completion_time is then the
  /// unconditional average execution time).
  bool all_completed = false;
  /// Mean per-server busy time over completed runs (resource-usage
  /// diagnostics).
  std::vector<double> mean_busy_time;
  /// Fault-injection counters summed over every replication (all zero when
  /// SimulatorOptions::faults is the null plan).
  FaultStats fault_totals;
  /// Replicas cancelled by first-completion wins, summed over replications
  /// (0 without a replicating plan) — the redundant-work cost axis of the
  /// replication tradeoff.
  std::size_t replicas_cancelled = 0;
  /// Supervision outcome when MonteCarloOptions::supervise is engaged
  /// (default-constructed otherwise). Quarantined replications are excluded
  /// from every estimate's denominator — they were never simulated, so
  /// counting them as failures would bias reliability downward.
  SupervisionReport supervision;
};

[[nodiscard]] MonteCarloMetrics run_monte_carlo(
    const core::DcsScenario& scenario, const core::DtrPolicy& policy,
    const MonteCarloOptions& options = {});

}  // namespace agedtr::sim
