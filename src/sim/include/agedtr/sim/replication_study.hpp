// The (replication factor × slowdown intensity) study grid behind the
// replication_bench, the property tests and the golden tradeoff CSV: one
// shared code path, so the benchmark's published curve, the assertions and
// the pinned numbers can never drift apart.
//
// Each row replicates the policy's work units uniformly by `factor`
// (make_uniform_replication, cancel-on-first-completion) and injects a
// slowdown process scaled by `intensity`, then Monte-Carlo estimates the
// mean completion time and QoS. When analytic bounds are enabled the row
// also carries the min-of-r bracket from replication_completion_bounds:
// the lower bound is slowdown-free (slowdowns only delay completion, so it
// stays valid at every intensity) and the upper bound assumes the server
// is *always* slowed to the process's factor (worst case, valid for any
// intensity) — together they must bracket the Monte-Carlo estimate.
//
// The qualitative shape this surfaces is the classic replication tradeoff:
// a small r hedges stragglers (and can even pay off fault-free when the
// replica lands on a faster server), while large r duplicates so much work
// that transfer + contention cost drags the mean back up —
// helps-then-hurts.
#pragma once

#include <cstdint>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/sim/fault_injection.hpp"
#include "agedtr/util/budget.hpp"
#include "agedtr/util/thread_pool.hpp"

namespace agedtr::sim {

struct ReplicationStudyOptions {
  /// Uniform replication factors forming the grid's r-axis (each >= 1;
  /// clamped to the server count by plan construction).
  std::vector<int> factors = {1, 2};
  /// Multipliers on base_slowdown.rate forming the intensity axis
  /// (0 = no slowdowns, the seed model).
  std::vector<double> slowdown_intensities = {0.0, 1.0};
  /// The intensity-1 slowdown process; its factor and duration law are
  /// intensity-invariant (scale_fault_plan semantics). Inactive (rate 0)
  /// restricts the study to the fault-free row.
  SlowdownProcess base_slowdown;
  /// Monte-Carlo replications per grid cell.
  std::size_t replications = 2'000;
  /// Seed shared by every cell (counter-based streams: common random
  /// numbers across the whole grid).
  std::uint64_t seed = 0x5eed;
  /// Deadline for the QoS estimates (<= 0 disables them).
  double deadline = 0.0;
  /// Attach the analytic min-of-r bounds to every row. Requires a reliable
  /// scenario and base_slowdown.factor > 0 whenever an intensity is
  /// positive (a permanent full stall admits no finite upper bound).
  bool analytic_bounds = true;
  /// Wall-clock cap for each row's bound computation.
  EvalBudget budget;
  /// Fans Monte-Carlo replications (nullptr = ThreadPool::global()).
  ThreadPool* pool = nullptr;
};

/// One (factor, intensity) cell of the study grid.
struct ReplicationStudyRow {
  int factor = 1;
  double intensity = 0.0;
  /// Monte-Carlo mean completion time over completed runs.
  double mc_mean = 0.0;
  /// Half-width of the mean's confidence interval — the bracket checks
  /// against the analytic bounds must allow for this sampling noise.
  double mc_mean_halfwidth = 0.0;
  /// Monte-Carlo P{T < deadline} (0 when no deadline was given).
  double mc_qos = 0.0;
  /// Analytic bracket (0 / +inf when analytic_bounds is off).
  double bound_lower = 0.0;
  double bound_upper = 0.0;
  double qos_lower = 0.0;
  double qos_upper = 1.0;
  /// Replicas cancelled by first-completion wins, summed over replications.
  std::size_t replicas_cancelled = 0;
  /// Slowdown windows injected, summed over replications.
  std::size_t slowdowns = 0;
  /// Replications that hit the event budget (should be 0; reported so a
  /// pathological cell is visible in the CSV).
  std::size_t truncated = 0;
};

/// Runs the full grid (row order: factors outer, intensities inner —
/// deterministic, matching the golden CSV). The scenario must be reliable
/// when options.analytic_bounds is set.
[[nodiscard]] std::vector<ReplicationStudyRow> run_replication_study(
    const core::DcsScenario& scenario, const core::DtrPolicy& policy,
    const ReplicationStudyOptions& options);

}  // namespace agedtr::sim
