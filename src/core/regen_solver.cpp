#include "agedtr/core/regen_solver.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::core {
namespace {

/// Observability of the reference recursion: how deep the event tree goes
/// and how long one metric call takes (the fallback chain's first tier).
metrics::Histogram& depth_histogram() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "regen_solver.recursion_depth", metrics::linear_buckets(1.0, 1.0, 16),
      "recursion depth at which regeneration branches terminate");
  return h;
}

metrics::Histogram& regen_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "regen_solver.call_seconds",
      metrics::exponential_buckets(1e-4, 4.0, 12),
      "wall time of one RegenerativeSolver metric call");
  return h;
}

metrics::Counter& depth_exhausted_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "regen_solver.depth_budget_exhausted",
      "RegenerativeSolver calls aborted by the recursion-depth cap");
  return c;
}

/// Per-state integration context shared by the mean and probability
/// recursions: Gauss–Legendre nodes in the probability domain u = F_τ(s),
/// inverted back to s by bisection, with panel boundaries at the clocks'
/// support breakpoints. Also yields E[τ_a] from the same nodes
/// (E[τ] = ∫ s dF_τ(s) = ∫ s(u) du), so no extra quadrature is needed.
class RegenerationQuadrature {
 public:
  RegenerationQuadrature(const RegenerationAnalysis& analysis, double cap,
                         int nodes)
      : analysis_(analysis), rule_(numerics::gauss_rule(nodes)) {
    std::vector<double> s_breaks = {0.0, cap};
    for (const Clock& c : analysis.clocks()) {
      const double lb = c.law->lower_bound();
      if (lb > 0.0 && lb < cap) s_breaks.push_back(lb);
      const double ub = c.law->upper_bound();
      if (std::isfinite(ub) && ub > 0.0 && ub < cap) s_breaks.push_back(ub);
    }
    std::sort(s_breaks.begin(), s_breaks.end());
    s_breaks.erase(std::unique(s_breaks.begin(), s_breaks.end()),
                   s_breaks.end());

    for (std::size_t p = 0; p + 1 < s_breaks.size(); ++p) {
      const double s_lo = s_breaks[p];
      const double s_hi = s_breaks[p + 1];
      const double u_lo = cdf_tau(s_lo);
      const double u_hi = cdf_tau(s_hi);
      const double width = u_hi - u_lo;
      if (width <= 1e-15) continue;  // the race carries no mass here
      const double u_mid = 0.5 * (u_lo + u_hi);
      const double u_half = 0.5 * width;
      for (std::size_t i = 0; i < rule_.nodes.size(); ++i) {
        Node node;
        node.weight = rule_.weights[i] * u_half;
        node.s = invert(u_mid + u_half * rule_.nodes[i], s_lo, s_hi);
        nodes_.push_back(node);
      }
    }
  }

  /// E[min(τ_a, cap)] ≈ Σ w_i·s_i + (1 − F_τ(cap))·cap; with cap at the
  /// survival_eps horizon the truncation term is negligible for finite-mean
  /// races and is included for completeness.
  [[nodiscard]] double expected_minimum(double cap) const {
    double mean = 0.0;
    for (const Node& n : nodes_) mean += n.weight * n.s;
    return mean + analysis_.race_survival(cap) * cap;
  }

  /// Σ_e ∫ G_e(s)·value(e, s) ds over the quadrature nodes.
  [[nodiscard]] double integrate(
      const std::function<double(const Clock&, double)>& value) const {
    const std::size_t n_clocks = analysis_.clocks().size();
    std::vector<double> g(n_clocks);
    double total = 0.0;
    for (const Node& node : nodes_) {
      double f_tau = 0.0;
      for (std::size_t e = 0; e < n_clocks; ++e) {
        g[e] = analysis_.g(e, node.s);
        f_tau += g[e];
      }
      if (!(f_tau > 0.0)) continue;
      double inner = 0.0;
      for (std::size_t e = 0; e < n_clocks; ++e) {
        if (g[e] > 0.0) {
          inner += (g[e] / f_tau) * value(analysis_.clocks()[e], node.s);
        }
      }
      total += node.weight * inner;
    }
    return total;
  }

 private:
  struct Node {
    double s = 0.0;
    double weight = 0.0;
  };

  [[nodiscard]] double cdf_tau(double s) const {
    return 1.0 - analysis_.race_survival(s);
  }

  [[nodiscard]] double invert(double u, double s_lo, double s_hi) const {
    for (int it = 0; it < 44 && s_hi - s_lo > 1e-13 * (1.0 + s_hi); ++it) {
      const double mid = 0.5 * (s_lo + s_hi);
      if (cdf_tau(mid) < u) {
        s_lo = mid;
      } else {
        s_hi = mid;
      }
    }
    return 0.5 * (s_lo + s_hi);
  }

  const RegenerationAnalysis& analysis_;
  const numerics::GaussRule& rule_;
  std::vector<Node> nodes_;
};

}  // namespace

RegenerativeSolver::RegenerativeSolver(DcsScenario scenario,
                                       RegenSolverOptions options)
    : scenario_(std::move(scenario)), options_(options) {
  scenario_.validate();
  AGEDTR_REQUIRE(options_.quad_nodes >= 2 && options_.quad_nodes <= 64,
                 "RegenerativeSolver: quad_nodes must be in [2, 64]");
}

double RegenerativeSolver::mean_execution_time(const DtrPolicy& policy) const {
  for (const ServerSpec& s : scenario_.servers) {
    AGEDTR_REQUIRE(!s.failure,
                   "mean_execution_time: requires completely reliable "
                   "servers");
  }
  return mean_execution_time(SystemState::initial(scenario_, policy));
}

double RegenerativeSolver::qos(const DtrPolicy& policy,
                               double deadline) const {
  return qos(SystemState::initial(scenario_, policy), deadline);
}

double RegenerativeSolver::reliability(const DtrPolicy& policy) const {
  return reliability(SystemState::initial(scenario_, policy));
}

double RegenerativeSolver::mean_execution_time(const SystemState& state) const {
  metrics::TraceSpan span("regen.mean_execution_time", "solver",
                          &regen_seconds());
  return mean_rec(state, 0, BudgetTimer(options_.budget));
}

double RegenerativeSolver::qos(const SystemState& state,
                               double deadline) const {
  AGEDTR_REQUIRE(deadline >= 0.0, "qos: deadline must be nonnegative");
  metrics::TraceSpan span("regen.qos", "solver", &regen_seconds());
  return prob_rec(state, deadline, 0, BudgetTimer(options_.budget));
}

double RegenerativeSolver::reliability(const SystemState& state) const {
  metrics::TraceSpan span("regen.reliability", "solver", &regen_seconds());
  return prob_rec(state, std::numeric_limits<double>::infinity(), 0,
                  BudgetTimer(options_.budget));
}

int RegenerativeSolver::effective_max_depth() const {
  return options_.budget.max_depth > 0 ? options_.budget.max_depth
                                       : options_.max_depth;
}

double RegenerativeSolver::integrate_over_regeneration(
    const RegenerationAnalysis& analysis, double cap,
    const std::function<double(const Clock&, double)>& value) const {
  const RegenerationQuadrature quad(analysis, cap, options_.quad_nodes);
  return quad.integrate(value);
}

double RegenerativeSolver::mean_rec(const SystemState& state, int depth,
                                    const BudgetTimer& timer) const {
  if (state.workload_done()) {
    depth_histogram().observe(static_cast<double>(depth));
    return 0.0;
  }
  if (depth >= effective_max_depth()) {
    depth_exhausted_counter().add();
    throw DepthBudgetExceeded(
        "RegenerativeSolver: configuration exceeds the reference solver's "
        "depth budget (use ConvolutionSolver)");
  }
  timer.check("RegenerativeSolver");
  const RegenerationAnalysis analysis(scenario_, state);
  AGEDTR_ASSERT(!analysis.empty());
  const double horizon = analysis.horizon(options_.survival_eps);
  // E[τ_a] comes from the adaptive survival integral: s(u) has an endpoint
  // singularity at u → 1 that the fixed probability-domain rule resolves
  // poorly, and this term needs full accuracy (it adds up once per level).
  const RegenerationQuadrature quad(analysis, horizon, options_.quad_nodes);
  return analysis.expected_minimum() +
         quad.integrate([&](const Clock& clock, double s) {
           return mean_rec(apply_regeneration_event(scenario_, state, clock, s),
                           depth + 1, timer);
         });
}

double RegenerativeSolver::prob_rec(const SystemState& state, double deadline,
                                    int depth,
                                    const BudgetTimer& timer) const {
  if (state.workload_lost() || state.workload_done() || deadline <= 0.0) {
    depth_histogram().observe(static_cast<double>(depth));
    // Terminal order matters: a lost workload never completes, a completed
    // one did so within the time already consumed regardless of what is
    // left of the deadline.
    if (state.workload_lost()) return 0.0;
    return state.workload_done() ? 1.0 : 0.0;
  }
  if (depth >= effective_max_depth()) {
    depth_exhausted_counter().add();
    throw DepthBudgetExceeded(
        "RegenerativeSolver: configuration exceeds the reference solver's "
        "depth budget (use ConvolutionSolver)");
  }
  timer.check("RegenerativeSolver");
  const RegenerationAnalysis analysis(scenario_, state);
  AGEDTR_ASSERT(!analysis.empty());
  const double horizon = analysis.horizon(options_.survival_eps);
  const double cap = std::isfinite(deadline) ? std::min(horizon, deadline)
                                             : horizon;
  const RegenerationQuadrature quad(analysis, cap, options_.quad_nodes);
  return quad.integrate([&](const Clock& clock, double s) {
    return prob_rec(apply_regeneration_event(scenario_, state, clock, s),
                    deadline - s, depth + 1, timer);
  });
}

}  // namespace agedtr::core
