#include "agedtr/core/markovian.hpp"

#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {
namespace {

double exponential_rate(const dist::DistPtr& law, const char* what) {
  AGEDTR_REQUIRE(law != nullptr && law->is_memoryless(),
                 std::string("MarkovianSolver: ") + what +
                     " law must be exponential");
  return 1.0 / law->mean();
}

}  // namespace

bool MarkovianSolver::DpState::operator<(const DpState& other) const {
  if (group_mask != other.group_mask) return group_mask < other.group_mask;
  if (up_mask != other.up_mask) return up_mask < other.up_mask;
  return tasks < other.tasks;
}

MarkovianSolver::MarkovianSolver(DcsScenario scenario)
    : scenario_(std::move(scenario)) {
  scenario_.validate();
  const std::size_t n = scenario_.size();
  AGEDTR_REQUIRE(n <= 16, "MarkovianSolver: at most 16 servers supported");
  service_rate_.resize(n);
  failure_rate_.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    service_rate_[k] =
        exponential_rate(scenario_.servers[k].service, "service");
    if (scenario_.servers[k].failure) {
      failure_rate_[k] =
          exponential_rate(scenario_.servers[k].failure, "failure");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        (void)exponential_rate(scenario_.transfer[i][j], "transfer");
      }
    }
  }
}

double MarkovianSolver::mean_execution_time(const DtrPolicy& policy) const {
  const std::size_t n = scenario_.size();
  for (std::size_t k = 0; k < n; ++k) {
    AGEDTR_REQUIRE(!scenario_.servers[k].failure,
                   "mean_execution_time: requires completely reliable "
                   "servers (clear the failure laws)");
  }
  const std::vector<ServerWorkload> workloads =
      apply_policy(scenario_, policy);
  groups_.clear();
  DpState init;
  init.tasks.resize(n);
  init.up_mask = (1u << n) - 1u;
  for (std::size_t j = 0; j < n; ++j) {
    init.tasks[j] = workloads[j].local_tasks;
    for (const ServerWorkload::Inbound& g : workloads[j].inbound) {
      // Markovian model: the group's transfer is exponential with the
      // group's true mean (L·z̄ under per-task scaling).
      const double group_mean =
          g.transfer->mean() * (g.per_task ? g.tasks : 1);
      groups_.push_back({j, g.tasks, 1.0 / group_mean});
    }
  }
  AGEDTR_REQUIRE(groups_.size() <= 31,
                 "MarkovianSolver: too many in-transit groups");
  init.group_mask = (1u << groups_.size()) - 1u;
  std::map<DpState, double> memo;
  return mean_rec(std::move(init), memo);
}

double MarkovianSolver::mean_rec(DpState state,
                                 std::map<DpState, double>& memo) const {
  bool done = state.group_mask == 0;
  for (int m : state.tasks) {
    if (m > 0) done = false;
  }
  if (done) return 0.0;
  if (const auto it = memo.find(state); it != memo.end()) return it->second;

  const std::size_t n = state.tasks.size();
  double total_rate = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (state.tasks[k] > 0) total_rate += service_rate_[k];
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (state.group_mask & (1u << g)) total_rate += groups_[g].rate;
  }
  AGEDTR_ASSERT(total_rate > 0.0);

  double value = 1.0;  // numerator: 1 + Σ rate_e·T̄(next); divide at the end
  for (std::size_t k = 0; k < n; ++k) {
    if (state.tasks[k] <= 0) continue;
    DpState next = state;
    --next.tasks[k];
    value += service_rate_[k] * mean_rec(std::move(next), memo);
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (!(state.group_mask & (1u << g))) continue;
    DpState next = state;
    next.group_mask &= ~(1u << g);
    next.tasks[groups_[g].to] += groups_[g].tasks;
    value += groups_[g].rate * mean_rec(std::move(next), memo);
  }
  value /= total_rate;
  memo.emplace(std::move(state), value);
  return value;
}

double MarkovianSolver::reliability(const DtrPolicy& policy) const {
  const std::size_t n = scenario_.size();
  const std::vector<ServerWorkload> workloads =
      apply_policy(scenario_, policy);
  groups_.clear();
  DpState init;
  init.tasks.resize(n);
  init.up_mask = (1u << n) - 1u;
  for (std::size_t j = 0; j < n; ++j) {
    init.tasks[j] = workloads[j].local_tasks;
    for (const ServerWorkload::Inbound& g : workloads[j].inbound) {
      // Markovian model: the group's transfer is exponential with the
      // group's true mean (L·z̄ under per-task scaling).
      const double group_mean =
          g.transfer->mean() * (g.per_task ? g.tasks : 1);
      groups_.push_back({j, g.tasks, 1.0 / group_mean});
    }
  }
  AGEDTR_REQUIRE(groups_.size() <= 31,
                 "MarkovianSolver: too many in-transit groups");
  init.group_mask = (1u << groups_.size()) - 1u;
  std::map<DpState, double> memo;
  return rel_rec(std::move(init), memo);
}

double MarkovianSolver::rel_rec(DpState state,
                                std::map<DpState, double>& memo) const {
  const std::size_t n = state.tasks.size();
  bool done = state.group_mask == 0;
  for (int m : state.tasks) {
    if (m > 0) done = false;
  }
  if (done) return 1.0;
  if (const auto it = memo.find(state); it != memo.end()) return it->second;

  double total_rate = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const bool up = (state.up_mask >> k) & 1u;
    if (!up) continue;
    if (state.tasks[k] > 0) total_rate += service_rate_[k];
    total_rate += failure_rate_[k];
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (state.group_mask & (1u << g)) total_rate += groups_[g].rate;
  }
  if (total_rate <= 0.0) {
    // No live clocks but the workload is unfinished: stranded forever.
    memo.emplace(std::move(state), 0.0);
    return 0.0;
  }

  double value = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const bool up = (state.up_mask >> k) & 1u;
    if (!up) continue;
    if (state.tasks[k] > 0) {
      DpState next = state;
      --next.tasks[k];
      value += service_rate_[k] * rel_rec(std::move(next), memo);
    }
    if (failure_rate_[k] > 0.0) {
      // Failure of k: the workload is lost if k holds tasks or a group is
      // bound for k; otherwise the system continues without k.
      bool lost = state.tasks[k] > 0;
      for (std::size_t g = 0; g < groups_.size() && !lost; ++g) {
        if ((state.group_mask & (1u << g)) && groups_[g].to == k) lost = true;
      }
      if (!lost) {
        DpState next = state;
        next.up_mask &= ~(1u << k);
        value += failure_rate_[k] * rel_rec(std::move(next), memo);
      }
      // lost contributes 0.
    }
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (!(state.group_mask & (1u << g))) continue;
    DpState next = state;
    next.group_mask &= ~(1u << g);
    const std::size_t to = groups_[g].to;
    const bool up = (state.up_mask >> to) & 1u;
    if (up) {
      next.tasks[to] += groups_[g].tasks;
      value += groups_[g].rate * rel_rec(std::move(next), memo);
    }
    // Arrival at a failed server strands the tasks: contributes 0. (This
    // branch is unreachable because the failure transition already declares
    // the workload lost, but it documents the semantics.)
  }
  value /= total_rate;
  memo.emplace(std::move(state), value);
  return value;
}

}  // namespace agedtr::core
