#include "agedtr/core/lattice_workspace.hpp"

#include <utility>
#include <vector>

#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::core {

using numerics::LatticeDensity;

namespace {

// Process-wide mirrors of the per-instance WorkspaceStats: the instance
// stats feed assertions and bench tables for one workspace; the metrics
// aggregate across every workspace in the process for the --metrics report.
metrics::Counter& hits_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "workspace.hits_total", "lattice cache hits (base + k-fold sums)");
  return c;
}

metrics::Counter& misses_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "workspace.misses_total", "lattice cache misses (base + k-fold sums)");
  return c;
}

metrics::Counter& ws_bytes_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "workspace.bytes_total", "bytes of lattice densities materialized");
  return c;
}

}  // namespace

LatticeWorkspace::LawEntry& LatticeWorkspace::entry_locked(
    const dist::DistPtr& law, double dt, std::size_t cells) {
  const GridKey key{law.get(), dt, cells};
  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  LawEntry entry{law, dist::discretize(*law, dt, cells), {}, {}};
  // Publish with the CDF prefix sums in place: cached densities are shared
  // across threads and ensure_cdf() mutates on first use.
  entry.base.ensure_cdf();
  stats_.bytes += density_bytes(entry.base);
  ws_bytes_counter().add(density_bytes(entry.base));
  ++stats_.laws;
  return entries_.emplace(key, std::move(entry)).first->second;
}

const LatticeDensity& LatticeWorkspace::base(const dist::DistPtr& law,
                                             double dt, std::size_t cells) {
  AGEDTR_REQUIRE(law != nullptr, "LatticeWorkspace::base: null law");
  AGEDTR_REQUIRE(dt > 0.0, "LatticeWorkspace::base: dt must be positive");
  MutexLock lock(&mutex_);
  const bool known =
      entries_.find(GridKey{law.get(), dt, cells}) != entries_.end();
  if (known) {
    ++stats_.base_hits;
    hits_counter().add();
  } else {
    ++stats_.base_misses;
    misses_counter().add();
  }
  return entry_locked(law, dt, cells).base;
}

LatticeDensity LatticeWorkspace::sum(const dist::DistPtr& law, unsigned k,
                                     double dt, std::size_t cells) {
  AGEDTR_REQUIRE(law != nullptr, "LatticeWorkspace::sum: null law");
  AGEDTR_REQUIRE(dt > 0.0, "LatticeWorkspace::sum: dt must be positive");
  if (k == 0) return LatticeDensity::zero(dt, cells);
  if (k == 1) return base(law, dt, cells);

  unsigned needed_levels = 0;
  for (unsigned kk = k; kk > 1; kk >>= 1u) ++needed_levels;
  // Copy the needed ladder rungs W^{*2^i} under the lock (extending the
  // ladder if required), then compose outside it so concurrent sweeps do
  // not serialize on the per-k convolution work.
  std::vector<LatticeDensity> rungs;
  {
    MutexLock lock(&mutex_);
    LawEntry& entry = entry_locked(law, dt, cells);
    const auto it = entry.sums.find(k);
    if (it != entry.sums.end()) {
      ++stats_.sum_hits;
      hits_counter().add();
      return it->second;
    }
    ++stats_.sum_misses;
    misses_counter().add();
    if (entry.powers.empty()) entry.powers.push_back(entry.base);
    while (entry.powers.size() <= needed_levels) {
      entry.powers.push_back(entry.powers.back().convolve(entry.powers.back()));
      entry.powers.back().ensure_cdf();
      stats_.bytes += density_bytes(entry.powers.back());
      ws_bytes_counter().add(density_bytes(entry.powers.back()));
    }
    for (unsigned bit = 0; (1u << bit) <= k; ++bit) {
      if (k & (1u << bit)) rungs.push_back(entry.powers[bit]);
    }
  }
  LatticeDensity result = std::move(rungs.front());
  for (std::size_t i = 1; i < rungs.size(); ++i) {
    result = result.convolve(rungs[i]);
  }
  result.ensure_cdf();  // cached entries are shared across threads
  {
    MutexLock lock(&mutex_);
    LawEntry& entry = entry_locked(law, dt, cells);
    const auto [ins, fresh] = entry.sums.emplace(k, result);
    if (fresh) {
      stats_.bytes += density_bytes(ins->second);
      ws_bytes_counter().add(density_bytes(ins->second));
    }
  }
  return result;
}

WorkspaceStats LatticeWorkspace::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void LatticeWorkspace::clear() {
  MutexLock lock(&mutex_);
  entries_.clear();
  stats_ = WorkspaceStats{};
}

}  // namespace agedtr::core
