#include "agedtr/core/lattice_workspace.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::core {

using numerics::LatticeDensity;

namespace {

// Process-wide mirrors of the per-instance WorkspaceStats: the instance
// stats feed assertions and bench tables for one workspace; the metrics
// aggregate across every workspace in the process for the --metrics report.
metrics::Counter& hits_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "workspace.hits_total", "lattice cache hits (base + k-fold sums)");
  return c;
}

metrics::Counter& misses_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "workspace.misses_total", "lattice cache misses (base + k-fold sums)");
  return c;
}

metrics::Counter& ws_bytes_counter() {
  static metrics::Counter& c = metrics::MetricsRegistry::global().counter(
      "workspace.bytes_total", "bytes of lattice densities materialized");
  return c;
}

// Padded transform length every convolution of two n-cell densities uses
// (full linear length 2n−1 rounded up): the length cached spectra must be
// built at so shared entries convolve without a forward transform.
std::size_t conv_padded(std::size_t cells) {
  return numerics::next_pow2(2 * cells - 1);
}

}  // namespace

std::uint64_t LatticeWorkspace::prepare_for_sharing(const LatticeDensity& d,
                                                    std::size_t cells) {
  d.ensure_cdf();
  if (!numerics::use_direct_convolution(cells, cells)) {
    d.ensure_spectrum(conv_padded(cells));
  }
  return d.cache_bytes();
}

LatticeWorkspace::LawEntry& LatticeWorkspace::entry_locked(
    const dist::DistPtr& law, double dt, std::size_t cells) {
  const GridKey key{law.get(), dt, cells};
  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  LawEntry entry{law, dist::discretize(*law, dt, cells), {}, {}};
  // Publish with the CDF prefix sums and (FFT-sized grids) the forward
  // spectrum in place: cached densities are shared across threads and both
  // caches mutate on first use.
  const std::uint64_t bytes = prepare_for_sharing(entry.base, cells);
  stats_.bytes += bytes;
  ws_bytes_counter().add(bytes);
  ++stats_.laws;
  return entries_.emplace(key, std::move(entry)).first->second;
}

const LatticeDensity& LatticeWorkspace::zero_locked(double dt,
                                                    std::size_t cells) {
  const auto key = std::make_pair(dt, cells);
  const auto it = zeros_.find(key);
  if (it != zeros_.end()) return it->second;
  const auto ins = zeros_.emplace(key, LatticeDensity::zero(dt, cells)).first;
  // The point mass at zero never convolves through the FFT path (the
  // identity shortcut fires first), so only the CDF needs pre-building.
  ins->second.ensure_cdf();
  return ins->second;
}

const LatticeDensity& LatticeWorkspace::base(const dist::DistPtr& law,
                                             double dt, std::size_t cells) {
  AGEDTR_REQUIRE(law != nullptr, "LatticeWorkspace::base: null law");
  AGEDTR_REQUIRE(dt > 0.0, "LatticeWorkspace::base: dt must be positive");
  MutexLock lock(&mutex_);
  const bool known =
      entries_.find(GridKey{law.get(), dt, cells}) != entries_.end();
  if (known) {
    ++stats_.base_hits;
    hits_counter().add();
  } else {
    ++stats_.base_misses;
    misses_counter().add();
  }
  return entry_locked(law, dt, cells).base;
}

const LatticeDensity& LatticeWorkspace::sum(const dist::DistPtr& law,
                                            unsigned k, double dt,
                                            std::size_t cells) {
  AGEDTR_REQUIRE(law != nullptr, "LatticeWorkspace::sum: null law");
  AGEDTR_REQUIRE(dt > 0.0, "LatticeWorkspace::sum: dt must be positive");
  if (k == 0) {
    MutexLock lock(&mutex_);
    return zero_locked(dt, cells);
  }
  if (k == 1) return base(law, dt, cells);

  unsigned needed_levels = 0;
  for (unsigned kk = k; kk > 1; kk >>= 1u) ++needed_levels;
  // Collect the needed ladder rungs W^{*2^i} under the lock (extending the
  // ladder if required), then compose outside it so concurrent sweeps do
  // not serialize on the per-k convolution work. The rung references stay
  // valid (deque) and readable (caches pre-built) without the lock.
  std::vector<const LatticeDensity*> rungs;
  {
    MutexLock lock(&mutex_);
    LawEntry& entry = entry_locked(law, dt, cells);
    const auto it = entry.sums.find(k);
    if (it != entry.sums.end()) {
      ++stats_.sum_hits;
      hits_counter().add();
      return it->second;
    }
    ++stats_.sum_misses;
    misses_counter().add();
    if (entry.powers.empty()) entry.powers.push_back(entry.base);
    while (entry.powers.size() <= needed_levels) {
      entry.powers.push_back(entry.powers.back().convolve(entry.powers.back()));
      const std::uint64_t bytes =
          prepare_for_sharing(entry.powers.back(), cells);
      stats_.bytes += bytes;
      ws_bytes_counter().add(bytes);
    }
    for (unsigned bit = 0; (1u << bit) <= k; ++bit) {
      if (k & (1u << bit)) rungs.push_back(&entry.powers[bit]);
    }
  }
  LatticeDensity result = *rungs.front();
  for (std::size_t i = 1; i < rungs.size(); ++i) {
    result = result.convolve(*rungs[i]);
  }
  // Cached entries are shared across threads: build the lazy caches now.
  const std::uint64_t bytes = prepare_for_sharing(result, cells);
  MutexLock lock(&mutex_);
  LawEntry& entry = entry_locked(law, dt, cells);
  const auto [ins, fresh] = entry.sums.emplace(k, std::move(result));
  if (fresh) {
    stats_.bytes += bytes;
    ws_bytes_counter().add(bytes);
  }
  return ins->second;
}

WorkspaceStats LatticeWorkspace::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void LatticeWorkspace::clear() {
  MutexLock lock(&mutex_);
  entries_.clear();
  zeros_.clear();
  stats_ = WorkspaceStats{};
}

}  // namespace agedtr::core
