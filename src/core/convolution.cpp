#include "agedtr/core/convolution.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <memory_resource>
#include <optional>
#include <utility>
#include <vector>

#include "agedtr/numerics/kernels.hpp"
#include "agedtr/numerics/scratch.hpp"
#include "agedtr/util/error.hpp"
#include "agedtr/util/metrics.hpp"

namespace agedtr::core {

using numerics::LatticeDensity;

namespace {

metrics::Histogram& conv_seconds() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "convolution.call_seconds",
      metrics::exponential_buckets(1e-5, 4.0, 12),
      "wall time of one ConvolutionSolver metric call");
  return h;
}

metrics::Histogram& lattice_cells() {
  static metrics::Histogram& h = metrics::MetricsRegistry::global().histogram(
      "convolution.lattice_cells",
      metrics::exponential_buckets(64.0, 2.0, 12),
      "lattice size (cells) of the grids metric calls run on");
  return h;
}

/// Lattice law of min(X₁, …, X_k) for independent lattice variables:
/// S_min(t) = Π S_i(t).
LatticeDensity lattice_min(const std::vector<const LatticeDensity*>& parts) {
  AGEDTR_ASSERT(!parts.empty());
  const double dt = parts.front()->dt();
  std::size_t n = 0;
  for (const auto* p : parts) n = std::max(n, p->size());
  std::vector<double> mass(n, 0.0);
  double prev_cdf = 0.0;
  double tail = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    double surv = 1.0;
    for (const auto* p : parts) {
      surv *= 1.0 - p->cdf(i);
    }
    const double cdf = 1.0 - surv;
    mass[i] = std::max(cdf - prev_cdf, 0.0);
    prev_cdf = cdf;
    tail = surv;
  }
  return LatticeDensity(dt, std::move(mass), std::max(tail, 0.0));
}

}  // namespace

ConvolutionSolver::ConvolutionSolver(
    ConvolutionOptions options, std::shared_ptr<LatticeWorkspace> workspace)
    : options_(options), workspace_(std::move(workspace)) {
  AGEDTR_REQUIRE(options_.cells >= 64,
                 "ConvolutionSolver: need at least 64 lattice cells");
  AGEDTR_REQUIRE(options_.horizon_multiple >= 1.0,
                 "ConvolutionSolver: horizon multiple must be >= 1");
  if (workspace_ == nullptr) workspace_ = std::make_shared<LatticeWorkspace>();
  if (options_.dt > 0.0) {
    MutexLock lock(&mutex_);  // uncontended; satisfies dt_'s capability
    dt_ = options_.dt;
  }
}

double ConvolutionSolver::dt() const {
  MutexLock lock(&mutex_);
  AGEDTR_REQUIRE(dt_ > 0.0, "ConvolutionSolver: grid not yet derived");
  return dt_;
}

void ConvolutionSolver::ensure_grid(
    const std::vector<ServerWorkload>& workloads) const {
  MutexLock lock(&mutex_);
  if (dt_ > 0.0) return;
  double horizon = options_.horizon;
  if (horizon <= 0.0) {
    // Policy-invariant auto horizon: the whole workload served at the
    // slowest server plus the slowest transfer, times a safety multiple.
    int total_tasks = 0;
    double max_service_mean = 0.0;
    double max_transfer_mean = 0.0;
    for (const ServerWorkload& w : workloads) {
      AGEDTR_REQUIRE(w.service != nullptr,
                     "ConvolutionSolver: missing service law");
      total_tasks += w.total_tasks();
      max_service_mean = std::max(max_service_mean, w.service->mean());
      for (const ServerWorkload::Inbound& g : w.inbound) {
        max_transfer_mean = std::max(max_transfer_mean, g.transfer->mean());
      }
    }
    AGEDTR_REQUIRE(total_tasks > 0,
                   "ConvolutionSolver: the workload is empty");
    horizon = options_.horizon_multiple *
              (total_tasks * max_service_mean + max_transfer_mean);
  }
  dt_ = horizon / static_cast<double>(options_.cells);
}

const LatticeDensity& ConvolutionSolver::base_lattice(
    const dist::DistPtr& law) const {
  double dt;
  {
    MutexLock lock(&mutex_);
    AGEDTR_ASSERT(dt_ > 0.0);
    dt = dt_;
  }
  return workspace_->base(law, dt, options_.cells);
}

const LatticeDensity& ConvolutionSolver::service_sum(
    const dist::DistPtr& service, unsigned k) const {
  double dt;
  {
    MutexLock lock(&mutex_);
    AGEDTR_ASSERT(dt_ > 0.0);
    dt = dt_;
  }
  return workspace_->sum(service, k, dt, options_.cells);
}

LatticeDensity ConvolutionSolver::completion_density(
    const ServerWorkload& workload) const {
  AGEDTR_REQUIRE(workload.service != nullptr,
                 "completion_density: missing service law");
  AGEDTR_REQUIRE(workload.local_tasks >= 0,
                 "completion_density: negative local task count");
  {
    MutexLock lock(&mutex_);
    AGEDTR_REQUIRE(dt_ > 0.0,
                   "completion_density: call a metric first or set dt "
                   "explicitly (the grid must be frozen)");
  }
  const LatticeDensity& local =
      service_sum(workload.service,
                  static_cast<unsigned>(workload.local_tasks));
  if (workload.inbound.empty()) return local;

  int inbound_tasks = 0;
  // Workspace references, not copies: cached densities are immutable (CDF
  // and spectrum pre-built) for the workspace's lifetime.
  std::vector<const LatticeDensity*> transfers;
  transfers.reserve(workload.inbound.size());
  for (const ServerWorkload::Inbound& g : workload.inbound) {
    AGEDTR_REQUIRE(g.tasks > 0 && g.transfer != nullptr,
                   "completion_density: malformed inbound group");
    inbound_tasks += g.tasks;
    // Per-task scaling: the group's arrival time is the tasks-fold sum of
    // the per-task law, built (and cached) on the solver's own lattice.
    transfers.push_back(g.per_task
                            ? &service_sum(g.transfer,
                                           static_cast<unsigned>(g.tasks))
                            : &base_lattice(g.transfer));
  }
  const LatticeDensity* arrival = transfers.front();
  std::optional<LatticeDensity> batched;
  if (transfers.size() > 1) {
    switch (options_.multi_group) {
      case ConvolutionOptions::MultiGroup::kBatchMax:
        batched.emplace(
            LatticeDensity::max_of(*transfers[0], *transfers[1]));
        for (std::size_t i = 2; i < transfers.size(); ++i) {
          batched.emplace(LatticeDensity::max_of(*batched, *transfers[i]));
        }
        break;
      case ConvolutionOptions::MultiGroup::kBatchMin:
        batched.emplace(lattice_min(transfers));
        break;
      case ConvolutionOptions::MultiGroup::kReject:
        AGEDTR_REQUIRE(false,
                       "completion_density: server has multiple inbound "
                       "groups and multi_group == kReject");
    }
    arrival = &*batched;
  }
  const LatticeDensity busy_until = LatticeDensity::max_of(local, *arrival);
  const LatticeDensity& inbound_work =
      service_sum(workload.service, static_cast<unsigned>(inbound_tasks));
  return busy_until.convolve(inbound_work);
}

double ConvolutionSolver::tail_mean_correction(
    const ServerWorkload& workload,
    const LatticeDensity& completion) const {
  const double t_max =
      completion.dt() * static_cast<double>(completion.size());
  // One-big-jump estimate: beyond the grid the completion survives mainly
  // because a single component (one service draw or the transfer) is huge
  // while the rest sit near their means.
  const double grid_mean =
      completion.grid_mean() + completion.tail() * t_max;
  const double w_mean = workload.service->mean();
  const int k = workload.total_tasks();
  double correction = 0.0;
  if (k > 0) {
    const double t_eff =
        std::max(t_max - (grid_mean - w_mean), 0.5 * t_max);
    correction += static_cast<double>(k) * workload.service->integral_sf(t_eff);
  }
  for (const ServerWorkload::Inbound& g : workload.inbound) {
    const double copies = g.per_task ? static_cast<double>(g.tasks) : 1.0;
    const double t_eff =
        std::max(t_max - (grid_mean - g.transfer->mean()), 0.5 * t_max);
    correction += copies * g.transfer->integral_sf(t_eff);
  }
  return correction;
}

double ConvolutionSolver::mean_execution_time(
    const std::vector<ServerWorkload>& workloads) const {
  AGEDTR_REQUIRE(!workloads.empty(), "mean_execution_time: no servers");
  for (const ServerWorkload& w : workloads) {
    AGEDTR_REQUIRE(w.failure == nullptr,
                   "mean_execution_time: the average execution time is "
                   "defined for completely reliable servers");
  }
  metrics::TraceSpan span("conv.mean_execution_time", "solver",
                          &conv_seconds());
  lattice_cells().observe(static_cast<double>(options_.cells));
  ensure_grid(workloads);
  const BudgetTimer timer(options_.budget);
  std::vector<LatticeDensity> completions;
  completions.reserve(workloads.size());
  double correction = 0.0;
  for (const ServerWorkload& w : workloads) {
    if (w.total_tasks() == 0) continue;  // contributes F ≡ 1
    timer.check("ConvolutionSolver");
    completions.push_back(completion_density(w));
    correction += tail_mean_correction(w, completions.back());
  }
  if (completions.empty()) return 0.0;
  // ∫ (1 − Π_j F_j(t)) dt on the lattice (rectangle rule), then the
  // analytic beyond-grid correction. The product runs column-wise over the
  // completions' CDF arrays (all on the solver's grid) so each pass is one
  // vector multiply.
  const std::size_t cells = completions.front().size();
  numerics::ScratchFrame frame;
  std::pmr::vector<double> prod(cells, 1.0, frame.resource());
  for (const LatticeDensity& c : completions) {
    AGEDTR_ASSERT(c.size() == cells);
    numerics::kernels::mul_inplace(prod.data(), c.cdf_values().data(), cells);
  }
  const double mean = static_cast<double>(cells) -
                      numerics::kernels::sum(prod.data(), cells);
  return mean * dt_ + correction;
}

double ConvolutionSolver::ExecutionTimeLaw::quantile(double p) const {
  AGEDTR_REQUIRE(p > 0.0 && p < 1.0,
                 "ExecutionTimeLaw::quantile: p must be in (0, 1)");
  AGEDTR_REQUIRE(p < 1.0 - tail,
                 "ExecutionTimeLaw::quantile: p lies beyond the lattice "
                 "horizon (raise ConvolutionOptions::horizon)");
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), p);
  AGEDTR_ASSERT(it != cdf.end());
  return static_cast<double>(it - cdf.begin()) * dt;
}

ConvolutionSolver::ExecutionTimeLaw ConvolutionSolver::execution_time_law(
    const std::vector<ServerWorkload>& workloads) const {
  AGEDTR_REQUIRE(!workloads.empty(), "execution_time_law: no servers");
  bool infinite_variance = false;
  for (const ServerWorkload& w : workloads) {
    AGEDTR_REQUIRE(w.failure == nullptr,
                   "execution_time_law: defined for completely reliable "
                   "servers (T = ∞ has positive probability otherwise)");
    if (w.total_tasks() > 0 && !std::isfinite(w.service->variance())) {
      infinite_variance = true;
    }
    for (const ServerWorkload::Inbound& g : w.inbound) {
      if (!std::isfinite(g.transfer->variance())) infinite_variance = true;
    }
  }
  metrics::TraceSpan span("conv.execution_time_law", "solver",
                          &conv_seconds());
  lattice_cells().observe(static_cast<double>(options_.cells));
  ensure_grid(workloads);
  const BudgetTimer timer(options_.budget);
  std::vector<LatticeDensity> completions;
  double correction = 0.0;
  for (const ServerWorkload& w : workloads) {
    if (w.total_tasks() == 0) continue;
    timer.check("ConvolutionSolver");
    completions.push_back(completion_density(w));
    correction += tail_mean_correction(w, completions.back());
  }
  ExecutionTimeLaw law;
  law.dt = dt_;
  if (completions.empty()) {  // empty workload: T == 0
    law.cdf.assign(1, 1.0);
    return law;
  }
  const std::size_t cells = completions.front().size();
  law.cdf.assign(cells, 1.0);
  for (const LatticeDensity& c : completions) {
    AGEDTR_ASSERT(c.size() == cells);
    numerics::kernels::mul_inplace(law.cdf.data(), c.cdf_values().data(),
                                   cells);
  }
  double mean = 0.0;
  double second_moment = 0.0;
  const double* cdf = law.cdf.data();
  const double step = dt_;
  AGEDTR_PRAGMA(omp simd reduction(+ : mean, second_moment))
  for (std::size_t i = 0; i < cells; ++i) {
    const double survival = 1.0 - cdf[i];
    const double t = static_cast<double>(i) * step;
    mean += survival;
    second_moment += 2.0 * t * survival;
  }
  law.tail = 1.0 - law.cdf.back();
  law.mean = mean * dt_ + correction;
  if (infinite_variance) {
    law.variance = std::numeric_limits<double>::infinity();
  } else {
    // E[T²] = 2∫ t·S_T(t) dt; beyond-grid part bounded via the mean
    // correction at the horizon (light tails make it negligible).
    const double t_max = static_cast<double>(cells) * dt_;
    second_moment = second_moment * dt_ + 2.0 * t_max * correction;
    law.variance = std::max(second_moment - law.mean * law.mean, 0.0);
  }
  return law;
}

std::vector<ConvolutionSolver::ServerUsage> ConvolutionSolver::server_usage(
    const std::vector<ServerWorkload>& workloads) const {
  AGEDTR_REQUIRE(!workloads.empty(), "server_usage: no servers");
  metrics::TraceSpan span("conv.server_usage", "solver", &conv_seconds());
  lattice_cells().observe(static_cast<double>(options_.cells));
  ensure_grid(workloads);
  const BudgetTimer timer(options_.budget);
  std::vector<ServerUsage> usage(workloads.size());
  for (std::size_t j = 0; j < workloads.size(); ++j) {
    const ServerWorkload& w = workloads[j];
    if (w.total_tasks() == 0) continue;
    timer.check("ConvolutionSolver");
    usage[j].expected_busy_time =
        static_cast<double>(w.total_tasks()) * w.service->mean();
    const LatticeDensity completion = completion_density(w);
    usage[j].expected_completion =
        completion.grid_mean() + tail_mean_correction(w, completion);
    if (!w.inbound.empty()) {
      // E[(Z − A)⁺] = ∫ P{A <= t}·P{Z > t} dt on the lattice, with the
      // batch-arrival law standing in when several groups are inbound.
      const LatticeDensity& local = service_sum(
          w.service, static_cast<unsigned>(w.local_tasks));
      std::vector<const LatticeDensity*> transfers;
      for (const ServerWorkload::Inbound& g : w.inbound) {
        transfers.push_back(g.per_task
                                ? &service_sum(g.transfer,
                                               static_cast<unsigned>(g.tasks))
                                : &base_lattice(g.transfer));
      }
      std::optional<LatticeDensity> batched;
      const LatticeDensity* arrival = transfers.front();
      for (std::size_t i = 1; i < transfers.size(); ++i) {
        batched.emplace(LatticeDensity::max_of(*arrival, *transfers[i]));
        arrival = &*batched;
      }
      // Σ F_local(i)·(1 − F_arrival(i)) = Σ F_local − ⟨F_local, F_arrival⟩,
      // with the arrival CDF clamped to 1 − tail past its grid.
      const std::vector<double>& lc = local.cdf_values();
      const std::vector<double>& ac = arrival->cdf_values();
      const std::size_t common = std::min(local.size(), arrival->size());
      double gap = numerics::kernels::sum(lc.data(), common) -
                   numerics::kernels::dot(lc.data(), ac.data(), common);
      if (local.size() > common) {
        gap += arrival->tail() * numerics::kernels::sum(
                                     lc.data() + common, local.size() - common);
      }
      usage[j].expected_idle_gap = gap * dt_;
    }
  }
  return usage;
}

double ConvolutionSolver::qos(const std::vector<ServerWorkload>& workloads,
                              double deadline) const {
  AGEDTR_REQUIRE(!workloads.empty(), "qos: no servers");
  AGEDTR_REQUIRE(deadline >= 0.0, "qos: deadline must be nonnegative");
  metrics::TraceSpan span("conv.qos", "solver", &conv_seconds());
  lattice_cells().observe(static_cast<double>(options_.cells));
  ensure_grid(workloads);
  const BudgetTimer timer(options_.budget);
  double prob = 1.0;
  for (const ServerWorkload& w : workloads) {
    if (w.total_tasks() == 0) continue;
    timer.check("ConvolutionSolver");
    const LatticeDensity c = completion_density(w);
    const auto limit = static_cast<std::size_t>(
        std::min(deadline / c.dt(), static_cast<double>(c.size())));
    double factor = 0.0;
    if (w.failure) {
      const dist::Distribution& y = *w.failure;
      for (std::size_t i = 0; i < limit; ++i) {
        const double m = c.mass(i);
        if (m != 0.0) factor += m * y.sf(static_cast<double>(i) * c.dt());
      }
    } else {
      factor = limit > 0 ? c.cdf(limit - 1) : 0.0;
    }
    prob *= factor;
    if (prob == 0.0) return 0.0;
  }
  return prob;
}

double ConvolutionSolver::reliability(
    const std::vector<ServerWorkload>& workloads) const {
  AGEDTR_REQUIRE(!workloads.empty(), "reliability: no servers");
  metrics::TraceSpan span("conv.reliability", "solver", &conv_seconds());
  lattice_cells().observe(static_cast<double>(options_.cells));
  ensure_grid(workloads);
  const BudgetTimer timer(options_.budget);
  double prob = 1.0;
  for (const ServerWorkload& w : workloads) {
    if (w.total_tasks() == 0) continue;  // nothing to lose on this server
    if (!w.failure) continue;            // reliable server always finishes
    timer.check("ConvolutionSolver");
    const LatticeDensity c = completion_density(w);
    const dist::Distribution& y = *w.failure;
    double factor = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double m = c.mass(i);
      if (m != 0.0) factor += m * y.sf(static_cast<double>(i) * c.dt());
    }
    // Upper-bound treatment of the beyond-grid mass (evaluated at t_max);
    // with the default horizon this term is ≤ tail() and negligible.
    factor += c.tail() * y.sf(static_cast<double>(c.size()) * c.dt());
    prob *= factor;
    if (prob == 0.0) return 0.0;
  }
  return prob;
}

}  // namespace agedtr::core
