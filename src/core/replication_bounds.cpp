#include "agedtr/core/replication_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/core/regeneration.hpp"
#include "agedtr/dist/compose.hpp"
#include "agedtr/dist/sum_iid.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The law of one group's transfer from `origin` to `host` under the
/// scenario's scaling; nullptr when the copy never crosses the network.
dist::DistPtr group_arrival_law(const DcsScenario& scenario,
                                std::size_t origin, std::size_t host,
                                int tasks) {
  if (origin == host) return nullptr;
  const dist::DistPtr& base = scenario.transfer[origin][host];
  AGEDTR_REQUIRE(base != nullptr,
                 "replication bounds: missing transfer law " +
                     std::to_string(origin) + " -> " + std::to_string(host));
  if (scenario.transfer_scaling == TransferScaling::kPerTask) {
    return dist::sum_iid(base, static_cast<unsigned>(tasks));
  }
  return base;
}

}  // namespace

dist::DistPtr replica_completion_law(const DcsScenario& scenario,
                                     const WorkUnit& unit, std::size_t host) {
  AGEDTR_REQUIRE(host < scenario.size(),
                 "replica_completion_law: host out of range");
  AGEDTR_REQUIRE(unit.tasks > 0,
                 "replica_completion_law: unit must hold tasks");
  const dist::DistPtr service_sum =
      dist::sum_iid(scenario.servers[host].service,
                    static_cast<unsigned>(unit.tasks));
  const dist::DistPtr arrival =
      group_arrival_law(scenario, unit.origin, host, unit.tasks);
  if (!arrival) return service_sum;
  return dist::convolved(arrival, service_sum);
}

ReplicationBounds replication_completion_bounds(
    const DcsScenario& scenario, const DtrPolicy& policy,
    const ReplicationPlan& plan, const ReplicationBoundsOptions& options) {
  plan.validate(scenario, policy);
  AGEDTR_REQUIRE(options.slowdown_factor > 0.0 &&
                     options.slowdown_factor <= 1.0,
                 "replication bounds: slowdown factor must lie in (0, 1] "
                 "(permanent stalls admit no finite work-conserving bound)");
  AGEDTR_REQUIRE(options.tail_eps > 0.0 && options.tail_eps < 1.0,
                 "replication bounds: tail_eps must lie in (0, 1)");
  const std::size_t n = scenario.size();
  for (std::size_t j = 0; j < n; ++j) {
    AGEDTR_REQUIRE(scenario.servers[j].failure == nullptr,
                   "replication bounds assume reliable servers; server " +
                       std::to_string(j) + " has a failure law");
  }
  const std::vector<WorkUnit> units = enumerate_work_units(scenario, policy);
  const BudgetTimer timer(options.budget);

  ReplicationBounds bounds;
  if (units.empty()) {
    // No work: T = 0 with certainty.
    if (options.deadline > 0.0) bounds.qos_lower = 1.0;
    return bounds;
  }

  // ---- Lower bound: independent min-of-r races, one per unit.
  std::vector<RegenerationAnalysis> races;
  races.reserve(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    timer.check("replication_completion_bounds");
    std::vector<Clock> clocks;
    clocks.reserve(plan.replica_sets[u].size());
    for (const std::size_t host : plan.replica_sets[u]) {
      clocks.push_back({Clock::Kind::kService, host,
                        replica_completion_law(scenario, units[u], host)});
    }
    races.emplace_back(std::move(clocks));
  }
  double lower_horizon = 0.0;
  for (const RegenerationAnalysis& race : races) {
    lower_horizon = std::max(lower_horizon, race.horizon(options.tail_eps));
  }
  const auto max_survival = [&races](double s) {
    // P{max_u C_u > s} = 1 − ∏_u F_u(s) with F_u = 1 − ∏_ρ S_ρ.
    double prod = 1.0;
    for (const RegenerationAnalysis& race : races) {
      prod *= 1.0 - race.race_survival(s);
      if (prod == 0.0) return 1.0;
    }
    return 1.0 - prod;
  };
  // Truncating the integral at the horizon only drops nonnegative mass, so
  // the result stays a valid lower bound.
  bounds.mean_lower =
      numerics::integrate(max_survival, 0.0, lower_horizon, 1e-10, 1e-8)
          .value;
  if (options.deadline > 0.0) {
    double prod = 1.0;
    for (const RegenerationAnalysis& race : races) {
      prod *= 1.0 - race.race_survival(options.deadline);
    }
    bounds.qos_upper = std::clamp(prod, 0.0, 1.0);
  }

  // ---- Upper bound: per-host FIFO work conservation under worst-case
  // slowdowns. Every segment at host h completes by
  //   B_h = max(arrivals at h) + (total natural work at h) / φ.
  std::vector<int> host_work(n, 0);
  std::vector<std::vector<dist::DistPtr>> host_arrivals(n);
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (const std::size_t host : plan.replica_sets[u]) {
      host_work[host] += units[u].tasks;
      dist::DistPtr arrival =
          group_arrival_law(scenario, units[u].origin, host, units[u].tasks);
      if (arrival) host_arrivals[host].push_back(std::move(arrival));
    }
  }
  std::vector<dist::DistPtr> host_bound(n);
  for (std::size_t h = 0; h < n; ++h) {
    if (host_work[h] == 0) continue;
    timer.check("replication_completion_bounds");
    dist::DistPtr law = dist::scaled(
        dist::sum_iid(scenario.servers[h].service,
                      static_cast<unsigned>(host_work[h])),
        1.0 / options.slowdown_factor);
    if (!host_arrivals[h].empty()) {
      law = dist::convolved(dist::max_of(std::move(host_arrivals[h])),
                            std::move(law));
    }
    host_bound[h] = std::move(law);
  }
  const auto unit_upper_survival = [&](std::size_t u, double s) {
    double surv = 1.0;
    for (const std::size_t host : plan.replica_sets[u]) {
      surv = std::min(surv, host_bound[host]->sf(s));
      if (surv == 0.0) return 0.0;
    }
    return surv;
  };
  const auto union_survival = [&](double s) {
    double total = 0.0;
    for (std::size_t u = 0; u < units.size(); ++u) {
      total += unit_upper_survival(u, s);
      if (total >= 1.0) return 1.0;
    }
    return total;
  };
  double upper_horizon = 0.0;
  for (std::size_t h = 0; h < n; ++h) {
    if (host_bound[h]) upper_horizon = std::max(upper_horizon,
                                                host_bound[h]->mean());
  }
  upper_horizon = std::max(upper_horizon, 1e-6);
  bool horizon_found = false;
  for (int i = 0; i < 200; ++i) {
    timer.check("replication_completion_bounds");
    if (union_survival(upper_horizon) <= options.tail_eps) {
      horizon_found = true;
      break;
    }
    upper_horizon *= 2.0;
  }
  if (!horizon_found) {
    bounds.mean_upper = kInf;  // heavy tails defeated the doubling search
  } else {
    double tail = 0.0;
    std::vector<double> host_tail(n, 0.0);
    for (std::size_t h = 0; h < n; ++h) {
      if (host_bound[h]) {
        timer.check("replication_completion_bounds");
        host_tail[h] = host_bound[h]->integral_sf(upper_horizon);
      }
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
      double best = kInf;
      for (const std::size_t host : plan.replica_sets[u]) {
        best = std::min(best, host_tail[host]);
      }
      tail += best;
    }
    bounds.mean_upper =
        numerics::integrate(union_survival, 0.0, upper_horizon, 1e-10, 1e-8)
            .value +
        tail;
  }
  if (options.deadline > 0.0) {
    bounds.qos_lower =
        std::clamp(1.0 - union_survival(options.deadline), 0.0, 1.0);
  }
  return bounds;
}

}  // namespace agedtr::core
