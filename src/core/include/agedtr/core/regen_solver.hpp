// Literal implementation of Theorem 1: the age-dependent regenerative
// recursions for T̄(S₀), R_TM(S₀) and R_∞(S₀).
//
//   T̄(S)    = E[τ_a] + Σ_e ∫ G_e(s) · T̄(S_e(s)) ds
//   R_TM(S) =          Σ_e ∫_0^{T_M} G_e(s) · R_{TM−s}(S_e(s)) ds
//
// where e ranges over the regeneration events (task service, server
// failure, FN arrival, group arrival), G_e(s) = f_e(s)·Π_{e'≠e} S_{e'}(s)
// with every law aged by the state's age variables, and S_e(s) is the
// emergent configuration (ages advanced by s, event applied).
//
// The recursion nests one numerical integral per event depth, so its cost is
// exponential in the total event count: it is *the reference
// implementation*, used to validate the scalable ConvolutionSolver and the
// Markovian baseline on small configurations (Σ tasks ≲ 6), exactly the
// role the state-space theory plays in the paper. Integration uses
// composite Gauss–Legendre panels split at the clocks' support breakpoints
// (shifts and bounded supports produce kinks in G_e).
#pragma once

#include <functional>

#include "agedtr/core/regeneration.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/util/budget.hpp"

namespace agedtr::core {

struct RegenSolverOptions {
  /// Gauss–Legendre nodes per panel (in the probability domain).
  int quad_nodes = 10;
  /// Race-survival level treated as zero when choosing the horizon.
  double survival_eps = 1e-9;
  /// Recursion depth guard; exceeding it indicates a configuration too large
  /// for the reference solver and throws BudgetExceeded.
  int max_depth = 48;
  /// Per-call resource caps: budget.max_depth (when > 0) overrides
  /// max_depth, budget.max_seconds caps the wall clock of each public
  /// metric call. Overruns throw BudgetExceeded, which the
  /// policy::ResilientEvaluator fallback chain catches to degrade to a
  /// cheaper solver.
  EvalBudget budget;
};

class RegenerativeSolver {
 public:
  explicit RegenerativeSolver(DcsScenario scenario,
                              RegenSolverOptions options = {});

  /// T̄(L; S₀); requires completely reliable servers.
  [[nodiscard]] double mean_execution_time(const DtrPolicy& policy) const;

  /// R_TM(L; S₀) = P{T < T_M}.
  [[nodiscard]] double qos(const DtrPolicy& policy, double deadline) const;

  /// R_∞(L; S₀) = P{T < ∞}.
  [[nodiscard]] double reliability(const DtrPolicy& policy) const;

  /// Metric evaluation from an arbitrary hybrid state (nonzero ages
  /// included) — the general entry point Theorem 1 is stated for.
  [[nodiscard]] double mean_execution_time(const SystemState& state) const;
  [[nodiscard]] double qos(const SystemState& state, double deadline) const;
  [[nodiscard]] double reliability(const SystemState& state) const;

  [[nodiscard]] const DcsScenario& scenario() const { return scenario_; }

 private:
  double mean_rec(const SystemState& state, int depth,
                  const BudgetTimer& timer) const;
  /// `deadline` = +inf computes R_∞.
  double prob_rec(const SystemState& state, double deadline, int depth,
                  const BudgetTimer& timer) const;
  /// options_.budget.max_depth (when set) wins over options_.max_depth.
  [[nodiscard]] int effective_max_depth() const;

  /// Evaluates Σ_e ∫_0^{cap} G_e(s)·value(e, s) ds by Gauss–Legendre in the
  /// *probability domain*: substituting u = F_τ(s) places the nodes exactly
  /// where the regeneration time carries mass, keeping the rule accurate
  /// for heavy-tailed (Pareto) and bounded-support laws alike. Panels are
  /// split at the clocks' support breakpoints (mapped into u) and the
  /// inverse s(u) is recovered by bisection on the race survival.
  double integrate_over_regeneration(
      const RegenerationAnalysis& analysis, double cap,
      const std::function<double(const Clock&, double)>& value) const;

  DcsScenario scenario_;
  RegenSolverOptions options_;
};

}  // namespace agedtr::core
