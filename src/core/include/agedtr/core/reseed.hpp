// Snapshot → scenario re-seeding: the bridge that makes mid-flight
// re-decisions well-posed. An observed hybrid state S(t) (queue lengths,
// survivors, in-transit groups, ages — Section II-B) is distilled into a
// *fresh* DcsScenario over the surviving servers, with every still-running
// failure clock replaced by its aged view T_a through the aged-pdf
// machinery (dist::aged). Any one-shot decision maker can then be invoked
// on the re-seeded scenario exactly as it would be at t = 0 — the device
// behind policy::RollingHorizonPolicy and sim::DcsSimulator::run_rolling.
#pragma once

#include <cstddef>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/core/state.hpp"

namespace agedtr::core {

struct ReseedOptions {
  /// Credit every in-transit group to its destination's queue (tasks in the
  /// network are committed: reliable message passing will deliver them, and
  /// only a later failure can strand them). Groups bound for an already
  /// failed server are excluded — they are lost, not pending.
  bool credit_in_transit = true;
  /// Replace each surviving server's failure law Y_j by its aged view
  /// aged(Y_j, a_F(j)): the server has already survived to its failure-clock
  /// age, so the re-seeded problem conditions on that survival. At age 0 (or
  /// for memoryless laws) the base law is returned unchanged, which makes
  /// the age-0 re-seed an exact round trip.
  bool age_failure_laws = true;
};

/// A re-seeded decision problem: the compacted scenario over survivors plus
/// the index maps needed to translate decisions back to the full system.
struct ReseededScenario {
  /// The fresh t' = 0 scenario: one server per survivor, queues loaded with
  /// the observed (plus credited in-transit) tasks, failure laws aged.
  DcsScenario scenario;
  /// survivors[c] = original index of compact server c (ascending).
  std::vector<std::size_t> survivors;
  /// Server count of the original system the snapshot was taken from.
  std::size_t full_size = 0;

  /// Translates a policy devised on the compact scenario back to the full
  /// index space (rows/columns of dead servers are all-zero).
  [[nodiscard]] DtrPolicy expand(const DtrPolicy& compact) const;
};

/// Distills `observed` (a snapshot of the live system against `base`) into a
/// fresh decision problem. Requires at least one surviving server, a state
/// sized to the scenario, and — when age_failure_laws is set — failure
/// clocks whose survival to their observed age is still numerically
/// possible (dist::can_age).
[[nodiscard]] ReseededScenario reseed_scenario(const DcsScenario& base,
                                               const SystemState& observed,
                                               const ReseedOptions& options = {});

}  // namespace agedtr::core
