// LatticeWorkspace: the shared cache substrate every lattice-based solver
// draws from.
//
// A ConvolutionSolver spends almost all of its time in two places: the
// discretization of a continuous law onto a lattice grid, and the k-fold
// FFT power ladder behind i.i.d. service sums. Both depend only on
// (distribution identity, grid) — not on which solver, policy, or scenario
// asked — so hoisting them out of the solver lets every evaluation that
// shares a grid share the work: the (i, j) subproblems of Algorithm 1, the
// two engines of a trade-off analysis, the candidate scenarios of an
// allocation search, and repeated devise() calls all hit the same tables.
//
// Keying and identity. Entries are keyed by (distribution object, dt,
// cells, k). Identity is the distribution *object*, matching the solvers'
// contract that equal pointers mean equal laws; to make that sound across
// the workspace's longer lifetime, every entry pins its law with a
// shared_ptr. A pinned address can never be recycled for a different
// distribution, so the raw-pointer key cannot alias (the classic ABA
// hazard of caching by address) for as long as the entry lives.
//
// Thread safety. All public methods are safe to call concurrently; one
// mutex guards the tables. Ladder extension (the W^{*2^i} doublings)
// happens under the lock — the rungs are shared state — while the final
// per-k composition runs outside it so concurrent sweeps do not serialize
// on each other's FFTs. Cached densities have their CDF prefix sums and
// (on grids large enough for the FFT convolution path) their forward rfft
// spectra built before they are published, making subsequent reads —
// including frequency-domain convolutions against them — lock-free and
// const.
//
// Accounting. Hit/miss counters (split by base-discretization and k-fold
// lookups) and an approximate resident-byte count let benches and servers
// watch cache effectiveness; see WorkspaceStats.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>

#include "agedtr/dist/distribution.hpp"
#include "agedtr/numerics/lattice.hpp"
#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::core {

/// Cache-effectiveness counters for a LatticeWorkspace.
struct WorkspaceStats {
  /// Base-discretization lookups served from / missing in the cache.
  std::uint64_t base_hits = 0;
  std::uint64_t base_misses = 0;
  /// Exact k-fold-sum lookups (k >= 2) served from / missing in the cache.
  std::uint64_t sum_hits = 0;
  std::uint64_t sum_misses = 0;
  /// Approximate bytes resident in cached densities (mass + CDF arrays,
  /// plus the cached forward spectra on FFT-sized grids).
  std::uint64_t bytes = 0;
  /// Distinct (law, grid) entries.
  std::uint64_t laws = 0;

  [[nodiscard]] std::uint64_t hits() const { return base_hits + sum_hits; }
  [[nodiscard]] std::uint64_t misses() const {
    return base_misses + sum_misses;
  }
};

/// Thread-safe cache of lattice discretizations and k-fold i.i.d. sums,
/// shared across solver instances via shared_ptr.
class LatticeWorkspace {
 public:
  LatticeWorkspace() = default;
  LatticeWorkspace(const LatticeWorkspace&) = delete;
  LatticeWorkspace& operator=(const LatticeWorkspace&) = delete;

  /// The discretization of `law` on the grid {0, dt, …, (cells−1)·dt}.
  /// The reference stays valid (and its CDF pre-built) for the workspace's
  /// lifetime; the law is pinned alive by the entry.
  [[nodiscard]] const numerics::LatticeDensity& base(const dist::DistPtr& law,
                                                     double dt,
                                                     std::size_t cells);

  /// The law of the k-fold i.i.d. sum of `law` on the same grid (k == 0 is
  /// the point mass at zero, k == 1 the base discretization). Exact k-fold
  /// results and the binary power ladder behind them are cached; like
  /// base(), the returned reference stays valid (CDF and, on FFT-sized
  /// grids, forward spectrum pre-built) until clear().
  [[nodiscard]] const numerics::LatticeDensity& sum(const dist::DistPtr& law,
                                                    unsigned k, double dt,
                                                    std::size_t cells);

  [[nodiscard]] WorkspaceStats stats() const;

  /// Drops every cached density (counters are reset too).
  void clear();

 private:
  struct GridKey {
    const dist::Distribution* law = nullptr;
    double dt = 0.0;
    std::size_t cells = 0;
    [[nodiscard]] bool operator<(const GridKey& o) const {
      if (law != o.law) return law < o.law;
      if (dt != o.dt) return dt < o.dt;
      return cells < o.cells;
    }
  };
  struct LawEntry {
    dist::DistPtr pin;  // keeps the keyed address from being recycled
    numerics::LatticeDensity base;
    /// powers[i] = the 2^i-fold sum (powers[0] == base). A deque so the
    /// rung references handed out under the lock survive later ladder
    /// extensions (the per-k composition reads them lock-free).
    std::deque<numerics::LatticeDensity> powers;
    /// Exact k-fold sums for the k's actually requested.
    std::map<unsigned, numerics::LatticeDensity> sums;
  };

  /// Locates (creating on miss) the entry for (law, dt, cells). Caller must
  /// hold `mutex_` (compile-time enforced under Clang).
  LawEntry& entry_locked(const dist::DistPtr& law, double dt,
                         std::size_t cells) AGEDTR_REQUIRES(mutex_);

  /// The cached point mass at zero for a grid (k == 0 sums). Kept outside
  /// the law entries — it depends on no law — and outside the hit/miss
  /// stats, which count only real lattice work.
  const numerics::LatticeDensity& zero_locked(double dt, std::size_t cells)
      AGEDTR_REQUIRES(mutex_);

  /// Pre-builds the caches a published density needs for lock-free shared
  /// reads (CDF always; forward spectrum when this grid convolves through
  /// the FFT path), then reports its resident bytes.
  [[nodiscard]] static std::uint64_t prepare_for_sharing(
      const numerics::LatticeDensity& d, std::size_t cells);

  mutable Mutex mutex_;
  std::map<GridKey, LawEntry> entries_ AGEDTR_GUARDED_BY(mutex_);
  std::map<std::pair<double, std::size_t>, numerics::LatticeDensity> zeros_
      AGEDTR_GUARDED_BY(mutex_);
  WorkspaceStats stats_ AGEDTR_GUARDED_BY(mutex_);
};

}  // namespace agedtr::core
