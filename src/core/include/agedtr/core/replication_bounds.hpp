// Analytic completion-time bounds for a replicated workload, built on the
// regenerative framework: each work unit's r replicas race as r clocks, so
// the unit's completion survival is the min-of-r product ∏_ρ S_ρ(s) that
// RegenerationAnalysis::race_survival computes.
//
// Lower bound (no contention, no slowdowns): give every replica a dedicated
// copy of its host, so replica ρ of a unit with L tasks finishes at
// transfer_ρ + Σ_{t=1..L} W_{h_ρ}, all draws independent. Removing
// contention and slowdowns only speeds every unit up on the shared
// probability space, so E[max_u min_ρ ...] is a true lower bound on E[T]
// and ∏_u F_u(d) a true upper bound on QoS(d).
//
// Upper bound (FIFO work conservation under worst-case slowdowns): every
// segment hosted at server h completes by B_h = (latest arrival among h's
// segments) + (total natural work at h) / φ, where φ > 0 is the worst-case
// service-rate floor a slowdown can impose. A unit therefore completes by
// min_ρ B_{h_ρ}, and a union bound over units gives
// E[T] <= ∫ min(1, Σ_u min_ρ S_{B_{h_ρ}}(s)) ds.
//
// Validity assumptions (checked where checkable, documented in
// docs/FAULT_MODEL.md): reliable servers (no failure laws), a reliable
// network (no channel faults), independent transfer/service draws, and —
// for finite upper bounds — rate-scaling slowdowns with factor >= φ > 0
// (permanent stalls admit no finite work-conserving bound).
#pragma once

#include <cstddef>
#include <vector>

#include "agedtr/core/replication.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/util/budget.hpp"

namespace agedtr::core {

struct ReplicationBoundsOptions {
  /// Deadline for the QoS bounds; <= 0 skips them (qos bounds stay [0, 1]).
  double deadline = 0.0;
  /// Worst-case service-rate floor φ ∈ (0, 1]: during a slowdown window a
  /// server still serves at rate >= φ. 1 = no slowdowns.
  double slowdown_factor = 1.0;
  /// Survival mass below which the numeric integration horizon is cut.
  double tail_eps = 1e-9;
  /// Wall-clock cap for the bound integrals (checked once per work unit).
  EvalBudget budget;
};

struct ReplicationBounds {
  /// E[T] ∈ [mean_lower, mean_upper] (mean_upper may be +inf when no
  /// finite work-conserving bound exists).
  double mean_lower = 0.0;
  double mean_upper = 0.0;
  /// P{T <= deadline} ∈ [qos_lower, qos_upper] when a deadline was given.
  double qos_lower = 0.0;
  double qos_upper = 1.0;
};

/// The no-contention completion law of one replica of `unit` hosted at
/// `host`: the group's transfer to `host` (none when host == origin)
/// convolved with the `tasks`-fold service sum at `host`. This is the law
/// whose min-of-r products the lower bound races.
[[nodiscard]] dist::DistPtr replica_completion_law(const DcsScenario& scenario,
                                                   const WorkUnit& unit,
                                                   std::size_t host);

/// Completion-time bounds for (scenario, policy, plan). Throws
/// InvalidArgument when the model assumptions above are violated (failure
/// laws present, malformed plan, slowdown_factor outside (0, 1]).
[[nodiscard]] ReplicationBounds replication_completion_bounds(
    const DcsScenario& scenario, const DtrPolicy& policy,
    const ReplicationPlan& plan, const ReplicationBoundsOptions& options = {});

}  // namespace agedtr::core
