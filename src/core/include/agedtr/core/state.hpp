// The hybrid (discrete × continuous) age-dependent system state
// S(t) = (M(t), F(t), C(t), a(t)) of Section II-B: queue lengths, perceived
// functional states, in-transit task groups and FN packets, and the age
// variables attached to every non-exponential clock.
#pragma once

#include <cstddef>
#include <vector>

#include "agedtr/core/scenario.hpp"

namespace agedtr::core {

/// A group of tasks in flight (one column entry of C with its a_C age).
struct TransitGroup {
  std::size_t from = 0;
  std::size_t to = 0;
  int tasks = 0;
  dist::DistPtr transfer;  // Z law (unaged; the age lives in `age`)
  double age = 0.0;
};

/// A failure notice in flight from a failed server.
struct FnPacket {
  std::size_t from = 0;
  std::size_t to = 0;
  dist::DistPtr transfer;  // X law
  double age = 0.0;
};

struct SystemState {
  /// M(t): tasks queued per server.
  std::vector<int> tasks;
  /// Diagonal of F(t): the true functional state of each server.
  std::vector<char> up;
  /// Off-diagonal F(t): perceived[i][j] == 1 iff server i believes j is up.
  std::vector<std::vector<char>> perceived;
  /// C(t) with ages a_C.
  std::vector<TransitGroup> groups;
  /// FN packets in flight with ages (the off-diagonal a_F entries).
  std::vector<FnPacket> fn_packets;
  /// a_M: age of the service clock per server (meaningful while serving).
  std::vector<double> service_age;
  /// Diagonal a_F: age of the failure clock per server.
  std::vector<double> failure_age;

  [[nodiscard]] std::size_t size() const { return tasks.size(); }

  /// The absorbing success state: M(t) = 0 and C(t) = 0.
  [[nodiscard]] bool workload_done() const;

  /// True when the workload can no longer finish: some failed server still
  /// holds tasks, or a group is bound for a failed server (tasks cannot be
  /// recovered from failed servers nor discarded by the network).
  [[nodiscard]] bool workload_lost() const;

  /// Adds s to every age (a ← a + s after a regeneration at τ_a = s).
  void advance_ages(double s);

  /// Builds S(0) for a scenario under a policy: r_j tasks queued, one group
  /// per positive L_ij, everything fresh (null age matrix), all servers up
  /// and perceived up.
  [[nodiscard]] static SystemState initial(const DcsScenario& scenario,
                                           const DtrPolicy& policy);
};

}  // namespace agedtr::core
