// Transient analysis of the Markovian DCS as an absorbing CTMC via
// uniformization, giving the Markovian-model QoS P{T(S₀) < T_M} that the
// paper's Table I compares against the age-dependent model. Also provides
// the mean absorption time as an independent cross-check of the DP solver.
#pragma once

#include <cstddef>
#include <vector>

#include "agedtr/core/scenario.hpp"

namespace agedtr::core {

class CtmcTransientSolver {
 public:
  /// Enumerates the reachable discrete states (tasks vector × up flags ×
  /// in-transit group subset) under the given policy. Requires all laws
  /// exponential. Workload-lost outcomes collapse into one absorbing LOST
  /// state, success into DONE.
  CtmcTransientSolver(const DcsScenario& scenario, const DtrPolicy& policy);

  /// P{T < deadline}: probability of being absorbed in DONE by `deadline`.
  [[nodiscard]] double qos(double deadline) const;

  /// lim_{t→∞} P{absorbed in DONE} = R_∞ (matches MarkovianSolver).
  [[nodiscard]] double reliability() const;

  /// E[T] (requires reliable servers so absorption into DONE is certain).
  [[nodiscard]] double mean_absorption_time() const;

  [[nodiscard]] std::size_t state_count() const { return transitions_.size(); }

 private:
  struct Transition {
    std::size_t target;
    double rate;
  };

  static constexpr std::size_t kDone = 0;
  static constexpr std::size_t kLost = 1;

  // transitions_[s]: outgoing transitions of state s (empty for absorbing).
  std::vector<std::vector<Transition>> transitions_;
  std::size_t initial_ = 0;
  double uniform_rate_ = 0.0;  // Λ
  bool has_failures_ = false;
};

}  // namespace agedtr::core
