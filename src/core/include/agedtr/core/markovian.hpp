// The Markovian (all-exponential) solver of the authors' earlier work
// ([2],[7]): with every law memoryless the age matrix is unnecessary and the
// metrics satisfy algebraic recurrences with constant coefficients over the
// discrete state (M, F, C). This is the baseline the paper's Section III
// compares the age-dependent model against.
//
// FN-packet clocks are marginalized out: their arrivals change only the
// perceived-state matrix, which does not influence the Section III metrics,
// and in the exponential world removing an irrelevant competing clock leaves
// the law of the remaining process unchanged.
#pragma once

#include <map>
#include <vector>

#include "agedtr/core/scenario.hpp"

namespace agedtr::core {

class MarkovianSolver {
 public:
  /// Requires every service, failure and transfer law in the scenario to be
  /// exponential (is_memoryless()); throws InvalidArgument otherwise.
  explicit MarkovianSolver(DcsScenario scenario);

  /// T̄(S₀; L) assuming completely reliable servers (every failure law must
  /// be empty, matching the paper's definition of the metric).
  [[nodiscard]] double mean_execution_time(const DtrPolicy& policy) const;

  /// R_∞(S₀; L) = P{T < ∞}: the DP over the absorbing chain where a failure
  /// that strands tasks (queued at the dead server or bound for it) loses
  /// the workload.
  [[nodiscard]] double reliability(const DtrPolicy& policy) const;

  [[nodiscard]] const DcsScenario& scenario() const { return scenario_; }

 private:
  struct DpState {
    std::vector<int> tasks;
    unsigned group_mask = 0;  // bit g set = initial group g still in transit
    unsigned up_mask = 0;     // bit k set = server k functioning

    bool operator<(const DpState& other) const;
  };

  struct GroupInfo {
    std::size_t to = 0;
    int tasks = 0;
    double rate = 0.0;  // exponential arrival rate of the group
  };

  double mean_rec(DpState state, std::map<DpState, double>& memo) const;
  double rel_rec(DpState state, std::map<DpState, double>& memo) const;

  DcsScenario scenario_;
  std::vector<double> service_rate_;
  std::vector<double> failure_rate_;  // 0 = reliable

  // Per-policy initial group list (rebuilt in each public call).
  mutable std::vector<GroupInfo> groups_;
};

}  // namespace agedtr::core
