// The static description of a DCS instance (Section II-A): n heterogeneous
// servers with random service and failure times, a network with random
// task-group and failure-notice transfer delays, and an initial workload
// M = Σ m_j. A DtrPolicy L = (L_ij) reallocates tasks at t = 0; applying it
// to a scenario yields the per-server workloads every solver and the
// simulator consume.
#pragma once

#include <optional>
#include <vector>

#include "agedtr/dist/distribution.hpp"

namespace agedtr::core {

/// One server of the DCS.
struct ServerSpec {
  /// Tasks m_j initially queued at this server.
  int initial_tasks = 0;
  /// Service-time law W_j (per task, i.i.d.).
  dist::DistPtr service;
  /// Failure-time law Y_j; empty means the server never fails (the setting
  /// in which the average execution time is a meaningful metric).
  dist::DistPtr failure;
};

/// A DTR policy: L(i, j) tasks move from server i to server j at t = 0.
class DtrPolicy {
 public:
  explicit DtrPolicy(std::size_t n);

  // Policies travel by value through candidate vectors in the searches;
  // the explicit noexcept moves keep that traffic copy-free under
  // container growth (rule `noexcept-move`, docs/layering.toml).
  DtrPolicy(const DtrPolicy&) = default;
  DtrPolicy& operator=(const DtrPolicy&) = default;
  DtrPolicy(DtrPolicy&&) noexcept = default;
  DtrPolicy& operator=(DtrPolicy&&) noexcept = default;
  ~DtrPolicy() = default;

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] int operator()(std::size_t from, std::size_t to) const;
  void set(std::size_t from, std::size_t to, int tasks);

  /// Total tasks leaving server `from`.
  [[nodiscard]] int outgoing(std::size_t from) const;
  /// Total tasks bound for server `to`.
  [[nodiscard]] int incoming(std::size_t to) const;
  /// True if no tasks move.
  [[nodiscard]] bool is_identity() const;

 private:
  std::size_t n_;
  std::vector<int> l_;  // row-major n×n
};

/// How a group's transfer time relates to the configured transfer law.
enum class TransferScaling {
  /// Z_ij is the law of the *whole group*, whatever its size — the paper's
  /// general framework (Assumption A1 lists Z per group).
  kPerGroup,
  /// The law is *per task*; a group of L tasks takes the sum of L i.i.d.
  /// draws (bandwidth-limited links — the paper's low-delay discussion,
  /// "transferring 50 tasks from server 1 to server 2 takes 50 s").
  kPerTask,
};

/// The full DCS instance.
struct DcsScenario {
  std::vector<ServerSpec> servers;
  /// transfer[i][j]: task transfer law Z_ij for i → j (i != j), interpreted
  /// per `transfer_scaling`.
  std::vector<std::vector<dist::DistPtr>> transfer;
  TransferScaling transfer_scaling = TransferScaling::kPerGroup;
  /// fn_transfer[i][j]: failure-notice transfer law X_ij (i != j). Optional;
  /// FN packets do not change the Section III metrics (reallocation happens
  /// only at t = 0) but are modelled for fidelity.
  std::vector<std::vector<dist::DistPtr>> fn_transfer;
  /// The intended total workload M. Optional cross-check: when set,
  /// validate() requires Σ m_j to equal it, so a config whose per-server
  /// loads drifted out of sync with its declared M fails with a file:line
  /// message instead of silently optimizing the wrong system.
  std::optional<int> declared_total_tasks;

  [[nodiscard]] std::size_t size() const { return servers.size(); }
  [[nodiscard]] int total_tasks() const;
  /// Throws InvalidArgument (with a file:line message) if the instance is
  /// malformed: empty server set, negative task counts, matrices
  /// inconsistent with the server count, missing laws, laws with
  /// non-positive or NaN rates/means, or a declared_total_tasks that
  /// disagrees with the per-server loads.
  void validate() const;
};

/// The workload server j faces once a policy is applied: r_j tasks locally
/// plus inbound groups (one per source with L_ij > 0).
struct ServerWorkload {
  int local_tasks = 0;
  dist::DistPtr service;
  dist::DistPtr failure;  // empty = reliable
  struct Inbound {
    int tasks = 0;
    /// Per-group law when !per_task; the per-task base law otherwise (the
    /// group's transfer time is then the `tasks`-fold i.i.d. sum).
    dist::DistPtr transfer;
    bool per_task = false;

    /// The law of the whole group's transfer time under either scaling.
    [[nodiscard]] dist::DistPtr group_transfer_law() const;
  };
  std::vector<Inbound> inbound;

  [[nodiscard]] int total_tasks() const;
};

/// Applies L to the scenario: r_j = m_j − Σ_k L_jk, plus one in-transit
/// group per (i, j) with L_ij > 0. Validates feasibility
/// (0 <= L_ij, Σ_k L_jk <= m_j).
[[nodiscard]] std::vector<ServerWorkload> apply_policy(
    const DcsScenario& scenario, const DtrPolicy& policy);

/// Builder for the paper's symmetric-network scenarios: every pair shares
/// the same task-transfer law and the same FN law.
[[nodiscard]] DcsScenario make_uniform_network_scenario(
    std::vector<ServerSpec> servers, const dist::DistPtr& transfer,
    const dist::DistPtr& fn_transfer);

}  // namespace agedtr::core
