// Exact non-Markovian metric evaluation for t = 0 reallocation policies.
//
// With tasks reallocated only at t = 0 (the setting of the paper's Section
// III experiments), server j's completion time decomposes as
//     C_j = max(A_j, Z_j) + B_j,
// A_j the sum of r_j i.i.d. service draws, Z_j the inbound group's transfer
// time and B_j the sum of the inbound tasks' service draws; the C_j are
// independent across servers. The workload execution time is T = max_j C_j,
//     T̄ = ∫ (1 − Π_j F_{C_j}(t)) dt,
//     R_TM = Π_j P{C_j ≤ T_M, C_j < Y_j},   R_∞ = Π_j P{C_j < Y_j}.
// This evaluates the same stochastic model as the Theorem-1 recursion — the
// RegenerativeSolver validates that equivalence at small scale — but scales
// to the paper's 150-task workloads through lattice densities and FFT
// convolution.
//
// Heavy tails (the Pareto 2 model has infinite variance) are handled by an
// explicit tail ledger: mass leaving the grid is tracked exactly, and the
// mean integral adds a first-order regular-variation correction
// Σ_j k_j·∫_t^∞ S_W based on the one-big-jump principle. QoS and
// reliability integrands are damped (by the deadline or by S_Y), so grid
// truncation affects them only through the reported tail bound.
//
// Servers with several inbound groups (possible under multi-server
// policies) are approximated by a single batch arrival — the approximation
// the paper's "future work" section proposes — with selectable batch
// arrival law (max or min of the transfer times, bracketing the truth).
#pragma once

#include <memory>
#include <vector>

#include "agedtr/core/lattice_workspace.hpp"
#include "agedtr/core/scenario.hpp"
#include "agedtr/numerics/lattice.hpp"
#include "agedtr/util/budget.hpp"
#include "agedtr/util/thread_annotations.hpp"

namespace agedtr::core {

struct ConvolutionOptions {
  /// Lattice step; 0 = derive from horizon/cells on first use.
  double dt = 0.0;
  /// Number of lattice cells. 2^15 keeps each FFT at a few milliseconds
  /// while resolving the paper-scale horizons (~1800 s) at ~0.06 s; raise
  /// for final-figure accuracy, lower for large searches.
  std::size_t cells = 1u << 15;
  /// Grid horizon; 0 = auto: multiple·(M·max_j E[W_j] + max E[Z]).
  double horizon = 0.0;
  /// Safety multiple for the auto horizon.
  double horizon_multiple = 6.0;
  /// How servers with more than one inbound group are treated.
  enum class MultiGroup { kBatchMax, kBatchMin, kReject } multi_group =
      MultiGroup::kBatchMax;
  /// Per-call resource caps: budget.max_seconds bounds the wall clock of
  /// each public metric call (checked between per-server convolution
  /// stages), throwing BudgetExceeded on overrun so fallback layers can
  /// degrade instead of hanging. budget.max_depth is ignored (the solver is
  /// not recursive).
  EvalBudget budget;
};

class ConvolutionSolver {
 public:
  /// `workspace` is the cache substrate for discretizations and k-fold
  /// sums; pass a shared one to reuse lattice work across solver instances
  /// (entries are keyed by grid, so solvers with different dt coexist).
  /// nullptr gives the solver a private workspace.
  explicit ConvolutionSolver(
      ConvolutionOptions options = {},
      std::shared_ptr<LatticeWorkspace> workspace = nullptr);

  /// T̄(L; S₀). Requires every failure law empty (the paper defines the
  /// metric for completely reliable servers). Includes the analytic
  /// heavy-tail mean correction.
  [[nodiscard]] double mean_execution_time(
      const std::vector<ServerWorkload>& workloads) const;

  /// R_TM(L; S₀) = P{T < T_M}; failure laws (if any) are honoured.
  [[nodiscard]] double qos(const std::vector<ServerWorkload>& workloads,
                           double deadline) const;

  /// R_∞(L; S₀) = P{T < ∞} = Π_j P{C_j < Y_j}.
  [[nodiscard]] double reliability(
      const std::vector<ServerWorkload>& workloads) const;

  /// The lattice law of C_j for diagnostics and tests.
  [[nodiscard]] numerics::LatticeDensity completion_density(
      const ServerWorkload& workload) const;

  /// Analytic estimate of ∫_{t_max}^∞ S_{C_j}(t) dt (the mean-integral mass
  /// beyond the grid) for the given workload.
  [[nodiscard]] double tail_mean_correction(
      const ServerWorkload& workload,
      const numerics::LatticeDensity& completion) const;

  /// The lattice step in use (after auto-derivation).
  [[nodiscard]] double dt() const;

  /// The cache substrate this solver draws from (never null).
  [[nodiscard]] const std::shared_ptr<LatticeWorkspace>& workspace() const {
    return workspace_;
  }

  /// The full law of the workload execution time T = max_j C_j for
  /// completely reliable servers: CDF samples on the lattice plus moments
  /// and quantiles. Extends the paper's T̄ to the entire distribution.
  struct ExecutionTimeLaw {
    double dt = 0.0;
    /// cdf[i] = P{T <= i·dt}.
    std::vector<double> cdf;
    double mean = 0.0;
    /// +inf when any service/transfer law has an infinite second moment
    /// (e.g. the Pareto 2 model).
    double variance = 0.0;
    /// Probability mass beyond the lattice horizon (upper bound on the CDF
    /// truncation error).
    double tail = 0.0;

    /// Smallest lattice time t with P{T <= t} >= p; requires p < 1 − tail.
    [[nodiscard]] double quantile(double p) const;
  };
  [[nodiscard]] ExecutionTimeLaw execution_time_law(
      const std::vector<ServerWorkload>& workloads) const;

  /// Per-server resource-usage analytics for a policy (the paper's Section
  /// III-A discussion: optimal low-delay policies keep both servers busy
  /// for approximately the same time).
  struct ServerUsage {
    /// E[busy] = (expected tasks served)·E[W] (all tasks are eventually
    /// served on reliable servers).
    double expected_busy_time = 0.0;
    /// E[(Z − A)⁺]: the expected idle gap a server spends waiting for its
    /// inbound group after draining its own queue (0 with no inbound).
    double expected_idle_gap = 0.0;
    /// E[C_j]: when this server finishes its own work.
    double expected_completion = 0.0;
  };
  [[nodiscard]] std::vector<ServerUsage> server_usage(
      const std::vector<ServerWorkload>& workloads) const;

 private:
  void ensure_grid(const std::vector<ServerWorkload>& workloads) const;
  /// k-fold service convolution, served from the workspace's power-of-two
  /// ladder and exact-sum caches. The reference stays valid for the
  /// workspace's lifetime (no per-call copy).
  [[nodiscard]] const numerics::LatticeDensity& service_sum(
      const dist::DistPtr& service, unsigned k) const;
  [[nodiscard]] const numerics::LatticeDensity& base_lattice(
      const dist::DistPtr& law) const;

  ConvolutionOptions options_;

  // Discretization and k-fold-sum caches live in the (possibly shared)
  // workspace, keyed by (law, dt, cells); the solver itself only freezes
  // the grid.
  std::shared_ptr<LatticeWorkspace> workspace_;
  mutable Mutex mutex_;
  mutable double dt_ AGEDTR_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace agedtr::core
