// Task-group replication (the redundancy axis the source paper leaves
// open): a work unit — one server's local block or one in-transit group —
// may be copied to r servers that race to complete it, with
// cancel-on-first-completion in the spirit of Wang–Joshi–Wornell's
// replicated fork-join and Zubeldia's redundancy-under-slowdown models.
//
// The contract is layered on top of DtrPolicy rather than woven into it:
// a policy still decides *where tasks move*; a ReplicationPlan then decides
// *which servers additionally host a copy of each resulting work unit*.
// enumerate_work_units() defines the canonical unit order (the same order
// apply_policy materializes workloads in), and every replica set is indexed
// against it. An identity plan (every unit hosted only by its primary) is
// the exact unreplicated model: the simulator's replication hooks draw
// nothing extra from the RNG and schedule nothing extra in that case, so
// r = 1 runs stay bit-identical to the seed simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "agedtr/core/scenario.hpp"

namespace agedtr::core {

/// One schedulable unit of work once a policy is applied: either server
/// `destination`'s local block (origin == destination) or the group the
/// policy moves from `origin` to `destination` (origin != destination).
struct WorkUnit {
  std::size_t origin = 0;
  std::size_t destination = 0;
  int tasks = 0;
};

/// The canonical unit enumeration for (scenario, policy): for each
/// destination j in index order, the local block first (omitted when the
/// policy leaves no local tasks), then one unit per inbound group in
/// apply_policy's order (sources in ascending index). Replica sets and the
/// simulator's unit bookkeeping are both indexed against this order.
[[nodiscard]] std::vector<WorkUnit> enumerate_work_units(
    const DcsScenario& scenario, const DtrPolicy& policy);

/// Which servers host a copy of each work unit. replica_sets[u] lists the
/// hosts of unit u with the primary host (the unit's destination) first;
/// hosts are distinct. Replica k > 0 of a unit with origin i receives its
/// copy from i over the scenario's i -> host transfer law (no transfer when
/// the host *is* the origin: the copy never crosses the network).
struct ReplicationPlan {
  std::vector<std::vector<std::size_t>> replica_sets;

  /// True when no unit has more than one host — the unreplicated model.
  [[nodiscard]] bool is_identity() const;

  /// The largest replica-set size (1 for an identity plan, 0 when empty).
  [[nodiscard]] std::size_t max_factor() const;

  /// Throws InvalidArgument unless the plan matches
  /// enumerate_work_units(scenario, policy): one non-empty set per unit,
  /// primary host first, hosts distinct and in range.
  void validate(const DcsScenario& scenario, const DtrPolicy& policy) const;
};

/// Builds the plan replicating every work unit to `factor` hosts: the
/// primary plus the factor - 1 other servers with the smallest mean service
/// time (ties broken toward the smaller index), clamped to the server
/// count. factor == 1 yields the identity plan.
[[nodiscard]] ReplicationPlan make_uniform_replication(
    const DcsScenario& scenario, const DtrPolicy& policy, int factor);

}  // namespace agedtr::core
