// The age-dependent regeneration machinery of Section II-C: at a state S the
// next regeneration time is τ_a = min over the active clocks (task service,
// server failure, FN arrival, group arrival), each clock being the *aged*
// version of its law. This class exposes the quantities Theorem 1 integrates:
//   race survival  P{τ_a > s} = Π_e S_e(s)
//   G_e(s) = P{e wins | τ_a = s}·f_{τ_a}(s) = f_e(s)·Π_{e'≠e} S_{e'}(s)
//   E[τ_a] = ∫_0^∞ P{τ_a > s} ds.
#pragma once

#include <cstddef>
#include <vector>

#include "agedtr/core/state.hpp"

namespace agedtr::core {

/// One active clock in the race at the current state.
struct Clock {
  enum class Kind { kService, kFailure, kGroupArrival, kFnArrival };
  Kind kind = Kind::kService;
  /// Server index for service/failure; index into state.groups /
  /// state.fn_packets for arrivals.
  std::size_t index = 0;
  /// The clock's law *after aging* by the state's age variable.
  dist::DistPtr law;
};

class RegenerationAnalysis {
 public:
  /// Collects the active clocks of `state` under `scenario`:
  ///   - a service clock per up server with queued tasks (W_k aged by a_Mk),
  ///   - a failure clock per up server with a failure law (Y_k aged),
  ///   - an arrival clock per in-transit group (Z aged by a_C),
  ///   - an arrival clock per in-flight FN packet (X aged by a_F).
  RegenerationAnalysis(const DcsScenario& scenario, const SystemState& state);

  /// Races an explicit clock set. This is the entry point the replication
  /// bounds use: the r replicas of a work unit race as r clocks, and
  /// race_survival() is then exactly the min-of-r product ∏ S_ρ(s). Every
  /// law must be non-null.
  explicit RegenerationAnalysis(std::vector<Clock> clocks);

  [[nodiscard]] const std::vector<Clock>& clocks() const { return clocks_; }
  [[nodiscard]] bool empty() const { return clocks_.empty(); }

  /// P{τ_a > s}.
  [[nodiscard]] double race_survival(double s) const;

  /// G for clock e: f_e(s) · Π_{e' ≠ e} S_{e'}(s).
  [[nodiscard]] double g(std::size_t clock_index, double s) const;

  /// The density of τ_a: f_{τ_a}(s) = Σ_e G_e(s).
  [[nodiscard]] double regeneration_pdf(double s) const;

  /// P{clock e wins the race} = ∫ G_e(s) ds (numerical).
  [[nodiscard]] double win_probability(std::size_t clock_index) const;

  /// E[τ_a] = ∫ P{τ_a > s} ds (numerical; +inf-free because at least one
  /// clock has finite mean whenever the race is nonempty).
  [[nodiscard]] double expected_minimum() const;

  /// Smallest s with race_survival(s) <= eps — the practical integration
  /// horizon for the Theorem-1 recursions. Deterministic upper bounds from
  /// the clocks' supports are honoured exactly.
  [[nodiscard]] double horizon(double eps = 1e-10) const;

 private:
  std::vector<Clock> clocks_;
};

/// The state that emerges when `clock` wins the race at τ_a = s
/// (Section II-C1): every age advances by s, then the event is applied —
///   service: one task leaves, the winner's service age resets;
///   failure: the server dies and FN packets to all peers are spawned;
///   group arrival: tasks join the destination queue (a fresh service clock
///     starts if the server was idle);
///   FN arrival: the receiver marks the sender as down in F.
/// The caller handles absorbing outcomes via workload_done()/workload_lost().
[[nodiscard]] SystemState apply_regeneration_event(const DcsScenario& scenario,
                                                   const SystemState& state,
                                                   const Clock& clock,
                                                   double s);

}  // namespace agedtr::core
