#include "agedtr/core/regeneration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "agedtr/dist/aged.hpp"
#include "agedtr/numerics/quadrature.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {

RegenerationAnalysis::RegenerationAnalysis(const DcsScenario& scenario,
                                           const SystemState& state) {
  const std::size_t n = state.size();
  AGEDTR_REQUIRE(scenario.size() == n,
                 "RegenerationAnalysis: scenario/state size mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    if (!state.up[k]) continue;
    if (state.tasks[k] > 0) {
      clocks_.push_back({Clock::Kind::kService, k,
                         dist::aged(scenario.servers[k].service,
                                    state.service_age[k])});
    }
    if (scenario.servers[k].failure) {
      clocks_.push_back({Clock::Kind::kFailure, k,
                         dist::aged(scenario.servers[k].failure,
                                    state.failure_age[k])});
    }
  }
  for (std::size_t g = 0; g < state.groups.size(); ++g) {
    clocks_.push_back({Clock::Kind::kGroupArrival, g,
                       dist::aged(state.groups[g].transfer,
                                  state.groups[g].age)});
  }
  for (std::size_t p = 0; p < state.fn_packets.size(); ++p) {
    clocks_.push_back({Clock::Kind::kFnArrival, p,
                       dist::aged(state.fn_packets[p].transfer,
                                  state.fn_packets[p].age)});
  }
}

RegenerationAnalysis::RegenerationAnalysis(std::vector<Clock> clocks)
    : clocks_(std::move(clocks)) {
  for (const Clock& c : clocks_) {
    AGEDTR_REQUIRE(c.law != nullptr,
                   "RegenerationAnalysis: clock law must be non-null");
  }
}

double RegenerationAnalysis::race_survival(double s) const {
  double surv = 1.0;
  for (const Clock& c : clocks_) {
    surv *= c.law->sf(s);
    if (surv == 0.0) return 0.0;
  }
  return surv;
}

double RegenerationAnalysis::g(std::size_t clock_index, double s) const {
  AGEDTR_REQUIRE(clock_index < clocks_.size(),
                 "RegenerationAnalysis::g: clock index out of range");
  double value = clocks_[clock_index].law->pdf(s);
  if (value == 0.0) return 0.0;
  for (std::size_t e = 0; e < clocks_.size(); ++e) {
    if (e == clock_index) continue;
    value *= clocks_[e].law->sf(s);
    if (value == 0.0) return 0.0;
  }
  return value;
}

double RegenerationAnalysis::regeneration_pdf(double s) const {
  double sum = 0.0;
  for (std::size_t e = 0; e < clocks_.size(); ++e) sum += g(e, s);
  return sum;
}

double RegenerationAnalysis::win_probability(std::size_t clock_index) const {
  const double h = horizon();
  return numerics::integrate(
             [this, clock_index](double s) { return g(clock_index, s); }, 0.0,
             h, 1e-11, 1e-9)
      .value;
}

double RegenerationAnalysis::expected_minimum() const {
  AGEDTR_REQUIRE(!clocks_.empty(),
                 "expected_minimum: no active clocks at this state");
  const double h = horizon();
  return numerics::integrate([this](double s) { return race_survival(s); },
                             0.0, h, 1e-11, 1e-9)
      .value;
}

double RegenerationAnalysis::horizon(double eps) const {
  AGEDTR_REQUIRE(!clocks_.empty(), "horizon: no active clocks");
  // A deterministic cap: the race ends no later than the smallest finite
  // support upper bound among the clocks.
  double cap = std::numeric_limits<double>::infinity();
  double min_mean = std::numeric_limits<double>::infinity();
  for (const Clock& c : clocks_) {
    cap = std::min(cap, c.law->upper_bound());
    min_mean = std::min(min_mean, c.law->mean());
  }
  if (std::isfinite(cap)) return cap;
  double s = std::max(min_mean, 1e-6);
  for (int i = 0; i < 200; ++i) {
    if (race_survival(s) <= eps) return s;
    s *= 2.0;
  }
  return s;  // heavy everything: the integrators damp the residual anyway
}

SystemState apply_regeneration_event(const DcsScenario& scenario,
                                     const SystemState& state,
                                     const Clock& clock, double s) {
  SystemState next = state;
  next.advance_ages(s);
  switch (clock.kind) {
    case Clock::Kind::kService: {
      const std::size_t k = clock.index;
      AGEDTR_ASSERT(next.tasks[k] > 0 && next.up[k]);
      --next.tasks[k];
      next.service_age[k] = 0.0;  // fresh task (or idle clock, inactive)
      break;
    }
    case Clock::Kind::kFailure: {
      const std::size_t k = clock.index;
      AGEDTR_ASSERT(next.up[k]);
      next.up[k] = 0;
      if (!scenario.fn_transfer.empty()) {
        for (std::size_t j = 0; j < next.size(); ++j) {
          if (j == k || !scenario.fn_transfer[k][j]) continue;
          next.fn_packets.push_back({k, j, scenario.fn_transfer[k][j], 0.0});
        }
      }
      break;
    }
    case Clock::Kind::kGroupArrival: {
      const std::size_t g = clock.index;
      AGEDTR_ASSERT(g < next.groups.size());
      const TransitGroup group = next.groups[g];
      next.groups.erase(next.groups.begin() +
                        static_cast<std::ptrdiff_t>(g));
      if (next.tasks[group.to] == 0) next.service_age[group.to] = 0.0;
      next.tasks[group.to] += group.tasks;
      break;
    }
    case Clock::Kind::kFnArrival: {
      const std::size_t p = clock.index;
      AGEDTR_ASSERT(p < next.fn_packets.size());
      const FnPacket packet = next.fn_packets[p];
      next.fn_packets.erase(next.fn_packets.begin() +
                            static_cast<std::ptrdiff_t>(p));
      next.perceived[packet.to][packet.from] = 0;
      break;
    }
  }
  return next;
}

}  // namespace agedtr::core
