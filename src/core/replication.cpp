#include "agedtr/core/replication.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::core {

std::vector<WorkUnit> enumerate_work_units(const DcsScenario& scenario,
                                           const DtrPolicy& policy) {
  scenario.validate();
  const std::size_t n = scenario.size();
  AGEDTR_REQUIRE(policy.size() == n,
                 "enumerate_work_units: policy size does not match scenario");
  std::vector<WorkUnit> units;
  for (std::size_t j = 0; j < n; ++j) {
    const int local =
        scenario.servers[j].initial_tasks - policy.outgoing(j);
    AGEDTR_REQUIRE(local >= 0,
                   "enumerate_work_units: policy sends more tasks than "
                   "server " +
                       std::to_string(j) + " holds");
    if (local > 0) units.push_back({j, j, local});
    for (std::size_t i = 0; i < n; ++i) {
      const int l = (i == j) ? 0 : policy(i, j);
      if (l > 0) units.push_back({i, j, l});
    }
  }
  return units;
}

bool ReplicationPlan::is_identity() const {
  return std::all_of(replica_sets.begin(), replica_sets.end(),
                     [](const std::vector<std::size_t>& hosts) {
                       return hosts.size() <= 1;
                     });
}

std::size_t ReplicationPlan::max_factor() const {
  std::size_t factor = 0;
  for (const std::vector<std::size_t>& hosts : replica_sets) {
    factor = std::max(factor, hosts.size());
  }
  return factor;
}

void ReplicationPlan::validate(const DcsScenario& scenario,
                               const DtrPolicy& policy) const {
  const std::vector<WorkUnit> units = enumerate_work_units(scenario, policy);
  AGEDTR_REQUIRE(replica_sets.size() == units.size(),
                 "ReplicationPlan: " + std::to_string(replica_sets.size()) +
                     " replica sets for " + std::to_string(units.size()) +
                     " work units");
  const std::size_t n = scenario.size();
  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::vector<std::size_t>& hosts = replica_sets[u];
    AGEDTR_REQUIRE(!hosts.empty(), "ReplicationPlan: unit " +
                                       std::to_string(u) +
                                       " has an empty replica set");
    AGEDTR_REQUIRE(hosts.front() == units[u].destination,
                   "ReplicationPlan: unit " + std::to_string(u) +
                       " must list its primary host (destination) first");
    for (std::size_t k = 0; k < hosts.size(); ++k) {
      AGEDTR_REQUIRE(hosts[k] < n, "ReplicationPlan: unit " +
                                       std::to_string(u) +
                                       " names an out-of-range host");
      for (std::size_t l = k + 1; l < hosts.size(); ++l) {
        AGEDTR_REQUIRE(hosts[k] != hosts[l],
                       "ReplicationPlan: unit " + std::to_string(u) +
                           " lists host " + std::to_string(hosts[k]) +
                           " twice");
      }
    }
  }
}

ReplicationPlan make_uniform_replication(const DcsScenario& scenario,
                                         const DtrPolicy& policy,
                                         int factor) {
  AGEDTR_REQUIRE(factor >= 1,
                 "make_uniform_replication: factor must be >= 1");
  const std::vector<WorkUnit> units = enumerate_work_units(scenario, policy);
  const std::size_t n = scenario.size();

  // Rank candidate hosts once: ascending mean service time, ties toward the
  // smaller index, so plans are deterministic across platforms.
  std::vector<std::size_t> ranked(n);
  std::iota(ranked.begin(), ranked.end(), std::size_t{0});
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scenario.servers[a].service->mean() <
                            scenario.servers[b].service->mean();
                   });

  const std::size_t want =
      std::min(static_cast<std::size_t>(factor), n);
  ReplicationPlan plan;
  plan.replica_sets.reserve(units.size());
  for (const WorkUnit& unit : units) {
    std::vector<std::size_t> hosts = {unit.destination};
    for (std::size_t r = 0; r < n && hosts.size() < want; ++r) {
      if (ranked[r] == unit.destination) continue;
      hosts.push_back(ranked[r]);
    }
    plan.replica_sets.push_back(std::move(hosts));
  }
  return plan;
}

}  // namespace agedtr::core
