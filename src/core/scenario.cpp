#include "agedtr/core/scenario.hpp"

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/dist/sum_iid.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {

DtrPolicy::DtrPolicy(std::size_t n) : n_(n), l_(n * n, 0) {
  AGEDTR_REQUIRE(n >= 1, "DtrPolicy: need at least one server");
}

int DtrPolicy::operator()(std::size_t from, std::size_t to) const {
  AGEDTR_REQUIRE(from < n_ && to < n_, "DtrPolicy: index out of range");
  return l_[from * n_ + to];
}

void DtrPolicy::set(std::size_t from, std::size_t to, int tasks) {
  AGEDTR_REQUIRE(from < n_ && to < n_, "DtrPolicy: index out of range");
  AGEDTR_REQUIRE(tasks >= 0, "DtrPolicy: task counts must be nonnegative");
  AGEDTR_REQUIRE(from != to || tasks == 0,
                 "DtrPolicy: a server cannot send tasks to itself");
  l_[from * n_ + to] = tasks;
}

int DtrPolicy::outgoing(std::size_t from) const {
  AGEDTR_REQUIRE(from < n_, "DtrPolicy: index out of range");
  int sum = 0;
  for (std::size_t j = 0; j < n_; ++j) sum += l_[from * n_ + j];
  return sum;
}

int DtrPolicy::incoming(std::size_t to) const {
  AGEDTR_REQUIRE(to < n_, "DtrPolicy: index out of range");
  int sum = 0;
  for (std::size_t i = 0; i < n_; ++i) sum += l_[i * n_ + to];
  return sum;
}

bool DtrPolicy::is_identity() const {
  return std::accumulate(l_.begin(), l_.end(), 0) == 0;
}

int DcsScenario::total_tasks() const {
  int sum = 0;
  for (const ServerSpec& s : servers) sum += s.initial_tasks;
  return sum;
}

namespace {

/// A degenerate law — non-positive or NaN mean — produces NaNs deep inside
/// the solvers; reject it here with a name attached instead. Infinite
/// means are legitimate (Pareto with α <= 1).
void require_positive_mean(const dist::DistPtr& law, const std::string& what) {
  const double mean = law->mean();
  AGEDTR_REQUIRE(mean > 0.0, "DcsScenario: " + what + " law (" + law->name() +
                                 ") has non-positive or NaN mean " +
                                 std::to_string(mean));
}

}  // namespace

void DcsScenario::validate() const {
  const std::size_t n = servers.size();
  AGEDTR_REQUIRE(n >= 1, "DcsScenario: need at least one server");
  for (std::size_t j = 0; j < n; ++j) {
    AGEDTR_REQUIRE(servers[j].initial_tasks >= 0,
                   "DcsScenario: server " + std::to_string(j) +
                       " has a negative initial task count (" +
                       std::to_string(servers[j].initial_tasks) + ")");
    AGEDTR_REQUIRE(servers[j].service != nullptr,
                   "DcsScenario: server " + std::to_string(j) +
                       " needs a service-time law");
    require_positive_mean(servers[j].service,
                          "server " + std::to_string(j) + " service");
    if (servers[j].failure != nullptr) {
      require_positive_mean(servers[j].failure,
                            "server " + std::to_string(j) + " failure");
    }
  }
  if (declared_total_tasks.has_value()) {
    AGEDTR_REQUIRE(*declared_total_tasks == total_tasks(),
                   "DcsScenario: declared workload M = " +
                       std::to_string(*declared_total_tasks) +
                       " disagrees with the per-server loads (sum = " +
                       std::to_string(total_tasks()) + ")");
  }
  AGEDTR_REQUIRE(transfer.size() == n,
                 "DcsScenario: transfer matrix has wrong row count");
  for (std::size_t i = 0; i < n; ++i) {
    AGEDTR_REQUIRE(transfer[i].size() == n,
                   "DcsScenario: transfer matrix has wrong column count");
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        AGEDTR_REQUIRE(transfer[i][j] != nullptr,
                       "DcsScenario: missing transfer law between servers " +
                           std::to_string(i) + " and " + std::to_string(j));
        require_positive_mean(transfer[i][j],
                              "transfer " + std::to_string(i) + "->" +
                                  std::to_string(j));
      }
    }
  }
  if (!fn_transfer.empty()) {
    AGEDTR_REQUIRE(fn_transfer.size() == n,
                   "DcsScenario: FN matrix has wrong row count");
    for (std::size_t i = 0; i < n; ++i) {
      AGEDTR_REQUIRE(fn_transfer[i].size() == n,
                     "DcsScenario: FN matrix has wrong column count");
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && fn_transfer[i][j] != nullptr) {
          require_positive_mean(fn_transfer[i][j],
                                "FN transfer " + std::to_string(i) + "->" +
                                    std::to_string(j));
        }
      }
    }
  }
}

dist::DistPtr ServerWorkload::Inbound::group_transfer_law() const {
  AGEDTR_REQUIRE(transfer != nullptr && tasks > 0,
                 "group_transfer_law: malformed inbound group");
  return per_task ? dist::sum_iid(transfer, static_cast<unsigned>(tasks))
                  : transfer;
}

int ServerWorkload::total_tasks() const {
  int sum = local_tasks;
  for (const Inbound& g : inbound) sum += g.tasks;
  return sum;
}

std::vector<ServerWorkload> apply_policy(const DcsScenario& scenario,
                                         const DtrPolicy& policy) {
  scenario.validate();
  const std::size_t n = scenario.size();
  AGEDTR_REQUIRE(policy.size() == n,
                 "apply_policy: policy size does not match scenario");
  std::vector<ServerWorkload> workloads(n);
  for (std::size_t j = 0; j < n; ++j) {
    const int out = policy.outgoing(j);
    AGEDTR_REQUIRE(out <= scenario.servers[j].initial_tasks,
                   "apply_policy: policy sends more tasks than queued");
    workloads[j].local_tasks = scenario.servers[j].initial_tasks - out;
    workloads[j].service = scenario.servers[j].service;
    workloads[j].failure = scenario.servers[j].failure;
    for (std::size_t i = 0; i < n; ++i) {
      const int l = (i == j) ? 0 : policy(i, j);
      if (l > 0) {
        workloads[j].inbound.push_back(
            {l, scenario.transfer[i][j],
             scenario.transfer_scaling == TransferScaling::kPerTask});
      }
    }
  }
  return workloads;
}

DcsScenario make_uniform_network_scenario(std::vector<ServerSpec> servers,
                                          const dist::DistPtr& transfer,
                                          const dist::DistPtr& fn_transfer) {
  const std::size_t n = servers.size();
  DcsScenario scenario;
  scenario.servers = std::move(servers);
  scenario.transfer.assign(n, std::vector<dist::DistPtr>(n));
  scenario.fn_transfer.assign(n, std::vector<dist::DistPtr>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      scenario.transfer[i][j] = transfer;
      scenario.fn_transfer[i][j] = fn_transfer;
    }
  }
  scenario.validate();
  return scenario;
}

}  // namespace agedtr::core
