#include "agedtr/core/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "agedtr/util/error.hpp"

namespace agedtr::core {
namespace {

struct Discrete {
  std::vector<int> tasks;
  unsigned group_mask = 0;
  unsigned up_mask = 0;

  bool operator<(const Discrete& other) const {
    if (group_mask != other.group_mask) return group_mask < other.group_mask;
    if (up_mask != other.up_mask) return up_mask < other.up_mask;
    return tasks < other.tasks;
  }
};

struct GroupInfo {
  std::size_t to;
  int tasks;
  double rate;
};

double require_exponential_rate(const dist::DistPtr& law, const char* what) {
  AGEDTR_REQUIRE(law != nullptr && law->is_memoryless(),
                 std::string("CtmcTransientSolver: ") + what +
                     " law must be exponential");
  return 1.0 / law->mean();
}

}  // namespace

CtmcTransientSolver::CtmcTransientSolver(const DcsScenario& scenario,
                                         const DtrPolicy& policy) {
  scenario.validate();
  const std::size_t n = scenario.size();
  AGEDTR_REQUIRE(n <= 16, "CtmcTransientSolver: at most 16 servers");
  std::vector<double> service_rate(n);
  std::vector<double> failure_rate(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    service_rate[k] =
        require_exponential_rate(scenario.servers[k].service, "service");
    if (scenario.servers[k].failure) {
      failure_rate[k] =
          require_exponential_rate(scenario.servers[k].failure, "failure");
      has_failures_ = true;
    }
  }

  const std::vector<ServerWorkload> workloads = apply_policy(scenario, policy);
  std::vector<GroupInfo> groups;
  Discrete init;
  init.tasks.resize(n);
  init.up_mask = (1u << n) - 1u;
  for (std::size_t j = 0; j < n; ++j) {
    init.tasks[j] = workloads[j].local_tasks;
    for (const ServerWorkload::Inbound& g : workloads[j].inbound) {
      const double rate = require_exponential_rate(g.transfer, "transfer") /
                          (g.per_task ? g.tasks : 1);
      groups.push_back({j, g.tasks, rate});
    }
  }
  AGEDTR_REQUIRE(groups.size() <= 31, "CtmcTransientSolver: too many groups");
  init.group_mask = (1u << groups.size()) - 1u;

  // BFS enumeration. Indices 0 and 1 are the absorbing DONE/LOST states.
  transitions_.resize(2);
  std::map<Discrete, std::size_t> index;
  std::vector<Discrete> frontier;

  const auto classify = [&](const Discrete& d) -> std::size_t {
    bool done = d.group_mask == 0;
    for (int m : d.tasks) {
      if (m > 0) done = false;
    }
    if (done) return kDone;
    // Lost: a dead server holds tasks or is the target of a live group.
    for (std::size_t k = 0; k < n; ++k) {
      if (!((d.up_mask >> k) & 1u) && d.tasks[k] > 0) return kLost;
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if ((d.group_mask & (1u << g)) && !((d.up_mask >> groups[g].to) & 1u)) {
        return kLost;
      }
    }
    return SIZE_MAX;  // transient
  };

  const auto intern = [&](const Discrete& d) -> std::size_t {
    const std::size_t cls = classify(d);
    if (cls != SIZE_MAX) return cls;
    const auto it = index.find(d);
    if (it != index.end()) return it->second;
    const std::size_t id = transitions_.size();
    transitions_.emplace_back();
    index.emplace(d, id);
    frontier.push_back(d);
    return id;
  };

  initial_ = intern(init);
  while (!frontier.empty()) {
    const Discrete d = frontier.back();
    frontier.pop_back();
    const std::size_t id = index.at(d);
    std::vector<Transition> out;
    for (std::size_t k = 0; k < n; ++k) {
      const bool up = (d.up_mask >> k) & 1u;
      if (!up) continue;
      if (d.tasks[k] > 0) {
        Discrete next = d;
        --next.tasks[k];
        out.push_back({intern(next), service_rate[k]});
      }
      if (failure_rate[k] > 0.0) {
        Discrete next = d;
        next.up_mask &= ~(1u << k);
        out.push_back({intern(next), failure_rate[k]});
      }
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (!(d.group_mask & (1u << g))) continue;
      Discrete next = d;
      next.group_mask &= ~(1u << g);
      next.tasks[groups[g].to] += groups[g].tasks;
      out.push_back({intern(next), groups[g].rate});
    }
    AGEDTR_ASSERT(!out.empty());
    transitions_[id] = std::move(out);
  }

  uniform_rate_ = 0.0;
  for (const auto& out : transitions_) {
    double total = 0.0;
    for (const Transition& t : out) total += t.rate;
    uniform_rate_ = std::max(uniform_rate_, total);
  }
  AGEDTR_REQUIRE(uniform_rate_ > 0.0 || transitions_.size() == 2,
                 "CtmcTransientSolver: transient states without transitions");
  if (uniform_rate_ <= 0.0) uniform_rate_ = 1.0;  // absorbed at t = 0
}

double CtmcTransientSolver::qos(double deadline) const {
  AGEDTR_REQUIRE(deadline >= 0.0, "qos: deadline must be nonnegative");
  if (initial_ == kDone) return 1.0;
  if (initial_ == kLost) return 0.0;
  const double lambda_t = uniform_rate_ * deadline;
  // Uniformized DTMC step: P = I + Q/Λ (self-loop with the residual rate).
  std::vector<double> pi(transitions_.size(), 0.0);
  pi[initial_] = 1.0;
  // Poisson(λt) weights computed iteratively; truncation when the cumulative
  // weight exceeds 1 − 1e−12.
  double log_weight = -lambda_t;  // ln P{N = 0}
  double cumulative = 0.0;
  double result = 0.0;
  std::vector<double> next(pi.size());
  for (std::size_t k = 0;; ++k) {
    const double w = std::exp(log_weight);
    result += w * pi[kDone];
    cumulative += w;
    if (cumulative >= 1.0 - 1e-12) break;
    if (k > 20 + static_cast<std::size_t>(
                     lambda_t + 12.0 * std::sqrt(lambda_t + 1.0))) {
      break;
    }
    // One uniformized step: next = pi · P.
    std::fill(next.begin(), next.end(), 0.0);
    next[kDone] = pi[kDone];
    next[kLost] = pi[kLost];
    for (std::size_t s = 2; s < transitions_.size(); ++s) {
      const double mass = pi[s];
      if (mass == 0.0) continue;
      double outflow = 0.0;
      for (const Transition& t : transitions_[s]) {
        next[t.target] += mass * (t.rate / uniform_rate_);
        outflow += t.rate;
      }
      next[s] += mass * (1.0 - outflow / uniform_rate_);
    }
    pi.swap(next);
    log_weight += std::log(lambda_t) - std::log(static_cast<double>(k + 1));
  }
  return result;
}

double CtmcTransientSolver::reliability() const {
  if (initial_ == kDone) return 1.0;
  if (initial_ == kLost) return 0.0;
  // Absorption probabilities by value iteration on the embedded jump chain.
  // The chain is acyclic in (tasks + groups + up servers), so a single
  // reverse sweep would do; value iteration converges in the DAG depth.
  std::vector<double> value(transitions_.size(), 0.0);
  value[kDone] = 1.0;
  for (std::size_t iter = 0; iter < transitions_.size() + 8; ++iter) {
    double delta = 0.0;
    for (std::size_t s = transitions_.size(); s-- > 2;) {
      double total = 0.0;
      double acc = 0.0;
      for (const Transition& t : transitions_[s]) {
        total += t.rate;
        acc += t.rate * value[t.target];
      }
      const double v = acc / total;
      delta = std::max(delta, std::fabs(v - value[s]));
      value[s] = v;
    }
    if (delta < 1e-14) break;
  }
  return value[initial_];
}

double CtmcTransientSolver::mean_absorption_time() const {
  AGEDTR_REQUIRE(!has_failures_,
                 "mean_absorption_time: requires reliable servers");
  if (initial_ == kDone || initial_ == kLost) return 0.0;
  std::vector<double> value(transitions_.size(), 0.0);
  for (std::size_t iter = 0; iter < transitions_.size() + 8; ++iter) {
    double delta = 0.0;
    for (std::size_t s = transitions_.size(); s-- > 2;) {
      double total = 0.0;
      double acc = 0.0;
      for (const Transition& t : transitions_[s]) {
        total += t.rate;
        acc += t.rate * value[t.target];
      }
      const double v = (1.0 + acc) / total;
      delta = std::max(delta, std::fabs(v - value[s]));
      value[s] = v;
    }
    if (delta < 1e-12) break;
  }
  return value[initial_];
}

}  // namespace agedtr::core
