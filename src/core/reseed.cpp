#include "agedtr/core/reseed.hpp"

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "agedtr/dist/aged.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {

DtrPolicy ReseededScenario::expand(const DtrPolicy& compact) const {
  AGEDTR_REQUIRE(compact.size() == survivors.size(),
                 "ReseededScenario::expand: policy size does not match the "
                 "survivor count");
  DtrPolicy full(full_size);
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    for (std::size_t j = 0; j < survivors.size(); ++j) {
      if (i == j) continue;
      const int l = compact(i, j);
      if (l > 0) full.set(survivors[i], survivors[j], l);
    }
  }
  return full;
}

ReseededScenario reseed_scenario(const DcsScenario& base,
                                 const SystemState& observed,
                                 const ReseedOptions& options) {
  const std::size_t n = base.size();
  AGEDTR_REQUIRE(observed.size() == n,
                 "reseed_scenario: state size does not match the scenario");
  AGEDTR_REQUIRE(observed.up.size() == n && observed.failure_age.size() == n,
                 "reseed_scenario: malformed state (up/failure_age sizes)");

  ReseededScenario out;
  out.full_size = n;
  std::vector<std::size_t> compact_of(n, n);  // n = dead / absent
  for (std::size_t j = 0; j < n; ++j) {
    if (observed.up[j]) {
      compact_of[j] = out.survivors.size();
      out.survivors.push_back(j);
    }
  }
  const std::size_t m = out.survivors.size();
  AGEDTR_REQUIRE(m > 0, "reseed_scenario: no surviving server to re-seed");

  // In-transit tasks are committed to their destinations; groups bound for a
  // dead server are stranded on arrival and carry no pending work.
  std::vector<int> credited(n, 0);
  if (options.credit_in_transit) {
    for (const TransitGroup& g : observed.groups) {
      AGEDTR_REQUIRE(g.to < n && g.tasks >= 0,
                     "reseed_scenario: malformed in-transit group");
      if (observed.up[g.to]) credited[g.to] += g.tasks;
    }
  }

  out.scenario.transfer_scaling = base.transfer_scaling;
  out.scenario.declared_total_tasks = std::nullopt;
  out.scenario.servers.reserve(m);
  for (std::size_t c = 0; c < m; ++c) {
    const std::size_t j = out.survivors[c];
    AGEDTR_REQUIRE(observed.tasks[j] >= 0,
                   "reseed_scenario: negative queue length");
    ServerSpec spec;
    spec.initial_tasks = observed.tasks[j] + credited[j];
    spec.service = base.servers[j].service;
    spec.failure = base.servers[j].failure;
    if (options.age_failure_laws && spec.failure &&
        observed.failure_age[j] > 0.0) {
      AGEDTR_REQUIRE(dist::can_age(spec.failure, observed.failure_age[j]),
                     "reseed_scenario: failure clock cannot survive to the "
                     "observed age");
      spec.failure = dist::aged(spec.failure, observed.failure_age[j]);
    }
    out.scenario.servers.push_back(std::move(spec));
  }

  const auto compact_matrix =
      [&](const std::vector<std::vector<dist::DistPtr>>& full) {
        std::vector<std::vector<dist::DistPtr>> sub;
        if (full.empty()) return sub;
        sub.assign(m, std::vector<dist::DistPtr>(m));
        for (std::size_t a = 0; a < m; ++a) {
          for (std::size_t b = 0; b < m; ++b) {
            if (a == b) continue;
            sub[a][b] = full[out.survivors[a]][out.survivors[b]];
          }
        }
        return sub;
      };
  out.scenario.transfer = compact_matrix(base.transfer);
  out.scenario.fn_transfer = compact_matrix(base.fn_transfer);
  out.scenario.validate();
  return out;
}

}  // namespace agedtr::core
