#include "agedtr/core/state.hpp"

#include <utility>
#include <vector>

#include "agedtr/dist/sum_iid.hpp"
#include "agedtr/util/error.hpp"

namespace agedtr::core {

bool SystemState::workload_done() const {
  for (int m : tasks) {
    if (m > 0) return false;
  }
  return groups.empty();
}

bool SystemState::workload_lost() const {
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    if (!up[j] && tasks[j] > 0) return true;
  }
  for (const TransitGroup& g : groups) {
    if (!up[g.to]) return true;
  }
  return false;
}

void SystemState::advance_ages(double s) {
  AGEDTR_REQUIRE(s >= 0.0, "advance_ages: negative increment");
  for (double& a : service_age) a += s;
  for (double& a : failure_age) a += s;
  for (TransitGroup& g : groups) g.age += s;
  for (FnPacket& p : fn_packets) p.age += s;
}

SystemState SystemState::initial(const DcsScenario& scenario,
                                 const DtrPolicy& policy) {
  const std::size_t n = scenario.size();
  AGEDTR_REQUIRE(policy.size() == n,
                 "SystemState::initial: policy size mismatch");
  SystemState s;
  s.tasks.resize(n);
  s.up.assign(n, 1);
  s.perceived.assign(n, std::vector<char>(n, 1));
  s.service_age.assign(n, 0.0);
  s.failure_age.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const int out = policy.outgoing(j);
    AGEDTR_REQUIRE(out <= scenario.servers[j].initial_tasks,
                   "SystemState::initial: infeasible policy");
    s.tasks[j] = scenario.servers[j].initial_tasks - out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const int l = policy(i, j);
      if (l > 0) {
        // Per-task scaling: the group's transfer clock is the l-fold sum.
        dist::DistPtr law =
            scenario.transfer_scaling == TransferScaling::kPerTask
                ? dist::sum_iid(scenario.transfer[i][j],
                                static_cast<unsigned>(l))
                : scenario.transfer[i][j];
        s.groups.push_back({i, j, l, std::move(law), 0.0});
      }
    }
  }
  return s;
}

}  // namespace agedtr::core
