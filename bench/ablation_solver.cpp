// Ablations over the solver design choices DESIGN.md calls out:
//
//   1. lattice resolution (ConvolutionOptions::cells): metric error vs a
//      fine-grid reference and wall time — justifies the 2^15 default;
//   2. auto-horizon safety multiple: truncation tail vs wasted resolution;
//   3. the multi-group batch approximation (kBatchMax / kBatchMin): the
//      bracket the two modes form around Monte-Carlo truth;
//   4. transfer scaling (per-group vs per-task): the optimal policy under
//      each reading of the paper's transfer model — per-task is what makes
//      severe delays suppress reallocation;
//   5. the Theorem-1 solver's quadrature order (probability-domain nodes):
//      accuracy vs cost of the reference recursion;
//   6. the convolution backend (FFT vs direct time-domain): cold/warm wall
//      time per cell count, the crossover the kAuto heuristic encodes, and
//      the rtol-1e-9 agreement contract between the two paths. Emits
//      BENCH_fft_ablation.json; --smoke runs only this ablation at CI size
//      and exits nonzero if the backends disagree.
#include <cmath>
#include <fstream>
#include <iostream>

#include "agedtr/core/convolution.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/core/regen_solver.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using dist::ModelFamily;

namespace {

/// Ablation 6: the FFT-vs-direct backend choice. Each (cells, backend)
/// configuration gets a fresh workspace (cold: discretizations, ladders and
/// spectra all built under timing) and a second identical solve (warm: pure
/// cache reads plus the per-call composition work). Returns false if the
/// two backends' T-bar ever diverge beyond rtol 1e-9 — the differential
/// contract fft_differential_test pins per-operation, re-checked here at
/// bench scale.
bool run_fft_ablation(const std::vector<core::ServerWorkload>& workloads,
                      const std::vector<std::size_t>& cell_counts,
                      const std::string& out_path) {
  struct Row {
    std::size_t cells = 0;
    numerics::ConvolutionBackend backend = numerics::ConvolutionBackend::kAuto;
    double tbar = 0.0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
  };
  std::vector<Row> rows;
  for (const std::size_t cells : cell_counts) {
    for (const auto backend : {numerics::ConvolutionBackend::kDirect,
                               numerics::ConvolutionBackend::kFft}) {
      numerics::set_convolution_backend(backend);
      core::ConvolutionOptions opts;
      opts.cells = cells;
      const core::ConvolutionSolver solver(opts);
      Row row;
      row.cells = cells;
      row.backend = backend;
      Stopwatch cold;
      row.tbar = solver.mean_execution_time(workloads);
      row.cold_ms = cold.elapsed_ms();
      Stopwatch warm;
      const double again = solver.mean_execution_time(workloads);
      row.warm_ms = warm.elapsed_ms();
      rows.push_back(row);
      if (again != row.tbar) {
        std::cerr << "fft ablation: warm solve not deterministic at cells="
                  << cells << "\n";
        numerics::set_convolution_backend(
            numerics::ConvolutionBackend::kAuto);
        return false;
      }
    }
  }
  numerics::set_convolution_backend(numerics::ConvolutionBackend::kAuto);

  bool agree = true;
  Table table({"cells", "backend", "T-bar (s)", "cold (ms)", "warm (ms)",
               "fft speedup"});
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& direct = rows[i];
    const Row& fft = rows[i + 1];
    table.begin_row()
        .cell(static_cast<long long>(direct.cells))
        .cell("direct")
        .cell(direct.tbar)
        .cell(direct.cold_ms)
        .cell(direct.warm_ms)
        .cell(1.0, 3);
    table.begin_row()
        .cell(static_cast<long long>(fft.cells))
        .cell("fft")
        .cell(fft.tbar)
        .cell(fft.cold_ms)
        .cell(fft.warm_ms)
        .cell(direct.cold_ms / std::max(fft.cold_ms, 1e-6), 3);
    if (std::fabs(fft.tbar - direct.tbar) > 1e-9 * std::fabs(direct.tbar)) {
      std::cerr << "fft ablation: backends disagree at cells=" << direct.cells
                << " (direct=" << format_double(direct.tbar)
                << ", fft=" << format_double(fft.tbar) << ")\n";
      agree = false;
    }
  }
  std::cout << "\n=== Ablation 6 | convolution backend (fresh workspace per "
               "row; auto crossover at a*b <= 4096) ===\n";
  table.print(std::cout);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out.precision(12);
    out << "{\n  \"bench\": \"fft_ablation\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"cells\": " << r.cells << ", \"backend\": \""
          << (r.backend == numerics::ConvolutionBackend::kFft ? "fft"
                                                              : "direct")
          << "\", \"tbar_seconds\": " << r.tbar
          << ", \"cold_ms\": " << r.cold_ms << ", \"warm_ms\": " << r.warm_ms
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"backends_agree\": " << (agree ? "true" : "false")
        << "\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return agree;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_solver: solver design-choice ablations");
  cli.add_option("reference-cells", "262144",
                 "lattice cells for the reference solution");
  cli.add_option("fft-out", "BENCH_fft_ablation.json",
                 "where to write the backend-ablation JSON record");
  cli.add_flag("smoke",
               "CI-sized run: only the backend ablation, small grids");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));

  const core::DcsScenario scenario = bench::two_server_scenario(
      ModelFamily::kPareto1, bench::Delay::kSevere, false);
  const core::DtrPolicy policy = policy::make_two_server_policy(17, 1);
  const auto workloads = core::apply_policy(scenario, policy);

  if (cli.get_flag("smoke")) {
    return run_fft_ablation(workloads, {1u << 9, 1u << 10},
                            cli.get_string("fft-out"))
               ? 0
               : 1;
  }

  // ---- 1. lattice resolution ----
  core::ConvolutionOptions ref_opts;
  ref_opts.cells = static_cast<std::size_t>(cli.get_int("reference-cells"));
  const double reference =
      core::ConvolutionSolver(ref_opts).mean_execution_time(workloads);
  std::cout << "Reference T-bar (cells = " << ref_opts.cells
            << "): " << format_double(reference) << " s\n\n";
  Table cells_table({"cells", "T-bar (s)", "rel. error vs reference",
                     "wall time (ms)"});
  for (std::size_t cells : {1u << 11, 1u << 13, 1u << 15, 1u << 17}) {
    core::ConvolutionOptions opts;
    opts.cells = cells;
    Stopwatch watch;
    const double value =
        core::ConvolutionSolver(opts).mean_execution_time(workloads);
    cells_table.begin_row()
        .cell(static_cast<long long>(cells))
        .cell(value)
        .cell(std::fabs(value - reference) / reference, 3)
        .cell(watch.elapsed_ms());
  }
  std::cout << "=== Ablation 1 | lattice resolution ===\n";
  cells_table.print(std::cout);

  // ---- 2. horizon multiple ----
  Table horizon_table({"horizon multiple", "T-bar (s)",
                       "rel. error vs reference"});
  for (double multiple : {1.5, 3.0, 6.0, 12.0}) {
    core::ConvolutionOptions opts;
    opts.cells = 1u << 15;
    opts.horizon_multiple = multiple;
    const double value =
        core::ConvolutionSolver(opts).mean_execution_time(workloads);
    horizon_table.begin_row()
        .cell(multiple, 3)
        .cell(value)
        .cell(std::fabs(value - reference) / reference, 3);
  }
  std::cout << "\n=== Ablation 2 | auto-horizon safety multiple (cells = "
               "2^15) ===\n";
  horizon_table.print(std::cout);

  // ---- 3. multi-group batch approximation ----
  {
    std::vector<core::ServerSpec> servers = {
        {4, dist::Exponential::with_mean(1.0), nullptr},
        {10, dist::Exponential::with_mean(1.0), nullptr},
        {10, dist::Exponential::with_mean(1.0), nullptr}};
    const core::DcsScenario multi = core::make_uniform_network_scenario(
        std::move(servers), dist::Exponential::with_mean(6.0),
        dist::Exponential::with_mean(0.2));
    core::DtrPolicy p(3);
    p.set(1, 0, 6);
    p.set(2, 0, 6);
    const auto w = core::apply_policy(multi, p);
    core::ConvolutionOptions max_opts;
    max_opts.multi_group = core::ConvolutionOptions::MultiGroup::kBatchMax;
    core::ConvolutionOptions min_opts;
    min_opts.multi_group = core::ConvolutionOptions::MultiGroup::kBatchMin;
    sim::MonteCarloOptions mc;
    mc.replications = 60'000;
    const auto metrics = sim::run_monte_carlo(multi, p, mc);
    Table batch({"treatment of two inbound groups", "T-bar (s)"});
    batch.begin_row()
        .cell("batch-min (lower bracket)")
        .cell(core::ConvolutionSolver(min_opts).mean_execution_time(w));
    batch.begin_row()
        .cell("Monte-Carlo truth (60k reps)")
        .cell(metrics.mean_completion_time.center);
    batch.begin_row()
        .cell("batch-max (upper bracket)")
        .cell(core::ConvolutionSolver(max_opts).mean_execution_time(w));
    std::cout << "\n=== Ablation 3 | multi-group batch approximation ===\n";
    batch.print(std::cout);
  }

  // ---- 4. transfer scaling ----
  {
    Table scaling({"transfer scaling", "delay", "optimal L12", "optimal L21",
                   "optimal T-bar (s)"});
    for (const bool per_task : {false, true}) {
      for (bench::Delay delay : {bench::Delay::kLow, bench::Delay::kSevere}) {
        core::DcsScenario s =
            bench::two_server_scenario(ModelFamily::kPareto1, delay, false);
        s.transfer_scaling = per_task ? core::TransferScaling::kPerTask
                                      : core::TransferScaling::kPerGroup;
        // The exhaustive 2-server search (one-way offload line) as a
        // DecisionPolicy on the fresh t = 0 state of the re-scaled scenario.
        policy::DecisionEngineOptions engine_opts;
        engine_opts.objective = policy::Objective::kMeanExecutionTime;
        engine_opts.pool = &ThreadPool::global();
        const policy::TwoServerSearchPolicy search(
            {.markovian = false, .max_l21 = 0});
        const core::DtrPolicy devised = policy::decide_from_state(
            search, s, core::SystemState::initial(s, core::DtrPolicy(2)),
            engine_opts);
        const auto eval = policy::make_age_dependent_evaluator(
            s, policy::Objective::kMeanExecutionTime);
        scaling.begin_row()
            .cell(per_task ? "per-task (L-fold sum)" : "per-group (fixed)")
            .cell(bench::delay_name(delay))
            .cell(static_cast<int>(devised(0, 1)))
            .cell(static_cast<int>(devised(1, 0)))
            .cell(eval(devised));
      }
    }
    std::cout << "\n=== Ablation 4 | transfer scaling: per-task is what "
                 "makes severe delays\n    suppress reallocation ===\n";
    scaling.print(std::cout);
  }

  // ---- 5. Theorem-1 quadrature order ----
  {
    std::vector<core::ServerSpec> servers = {
        {2, dist::Pareto::with_mean(2.0, 2.5), nullptr},
        {1, dist::Pareto::with_mean(1.0, 2.5), nullptr}};
    const core::DcsScenario small = core::make_uniform_network_scenario(
        std::move(servers), dist::Pareto::with_mean(1.5, 2.5),
        dist::Exponential::with_mean(0.2));
    core::DtrPolicy p(2);
    p.set(0, 1, 1);
    core::ConvolutionOptions fine;
    fine.cells = 1u << 16;
    const double exact =
        core::ConvolutionSolver(fine).mean_execution_time(
            core::apply_policy(small, p));
    Table quad({"quad nodes", "T-bar (s)", "rel. error", "wall time (ms)"});
    for (int nodes : {4, 6, 8, 10, 14}) {
      core::RegenSolverOptions opts;
      opts.quad_nodes = nodes;
      const core::RegenerativeSolver solver(small, opts);
      Stopwatch watch;
      const double value = solver.mean_execution_time(p);
      quad.begin_row()
          .cell(nodes)
          .cell(value)
          .cell(std::fabs(value - exact) / exact, 3)
          .cell(watch.elapsed_ms());
    }
    std::cout << "\n=== Ablation 5 | Theorem-1 recursion quadrature order "
                 "(reference: convolution solver, "
              << format_double(exact) << " s) ===\n";
    quad.print(std::cout);
  }

  // ---- 6. convolution backend ----
  if (!run_fft_ablation(workloads, {1u << 10, 1u << 12, 1u << 14},
                        cli.get_string("fft-out"))) {
    return 1;
  }
  return 0;
}
