// Fig. 2 reproduction: service reliability R_∞ as a function of the DTR
// policy (L12 sweep with L21 = 25) with exponentially failing servers
// (means 1000 s and 500 s), low and severe network delay, all five models.
// The Markovian prediction runs alongside; the paper reports relative
// errors up to ~3% (low) and ~65% (severe).
//
// Output: per-(delay, model) tables, fig2_<delay>.csv, and a summary.
#include <cmath>
#include <iostream>

#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using bench::Delay;
using dist::ModelFamily;

int main(int argc, char** argv) {
  CliParser cli("fig2: service reliability vs DTR policy (Fig. 2)");
  cli.add_option("step", "5", "L12 sweep step");
  cli.add_option("l21", "25", "tasks reallocated from server 2 to 1");
  cli.add_option("cells", "32768", "lattice cells for the solver");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const int step = static_cast<int>(cli.get_int("step"));
  const int l21 = static_cast<int>(cli.get_int("l21"));

  Stopwatch watch;
  ThreadPool& pool = ThreadPool::global();
  core::ConvolutionOptions conv;
  conv.cells = static_cast<std::size_t>(cli.get_int("cells"));

  Table summary({"delay", "model", "max R-inf", "argmax L12",
                 "max Markovian rel. error"});

  for (Delay delay : {Delay::kLow, Delay::kSevere}) {
    Table csv({"model", "l12", "r_age_dependent", "r_markovian"});
    for (ModelFamily family : dist::all_model_families()) {
      const core::DcsScenario scenario =
          bench::two_server_scenario(family, delay, /*failures=*/true);
      const auto exact = policy::make_age_dependent_evaluator(
          scenario, policy::Objective::kReliability, 0.0, conv);
      const auto markovian = policy::make_age_dependent_evaluator(
          policy::exponentialized(scenario), policy::Objective::kReliability,
          0.0, conv);

      std::vector<int> l12s;
      for (int l12 = 0; l12 <= 100; l12 += step) l12s.push_back(l12);
      std::vector<double> exact_vals(l12s.size()), markov_vals(l12s.size());
      pool.parallel_for(0, l12s.size(), [&](std::size_t i) {
        const auto p = policy::make_two_server_policy(l12s[i], l21);
        exact_vals[i] = exact(p);
        markov_vals[i] = markovian(p);
      });

      Table table({"L12", "R-inf age-dependent", "R-inf Markovian",
                   "rel. error"});
      double max_err = 0.0;
      double best = -1.0;
      int best_l12 = 0;
      for (std::size_t i = 0; i < l12s.size(); ++i) {
        const double err =
            exact_vals[i] > 1e-9
                ? std::fabs(markov_vals[i] - exact_vals[i]) / exact_vals[i]
                : 0.0;
        max_err = std::max(max_err, err);
        if (exact_vals[i] > best) {
          best = exact_vals[i];
          best_l12 = l12s[i];
        }
        table.begin_row()
            .cell(l12s[i])
            .cell(exact_vals[i])
            .cell(markov_vals[i])
            .cell(err, 3);
        csv.begin_row()
            .cell(dist::model_family_name(family))
            .cell(l12s[i])
            .cell(exact_vals[i], 8)
            .cell(markov_vals[i], 8);
      }
      std::cout << "\n=== Fig. 2 | " << bench::delay_name(delay)
                << " network delay | " << dist::model_family_name(family)
                << " model | L21 = " << l21 << " ===\n";
      table.print(std::cout);
      summary.begin_row()
          .cell(bench::delay_name(delay))
          .cell(dist::model_family_name(family))
          .cell(best)
          .cell(best_l12)
          .cell(max_err, 3);
    }
    csv.write_csv_file("fig2_" + bench::delay_name(delay) + ".csv");
  }

  std::cout << "\n=== Fig. 2 summary (paper: Markovian error <= 3% low, up "
               "to ~65% severe) ===\n";
  summary.print(std::cout);
  std::cout << "\nCSV series written to fig2_low.csv / fig2_severe.csv ("
            << format_double(watch.elapsed_seconds(), 3) << " s)\n";
  return 0;
}
