// Extension study: sensitivity of Algorithm 1 to stale queue-length
// estimates. The paper's servers build m̂_ji from periodically exchanged
// queue-info packets, so by the time a policy is devised the estimates are
// dated. This bench perturbs the estimates multiplicatively (± the given
// staleness level, several noise seeds) and reports how much of the
// reallocation benefit survives — quantifying the "accurate estimate of the
// state of the DCS" requirement the paper's introduction stresses.
#include <cmath>
#include <iostream>

#include "agedtr/dist/exponential.hpp"
#include "agedtr/policy/decision_policy.hpp"
#include "agedtr/policy/objective.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;

namespace {

policy::QueueEstimates noisy_estimates(const core::DcsScenario& scenario,
                                       double level, std::uint64_t seed) {
  policy::QueueEstimates est = policy::perfect_estimates(scenario);
  random::Rng rng(seed);
  for (std::size_t i = 0; i < est.size(); ++i) {
    for (std::size_t j = 0; j < est.size(); ++j) {
      if (i == j) continue;  // a server always knows its own queue
      const double factor = 1.0 + level * (2.0 * rng.next_double() - 1.0);
      est[i][j] = std::max(
          0, static_cast<int>(std::lround(est[i][j] * factor)));
    }
  }
  return est;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_estimates: Algorithm 1 vs stale queue estimates");
  cli.add_option("seeds", "2", "noise seeds per staleness level");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));

  const core::DcsScenario scenario =
      bench::five_server_scenario(dist::ModelFamily::kPareto1, false);
  const auto evaluator = policy::make_age_dependent_evaluator(
      scenario, policy::Objective::kMeanExecutionTime);
  const double no_realloc = evaluator(core::DtrPolicy(5));

  policy::Algorithm1Options opts;
  opts.objective = policy::Objective::kMeanExecutionTime;
  opts.pool = &ThreadPool::global();
  const policy::Algorithm1Policy algo(opts);
  const double perfect = evaluator(algo.devise(scenario).policy);

  Table table({"estimate staleness", "mean T-bar (s)", "worst T-bar (s)",
               "benefit retained"});
  table.begin_row()
      .cell("exact")
      .cell(perfect)
      .cell(perfect)
      .cell("100%");
  for (double level : {0.25, 1.0}) {
    double sum = 0.0;
    double worst = 0.0;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      const auto policy =
          algo.devise(scenario, noisy_estimates(scenario, level, seed + 1))
              .policy;
      const double value = evaluator(policy);
      sum += value;
      worst = std::max(worst, value);
    }
    const double mean = sum / static_cast<double>(seeds);
    const double retained =
        (no_realloc - mean) / (no_realloc - perfect);
    table.begin_row()
        .cell("±" + format_double(100.0 * level, 3) + "%")
        .cell(mean)
        .cell(worst)
        .cell(format_double(100.0 * retained, 3) + "%");
  }
  std::cout << "=== Algorithm 1 under stale queue estimates (5-server "
               "Pareto 1, severe delay) ===\n"
            << "No reallocation: " << format_double(no_realloc)
            << " s; perfect-information Algorithm 1: "
            << format_double(perfect) << " s\n\n";
  table.print(std::cout);
  return 0;
}
