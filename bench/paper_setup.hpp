// Shared construction of the paper's Section III experimental setups, used
// by every reproduction bench:
//
//   Two-server system (III-A1): m = (100, 50) tasks; mean service (2, 1) s;
//   failures exponential with means (1000, 500) s (cleared when the metric
//   is the average execution time); FN transfer mean 0.2 s (low) / 1.0 s
//   (severe). Transfers use *per-task* scaling (TransferScaling::kPerTask):
//   a group of L tasks takes the L-fold sum of a per-task law — this is the
//   reading fixed by the paper's own low-delay discussion ("transferring 50
//   tasks from server 1 to server 2 takes 50 s"). Per-task means derive
//   from the delay-regime definitions:
//     low    — transferring plus processing a task at the *fastest* server
//              takes, on average, a service at the *slowest* server:
//              z̄ + 1 = 2 ⇒ z̄ = 1 s/task;
//     severe — transfer plus processing at the fastest server ≥ 5× the
//              slowest service time: z̄ + 1 = 5·2 ⇒ z̄ = 9 s/task.
//
//   Five-server system (III-A2): M = 200 tasks (the paper leaves the
//   initial split unstated; we use 40 per server and record that in
//   EXPERIMENTS.md); service means (5, 4, 3, 2, 1) s; failure means
//   (1000, 800, 600, 500, 400) s; severe delay per the same rule:
//   z̄ + 1 = 5·5 ⇒ z̄ = 24 s/task.
#pragma once

#include <string>
#include <vector>

#include "agedtr/core/scenario.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"

namespace agedtr::bench {

enum class Delay { kLow, kSevere };

inline std::string delay_name(Delay delay) {
  return delay == Delay::kLow ? "low" : "severe";
}

inline double two_server_transfer_mean(Delay delay) {
  return delay == Delay::kLow ? 1.0 : 9.0;
}

inline double fn_mean(Delay delay) {
  return delay == Delay::kLow ? 0.2 : 1.0;
}

inline core::DcsScenario two_server_scenario(dist::ModelFamily family,
                                             Delay delay, bool failures) {
  std::vector<core::ServerSpec> servers = {
      {100, dist::make_model_distribution(family, 2.0),
       failures ? dist::Exponential::with_mean(1000.0) : nullptr},
      {50, dist::make_model_distribution(family, 1.0),
       failures ? dist::Exponential::with_mean(500.0) : nullptr}};
  core::DcsScenario scenario = core::make_uniform_network_scenario(
      std::move(servers),
      dist::make_model_distribution(family, two_server_transfer_mean(delay)),
      dist::Exponential::with_mean(fn_mean(delay)));
  scenario.transfer_scaling = core::TransferScaling::kPerTask;
  return scenario;
}

inline core::DcsScenario five_server_scenario(dist::ModelFamily family,
                                              bool failures) {
  const std::vector<double> service_means = {5.0, 4.0, 3.0, 2.0, 1.0};
  const std::vector<double> failure_means = {1000.0, 800.0, 600.0, 500.0,
                                             400.0};
  std::vector<core::ServerSpec> servers;
  for (std::size_t j = 0; j < 5; ++j) {
    servers.push_back(
        {40, dist::make_model_distribution(family, service_means[j]),
         failures ? dist::Exponential::with_mean(failure_means[j])
                  : nullptr});
  }
  core::DcsScenario scenario = core::make_uniform_network_scenario(
      std::move(servers), dist::make_model_distribution(family, 24.0),
      dist::Exponential::with_mean(1.0));
  scenario.transfer_scaling = core::TransferScaling::kPerTask;
  return scenario;
}

}  // namespace agedtr::bench
