// Fig. 3 reproduction: for the Pareto 1 model under severe network delay,
// (a) the average execution time surface T̄(L12, L21) and (b) the QoS
// surface P{T < 180 s}(L12, L21). The paper reports: minimal T̄ = 140.11 s
// at (32, 1); QoS(180 s) maximized at L12 ∈ {31, 32, 33}, L21 = 1 with
// value 0.988; and QoS within 140 s (the minimal mean) of only 0.471 at the
// mean-optimal policy. The same statistics are printed here for our
// parameterization, and the full surfaces are written as CSV.
#include <cmath>
#include <iostream>

#include "agedtr/policy/objective.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;

int main(int argc, char** argv) {
  CliParser cli("fig3: T-bar and QoS policy surfaces, Pareto 1, severe delay");
  cli.add_option("step", "2", "surface grid step in both L12 and L21");
  cli.add_option("deadline", "180", "QoS deadline (s)");
  cli.add_option("cells", "32768", "lattice cells for the solver");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));
  const int step = static_cast<int>(cli.get_int("step"));
  const double deadline = cli.get_double("deadline");

  Stopwatch watch;
  ThreadPool& pool = ThreadPool::global();
  core::ConvolutionOptions conv;
  conv.cells = static_cast<std::size_t>(cli.get_int("cells"));

  const core::DcsScenario scenario = bench::two_server_scenario(
      dist::ModelFamily::kPareto1, bench::Delay::kSevere, false);
  const auto mean_eval = policy::make_age_dependent_evaluator(
      scenario, policy::Objective::kMeanExecutionTime, 0.0, conv);
  const auto qos_eval = policy::make_age_dependent_evaluator(
      scenario, policy::Objective::kQos, deadline, conv);

  std::vector<policy::PolicyPoint> grid;
  for (int l12 = 0; l12 <= 100; l12 += step) {
    for (int l21 = 0; l21 <= 50; l21 += step) grid.push_back({l12, l21, 0.0});
  }
  std::vector<double> means(grid.size()), qoses(grid.size());
  pool.parallel_for(0, grid.size(), [&](std::size_t i) {
    const auto p = policy::make_two_server_policy(grid[i].l12, grid[i].l21);
    means[i] = mean_eval(p);
    qoses[i] = qos_eval(p);
  });

  Table csv({"l12", "l21", "t_mean", "qos"});
  std::size_t best_mean_i = 0;
  std::size_t best_qos_i = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    csv.begin_row()
        .cell(grid[i].l12)
        .cell(grid[i].l21)
        .cell(means[i], 8)
        .cell(qoses[i], 8);
    if (means[i] < means[best_mean_i]) best_mean_i = i;
    if (qoses[i] > qoses[best_qos_i]) best_qos_i = i;
  }
  csv.write_csv_file("fig3_surface.csv");

  // QoS within the minimal mean time at the mean-optimal policy — the
  // paper's closing observation (0.471 there).
  const auto qos_at_mean_eval = policy::make_age_dependent_evaluator(
      scenario, policy::Objective::kQos, means[best_mean_i], conv);
  const double qos_at_min_mean = qos_at_mean_eval(policy::make_two_server_policy(
      grid[best_mean_i].l12, grid[best_mean_i].l21));

  std::cout << "=== Fig. 3 | Pareto 1 | severe delay | grid step " << step
            << " ===\n\n";
  Table findings({"quantity", "value", "paper reports"});
  findings.begin_row()
      .cell("minimal average execution time (s)")
      .cell(means[best_mean_i])
      .cell("140.11");
  findings.begin_row()
      .cell("argmin (L12, L21)")
      .cell(std::to_string(grid[best_mean_i].l12) + ", " +
            std::to_string(grid[best_mean_i].l21))
      .cell("32, 1");
  findings.begin_row()
      .cell("maximal QoS within " + format_double(deadline, 4) + " s")
      .cell(qoses[best_qos_i])
      .cell("0.988");
  findings.begin_row()
      .cell("argmax (L12, L21)")
      .cell(std::to_string(grid[best_qos_i].l12) + ", " +
            std::to_string(grid[best_qos_i].l21))
      .cell("31-33, 1");
  findings.begin_row()
      .cell("QoS within the minimal mean, at the mean-optimal policy")
      .cell(qos_at_min_mean)
      .cell("0.471");
  findings.print(std::cout);
  std::cout << "\nFull surfaces written to fig3_surface.csv ("
            << grid.size() << " policies, "
            << format_double(watch.elapsed_seconds(), 3) << " s)\n";
  return 0;
}
