// Graceful-degradation sweep: how the paper-optimal reliability policy
// holds up as the paper's model assumptions are violated.
//
// Stage 1 finds the reliability-optimal (L12, L21) on the Section III
// two-server system through the ResilientEvaluator fallback chain
// (Regenerative → Convolution → Markovian → Monte-Carlo) and reports which
// tier answered each policy evaluation — on paper-scale workloads the
// reference recursion declines its depth budget and the convolution tier
// answers, with no exception escaping the search.
//
// Stage 2 scales a FaultPlan (lossy network with retransmissions,
// common-cause shocks, transient stalls) by an intensity λ and Monte-Carlo
// re-estimates, at every λ:
//   * R̂_∞ of the paper-optimal policy (at λ = 0 this reproduces the seed
//     model's Table-I reliability, cross-checked against the analytic
//     solver), and
//   * the best policy on a coarse (L12, L21) grid under the faults, giving
//     the regret of shipping the paper-optimal policy into the faulty
//     world.
//
// Output: tier-usage table, per-intensity table, and a CSV series under
// bench_results/. With --checkpoint the stage-1 search and every intensity
// row are journaled as they complete; --resume replays finished units, so a
// killed sweep restarted with the same options reproduces the same tables
// bit for bit without redoing the finished Monte-Carlo work.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "agedtr/policy/resilient_eval.hpp"
#include "agedtr/policy/two_server.hpp"
#include "agedtr/sim/monte_carlo.hpp"
#include "agedtr/util/checkpoint.hpp"
#include "agedtr/util/cli.hpp"
#include "agedtr/util/supervisor.hpp"
#include "agedtr/util/stopwatch.hpp"
#include "agedtr/util/strings.hpp"
#include "agedtr/util/table.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

using namespace agedtr;
using dist::ModelFamily;

namespace {

/// The λ = 1 fault mix; scale_fault_plan produces every other intensity.
sim::FaultPlan base_fault_plan() {
  sim::FaultPlan plan;
  plan.group_channel.drop_probability = 0.05;
  plan.group_channel.retransmit_timeout = 10.0;
  plan.group_channel.backoff_factor = 2.0;
  plan.group_channel.max_retries = 5;
  plan.fn_channel.drop_probability = 0.10;
  plan.fn_channel.retransmit_timeout = 1.0;
  plan.fn_channel.max_retries = 3;
  plan.shock_rate = 1.0 / 1500.0;
  plan.shock_kill_probability = 0.3;
  plan.stall_rate = 1.0 / 400.0;
  plan.stall_duration = dist::Exponential::with_mean(30.0);
  return plan;
}

struct GridPoint {
  int l12 = 0;
  int l21 = 0;
};

/// Stage-1 outcome: the paper-optimal policy and the fallback-chain tally.
struct Stage1Record {
  GridPoint paper_opt;
  double analytic = 0.0;
  policy::EvalTally tally;
};

std::string pack_stage1(const Stage1Record& s) {
  std::vector<std::string> fields = {
      std::to_string(s.paper_opt.l12), std::to_string(s.paper_opt.l21),
      format_double(s.analytic, 17), std::to_string(s.tally.evaluations),
      std::to_string(s.tally.total_failures)};
  for (std::size_t t = 0; t < policy::kEvalTierCount; ++t) {
    fields.push_back(std::to_string(s.tally.answered[t]));
    fields.push_back(std::to_string(s.tally.declined[t]));
  }
  return join_fields(fields);
}

Stage1Record unpack_stage1(const std::string& payload) {
  const std::vector<std::string> f = split_fields(payload);
  Stage1Record s;
  s.paper_opt.l12 = std::stoi(f.at(0));
  s.paper_opt.l21 = std::stoi(f.at(1));
  s.analytic = std::stod(f.at(2));
  s.tally.evaluations = std::stoull(f.at(3));
  s.tally.total_failures = std::stoull(f.at(4));
  for (std::size_t t = 0; t < policy::kEvalTierCount; ++t) {
    s.tally.answered[t] = std::stoull(f.at(5 + 2 * t));
    s.tally.declined[t] = std::stoull(f.at(6 + 2 * t));
  }
  return s;
}

/// Everything one intensity contributes to the tables and the CSV.
struct IntensityRecord {
  double r = 0.0, lower = 0.0, upper = 0.0;
  double best_r = 0.0;
  GridPoint best;
  double paper_r_search = 0.0;
  std::size_t truncated = 0;
  sim::FaultStats faults;
};

std::string pack_intensity(const IntensityRecord& x) {
  const auto f = [](double v) { return format_double(v, 17); };
  return join_fields(
      {f(x.r), f(x.lower), f(x.upper), f(x.best_r),
       std::to_string(x.best.l12), std::to_string(x.best.l21),
       f(x.paper_r_search), std::to_string(x.truncated),
       std::to_string(x.faults.group_retransmissions),
       std::to_string(x.faults.fn_retransmissions),
       std::to_string(x.faults.tasks_lost_in_network),
       std::to_string(x.faults.fn_packets_dropped),
       std::to_string(x.faults.shocks),
       std::to_string(x.faults.shock_failures),
       std::to_string(x.faults.stalls), f(x.faults.total_stall_time)});
}

IntensityRecord unpack_intensity(const std::string& payload) {
  const std::vector<std::string> f = split_fields(payload);
  IntensityRecord x;
  x.r = std::stod(f.at(0));
  x.lower = std::stod(f.at(1));
  x.upper = std::stod(f.at(2));
  x.best_r = std::stod(f.at(3));
  x.best.l12 = std::stoi(f.at(4));
  x.best.l21 = std::stoi(f.at(5));
  x.paper_r_search = std::stod(f.at(6));
  x.truncated = std::stoull(f.at(7));
  x.faults.group_retransmissions = std::stoull(f.at(8));
  x.faults.fn_retransmissions = std::stoull(f.at(9));
  x.faults.tasks_lost_in_network = std::stoi(f.at(10));
  x.faults.fn_packets_dropped = std::stoull(f.at(11));
  x.faults.shocks = std::stoull(f.at(12));
  x.faults.shock_failures = std::stoull(f.at(13));
  x.faults.stalls = std::stoull(f.at(14));
  x.faults.total_stall_time = std::stod(f.at(15));
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "degradation sweep: reliability and regret of the paper-optimal "
      "policy as model-assumption violations intensify");
  cli.add_option("model", "exponential", "service/transfer model family");
  cli.add_option("delay", "severe", "network delay regime (low|severe)");
  cli.add_option("step", "5", "policy grid step for the optimal search");
  cli.add_option("coarse-step", "25",
                 "policy grid step for the under-fault search");
  cli.add_option("replications", "4000",
                 "Monte-Carlo replications for the headline estimates");
  cli.add_option("search-replications", "1000",
                 "replications per policy in the under-fault search");
  cli.add_option("intensities", "0,0.5,1,2,4",
                 "comma-separated fault intensities (0 = the seed model)");
  cli.add_option("seed", "20100913", "Monte-Carlo seed");
  cli.add_option("out", "bench_results/degradation_sweep.csv",
                 "where to write the CSV series");
  cli.add_option("checkpoint", "",
                 "journal completed work units (the stage-1 search, each "
                 "intensity row) to this file; empty = off");
  cli.add_flag("resume", "replay units already journaled in --checkpoint");
  cli.add_flag("supervise",
               "run every Monte-Carlo batch under a util::Supervisor "
               "(retry/quarantine failed replications; a healthy sweep is "
               "bit-identical to the unsupervised one)");
  cli.add_option("metrics", "",
                 "write a metrics report (and .trace.json) to this path");
  if (!cli.parse(argc, argv)) return 0;
  const agedtr::metrics::ScopedExport metrics_export(
      cli.get_string("metrics"));

  const ModelFamily family = dist::parse_model_family(cli.get_string("model"));
  const bench::Delay delay = cli.get_string("delay") == "low"
                                 ? bench::Delay::kLow
                                 : bench::Delay::kSevere;
  const int step = static_cast<int>(cli.get_int("step"));
  const int coarse_step = static_cast<int>(cli.get_int("coarse-step"));
  const auto replications =
      static_cast<std::size_t>(cli.get_int("replications"));
  const auto search_replications =
      static_cast<std::size_t>(cli.get_int("search-replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bool supervise = cli.get_flag("supervise");

  std::vector<double> intensities;
  for (const std::string& tok : split(cli.get_string("intensities"), ',')) {
    intensities.push_back(std::stod(tok));
  }

  Stopwatch watch;
  ThreadPool& pool = ThreadPool::global();
  const core::DcsScenario scenario =
      bench::two_server_scenario(family, delay, /*failures=*/true);
  const int m1 = scenario.servers[0].initial_tasks;
  const int m2 = scenario.servers[1].initial_tasks;

  std::unique_ptr<Checkpoint> journal;
  if (!cli.get_string("checkpoint").empty()) {
    journal = std::make_unique<Checkpoint>(
        cli.get_string("checkpoint"),
        "degradation_sweep model=" + dist::model_family_name(family) +
            " delay=" + bench::delay_name(delay) +
            " step=" + std::to_string(step) +
            " coarse=" + std::to_string(coarse_step) +
            " reps=" + std::to_string(replications) +
            " search_reps=" + std::to_string(search_replications) +
            " seed=" + std::to_string(seed),
        cli.get_flag("resume"));
  }
  const auto journaled = [&](const std::string& key,
                             const std::function<std::string()>& compute) {
    return journal ? journal->run_unit(key, compute) : compute();
  };

  // --- Stage 1: paper-optimal policy through the fallback chain. ---------
  const Stage1Record stage1 = unpack_stage1(journaled("stage1", [&] {
    policy::ResilientEvalOptions eval_options;
    eval_options.objective = policy::Objective::kReliability;
    const policy::ResilientEvaluator resilient(scenario, eval_options);

    std::vector<GridPoint> grid;
    for (int l12 = 0; l12 <= m1; l12 += step) {
      for (int l21 = 0; l21 <= m2; l21 += step) {
        grid.push_back({l12, l21});
      }
    }
    std::vector<policy::EvalOutcome> outcomes(grid.size());
    pool.parallel_for(0, grid.size(), [&](std::size_t i) {
      outcomes[i] = resilient.evaluate(
          policy::make_two_server_policy(grid[i].l12, grid[i].l21));
    });

    Stage1Record s;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      s.tally.record(outcomes[i]);
      if (outcomes[i].ok &&
          (!outcomes[best_index].ok ||
           outcomes[i].value > outcomes[best_index].value)) {
        best_index = i;
      }
    }
    s.paper_opt = grid[best_index];
    s.analytic = outcomes[best_index].value;
    return pack_stage1(s);
  }));
  const GridPoint paper_opt = stage1.paper_opt;
  const double paper_opt_analytic = stage1.analytic;
  const policy::EvalTally& tally = stage1.tally;

  std::cout << "Paper-optimal reliability policy (" << bench::delay_name(delay)
            << " delay, " << dist::model_family_name(family)
            << "): L12 = " << paper_opt.l12 << ", L21 = " << paper_opt.l21
            << ", R-inf = " << format_double(paper_opt_analytic, 4) << "\n\n";

  Table tier_table({"tier", "answered", "declined"});
  for (std::size_t t = 0; t < policy::kEvalTierCount; ++t) {
    tier_table.begin_row()
        .cell(policy::eval_tier_name(static_cast<policy::EvalTier>(t)))
        .cell(static_cast<long long>(tally.answered[t]))
        .cell(static_cast<long long>(tally.declined[t]));
  }
  std::cout << "Fallback-chain usage over " << tally.evaluations
            << " policy evaluations (failures: " << tally.total_failures
            << "):\n";
  tier_table.print(std::cout);

  // --- Stage 2: the degradation sweep. -----------------------------------
  const sim::FaultPlan base = base_fault_plan();
  const core::DtrPolicy paper_policy =
      policy::make_two_server_policy(paper_opt.l12, paper_opt.l21);

  std::vector<GridPoint> coarse;
  for (int l12 = 0; l12 <= m1; l12 += coarse_step) {
    for (int l21 = 0; l21 <= m2; l21 += coarse_step) {
      coarse.push_back({l12, l21});
    }
  }
  // The paper-optimal point joins the coarse grid so the regret estimate
  // compares like with like (same replication count, same streams).
  if (std::none_of(coarse.begin(), coarse.end(), [&](const GridPoint& p) {
        return p.l12 == paper_opt.l12 && p.l21 == paper_opt.l21;
      })) {
    coarse.push_back(paper_opt);
  }

  Table sweep({"intensity", "R-inf paper-opt", "ci half-width",
               "R-inf fault-best", "best L12", "best L21", "regret",
               "truncated", "retransmissions", "shocks", "stalls"});
  Table csv({"intensity", "r_paper_opt", "r_lower", "r_upper", "r_fault_best",
             "best_l12", "best_l21", "regret", "truncated",
             "group_retransmissions", "tasks_lost_in_network", "shocks",
             "shock_failures", "stalls", "total_stall_time"});

  double previous_r = 1.0;
  bool monotone = true;
  SupervisionReport supervision_total;
  for (const double intensity : intensities) {
    const IntensityRecord row = unpack_intensity(
        journaled("intensity " + format_double(intensity, 17), [&] {
          const sim::FaultPlan plan = scale_fault_plan(base, intensity);

          sim::MonteCarloOptions mc;
          mc.replications = replications;
          mc.seed = seed;
          mc.pool = &pool;
          mc.simulator.faults = plan;
          if (supervise) {
            SupervisorOptions sup;
            sup.pool = &pool;
            mc.supervise = sup;
          }
          const sim::MonteCarloMetrics headline =
              sim::run_monte_carlo(scenario, paper_policy, mc);
          if (supervise) supervision_total.absorb(headline.supervision);

          // Under-fault policy search on the coarse grid (sequential over
          // policies; each run_monte_carlo fans replications over the pool).
          sim::MonteCarloOptions search_mc = mc;
          search_mc.replications = search_replications;
          IntensityRecord x;
          x.best_r = -1.0;
          x.best = paper_opt;
          for (const GridPoint& p : coarse) {
            const sim::MonteCarloMetrics candidate = sim::run_monte_carlo(
                scenario, policy::make_two_server_policy(p.l12, p.l21),
                search_mc);
            if (supervise) supervision_total.absorb(candidate.supervision);
            const double r = candidate.reliability.center;
            if (p.l12 == paper_opt.l12 && p.l21 == paper_opt.l21) {
              x.paper_r_search = r;
            }
            if (r > x.best_r) {
              x.best_r = r;
              x.best = p;
            }
          }
          x.r = headline.reliability.center;
          x.lower = headline.reliability.lower;
          x.upper = headline.reliability.upper;
          x.truncated = headline.truncated;
          x.faults = headline.fault_totals;
          return pack_intensity(x);
        }));
    const double regret = row.best_r - row.paper_r_search;
    const double r = row.r;
    const double half_width = 0.5 * (row.upper - row.lower);
    if (r > previous_r + 1e-9) monotone = false;
    previous_r = r;

    const sim::FaultStats& f = row.faults;
    sweep.begin_row()
        .cell(intensity, 2)
        .cell(r)
        .cell(half_width)
        .cell(row.best_r)
        .cell(row.best.l12)
        .cell(row.best.l21)
        .cell(regret)
        .cell(static_cast<long long>(row.truncated))
        .cell(static_cast<long long>(f.group_retransmissions +
                                     f.fn_retransmissions))
        .cell(static_cast<long long>(f.shocks))
        .cell(static_cast<long long>(f.stalls));
    csv.begin_row()
        .cell(intensity, 4)
        .cell(r, 6)
        .cell(row.lower, 6)
        .cell(row.upper, 6)
        .cell(row.best_r, 6)
        .cell(row.best.l12)
        .cell(row.best.l21)
        .cell(regret, 6)
        .cell(static_cast<long long>(row.truncated))
        .cell(static_cast<long long>(f.group_retransmissions))
        .cell(static_cast<long long>(f.tasks_lost_in_network))
        .cell(static_cast<long long>(f.shocks))
        .cell(static_cast<long long>(f.shock_failures))
        .cell(static_cast<long long>(f.stalls))
        .cell(f.total_stall_time, 2);

    if (intensity == 0.0) {
      std::cout << "\nZero-fault cross-check: analytic R-inf = "
                << format_double(paper_opt_analytic, 4)
                << ", Monte-Carlo R-inf = " << format_double(r, 4)
                << " (|diff| = "
                << format_double(std::fabs(r - paper_opt_analytic), 4)
                << ", CI half-width = " << format_double(half_width, 4)
                << ")\n";
    }
  }

  std::cout << "\nDegradation of the paper-optimal policy (L12 = "
            << paper_opt.l12 << ", L21 = " << paper_opt.l21 << "):\n";
  sweep.print(std::cout);
  std::cout << (monotone ? "R-inf degrades monotonically with intensity.\n"
                         : "WARNING: R-inf is not monotone in intensity "
                           "(raise --replications).\n");
  if (supervise) {
    std::cout << "supervision: " << supervision_total.tasks
              << " replications supervised, " << supervision_total.retries
              << " retries, " << supervision_total.watchdog_cancellations
              << " watchdog cancellations, "
              << supervision_total.quarantined.size() << " quarantined\n";
  }
  const std::string out_path = cli.get_string("out");
  const std::filesystem::path out_dir =
      std::filesystem::path(out_path).parent_path();
  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  csv.write_csv_file(out_path);
  std::cout << "CSV series written to " << out_path << " ("
            << format_double(watch.elapsed_seconds(), 1) << " s total)\n";
  if (journal) {
    std::cout << "checkpoint: " << journal->stats().hits << " of "
              << journal->size() << " units replayed from "
              << journal->path() << "\n";
  }
  return 0;
}
