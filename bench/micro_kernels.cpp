// Google-benchmark microbenchmarks over the library's hot kernels: FFT and
// lattice convolution, k-fold service sums, distribution sampling and
// discretization, the Markovian DP, the CTMC uniformization, the full
// ConvolutionSolver metrics, the age-dependent regeneration machinery, and
// the discrete-event simulator.
#include <benchmark/benchmark.h>

#include <cmath>
#include <complex>

#include "agedtr/core/convolution.hpp"
#include "agedtr/core/ctmc.hpp"
#include "agedtr/core/markovian.hpp"
#include "agedtr/core/regen_solver.hpp"
#include "agedtr/dist/builders.hpp"
#include "agedtr/dist/exponential.hpp"
#include "agedtr/dist/gamma.hpp"
#include "agedtr/dist/pareto.hpp"
#include "agedtr/dist/lattice_bridge.hpp"
#include "agedtr/numerics/fft.hpp"
#include "agedtr/numerics/kernels.hpp"
#include "agedtr/random/rng.hpp"
#include "agedtr/sim/simulator.hpp"
#include "agedtr/util/metrics.hpp"
#include "paper_setup.hpp"

namespace {

using namespace agedtr;

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::sin(0.01 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    auto copy = data;
    numerics::fft(copy, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_Rfft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const numerics::FftPlan& plan = numerics::fft_plan(n);
  std::vector<double> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = std::sin(0.01 * static_cast<double>(i));
  }
  std::vector<std::complex<double>> out(plan.bins());
  for (auto _ : state) {
    plan.rfft(in.data(), in.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Rfft)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

// ---- SIMD kernels ----------------------------------------------------------
// The portable omp-simd loops under the FFT pipeline: spectrum pointwise
// product, the prefix-sum CDF build, and the rescale/clamp pass.

void BM_KernelPointwiseMul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    a[i] = {std::sin(0.01 * t), std::cos(0.02 * t)};
    b[i] = {std::cos(0.03 * t), std::sin(0.04 * t)};
  }
  for (auto _ : state) {
    numerics::kernels::pointwise_mul_inplace(a.data(), b.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelPointwiseMul)->Arg(1 << 12)->Arg(1 << 16);

void BM_KernelPrefixSum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> in(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n);
  for (auto _ : state) {
    numerics::kernels::prefix_sum(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelPrefixSum)->Arg(1 << 12)->Arg(1 << 16);

void BM_KernelRescale(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.01 * static_cast<double>(i)) * 1e-3;
  }
  for (auto _ : state) {
    numerics::kernels::scale(x.data(), n, 1.0000001);
    numerics::kernels::clamp_nonnegative(x.data(), n);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelRescale)->Arg(1 << 12)->Arg(1 << 16);

void BM_LatticeConvolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dist::Exponential law(0.5);
  const numerics::LatticeDensity d = dist::discretize(law, 10.0 / static_cast<double>(n), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.convolve(d).tail());
  }
}
BENCHMARK(BM_LatticeConvolve)->Arg(1 << 14)->Arg(1 << 16);

void BM_ServiceSumKFold(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const dist::Exponential law(0.5);
  const numerics::LatticeDensity d = dist::discretize(law, 0.01, 1 << 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.convolve_power(k).tail());
  }
}
BENCHMARK(BM_ServiceSumKFold)->Arg(10)->Arg(100);

void BM_Discretize(benchmark::State& state) {
  const dist::DistPtr p = dist::Pareto::with_mean(2.0, 2.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::discretize(*p, 0.01, 1 << 16).tail());
  }
}
BENCHMARK(BM_Discretize);

void BM_Sampling(benchmark::State& state) {
  const dist::DistPtr laws[] = {
      dist::Exponential::with_mean(1.0),
      dist::Pareto::with_mean(1.0, 2.5),
      std::make_shared<dist::Gamma>(2.0, 0.5),
  };
  const auto& law = *laws[static_cast<std::size_t>(state.range(0))];
  random::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(law.sample(rng));
  }
}
BENCHMARK(BM_Sampling)->Arg(0)->Arg(1)->Arg(2);

void BM_MarkovianMeanDp(benchmark::State& state) {
  const core::DcsScenario s = bench::two_server_scenario(
      dist::ModelFamily::kExponential, bench::Delay::kLow, false);
  const core::MarkovianSolver solver(s);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 30);
  policy.set(1, 0, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.mean_execution_time(policy));
  }
}
BENCHMARK(BM_MarkovianMeanDp);

void BM_CtmcQos(benchmark::State& state) {
  std::vector<core::ServerSpec> servers = {
      {30, dist::Exponential::with_mean(2.0), nullptr},
      {15, dist::Exponential::with_mean(1.0), nullptr}};
  const core::DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Exponential::with_mean(1.0),
      dist::Exponential::with_mean(0.2));
  core::DtrPolicy policy(2);
  policy.set(0, 1, 10);
  const core::CtmcTransientSolver ctmc(s, policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctmc.qos(60.0));
  }
}
BENCHMARK(BM_CtmcQos);

void BM_ConvolutionSolverMean(benchmark::State& state) {
  const core::DcsScenario s = bench::two_server_scenario(
      dist::ModelFamily::kPareto1, bench::Delay::kSevere, false);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 32);
  policy.set(1, 0, 1);
  const auto workloads = core::apply_policy(s, policy);
  core::ConvolutionOptions opts;
  opts.cells = 1u << 15;
  for (auto _ : state) {
    // Fresh solver each iteration: measures the uncached cost.
    const core::ConvolutionSolver solver(opts);
    benchmark::DoNotOptimize(solver.mean_execution_time(workloads));
  }
}
BENCHMARK(BM_ConvolutionSolverMean);

void BM_ConvolutionSolverCachedSweep(benchmark::State& state) {
  const core::DcsScenario s = bench::two_server_scenario(
      dist::ModelFamily::kPareto1, bench::Delay::kSevere, false);
  core::ConvolutionOptions opts;
  opts.cells = 1u << 15;
  const core::ConvolutionSolver solver(opts);
  int l12 = 0;
  for (auto _ : state) {
    core::DtrPolicy policy(2);
    policy.set(0, 1, l12);
    l12 = (l12 + 7) % 100;
    benchmark::DoNotOptimize(
        solver.mean_execution_time(core::apply_policy(s, policy)));
  }
}
BENCHMARK(BM_ConvolutionSolverCachedSweep);

void BM_RegenerationPdf(benchmark::State& state) {
  const core::DcsScenario s = bench::two_server_scenario(
      dist::ModelFamily::kPareto1, bench::Delay::kSevere, true);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 30);
  const core::SystemState st = core::SystemState::initial(s, policy);
  const core::RegenerationAnalysis analysis(s, st);
  double t = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.regeneration_pdf(t));
    t += 0.1;
    if (t > 10.0) t = 0.1;
  }
}
BENCHMARK(BM_RegenerationPdf);

void BM_RegenSolverSmallMean(benchmark::State& state) {
  std::vector<core::ServerSpec> servers = {
      {2, dist::Pareto::with_mean(2.0, 2.5), nullptr},
      {1, dist::Pareto::with_mean(1.0, 2.5), nullptr}};
  const core::DcsScenario s = core::make_uniform_network_scenario(
      std::move(servers), dist::Pareto::with_mean(1.5, 2.5),
      dist::Exponential::with_mean(0.2));
  core::DtrPolicy policy(2);
  policy.set(0, 1, 1);
  const core::RegenerativeSolver solver(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.mean_execution_time(policy));
  }
}
BENCHMARK(BM_RegenSolverSmallMean);

void BM_SimulatorRun(benchmark::State& state) {
  const core::DcsScenario s = bench::two_server_scenario(
      dist::ModelFamily::kPareto1, bench::Delay::kSevere, true);
  core::DtrPolicy policy(2);
  policy.set(0, 1, 30);
  const sim::DcsSimulator simulator(s);
  random::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(policy, rng).completion_time);
  }
}
BENCHMARK(BM_SimulatorRun);

void BM_RngThroughput(benchmark::State& state) {
  random::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngThroughput);

// ---- metrics overhead ------------------------------------------------------
// The cost-model claim of util::metrics: a site with metrics disabled is one
// relaxed load plus a branch. Compare Disabled variants against BM_MetricsOff
// (the uninstrumented floor) and against the Enabled variants.

void BM_MetricsOff(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_MetricsOff);

void BM_MetricsCounterDisabled(benchmark::State& state) {
  metrics::set_enabled(false);
  metrics::Counter& counter = metrics::MetricsRegistry::global().counter(
      "bench.overhead_counter");
  std::uint64_t x = 0;
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_MetricsCounterDisabled);

void BM_MetricsCounterEnabled(benchmark::State& state) {
  metrics::set_enabled(true);
  metrics::Counter& counter = metrics::MetricsRegistry::global().counter(
      "bench.overhead_counter");
  std::uint64_t x = 0;
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(++x);
  }
  metrics::set_enabled(false);
}
BENCHMARK(BM_MetricsCounterEnabled);

void BM_MetricsHistogramDisabled(benchmark::State& state) {
  metrics::set_enabled(false);
  metrics::Histogram& histogram =
      metrics::MetricsRegistry::global().histogram(
          "bench.overhead_histogram",
          metrics::exponential_buckets(1e-6, 4.0, 12));
  double v = 0.0;
  for (auto _ : state) {
    histogram.observe(v);
    benchmark::DoNotOptimize(v += 1e-6);
  }
}
BENCHMARK(BM_MetricsHistogramDisabled);

void BM_MetricsHistogramEnabled(benchmark::State& state) {
  metrics::set_enabled(true);
  metrics::Histogram& histogram =
      metrics::MetricsRegistry::global().histogram(
          "bench.overhead_histogram",
          metrics::exponential_buckets(1e-6, 4.0, 12));
  double v = 0.0;
  for (auto _ : state) {
    histogram.observe(v);
    benchmark::DoNotOptimize(v += 1e-6);
  }
  metrics::set_enabled(false);
}
BENCHMARK(BM_MetricsHistogramEnabled);

void BM_MetricsSpanDisabled(benchmark::State& state) {
  metrics::set_enabled(false);
  std::uint64_t x = 0;
  for (auto _ : state) {
    metrics::TraceSpan span("bench.overhead_span", "bench");
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_MetricsSpanDisabled);

void BM_MetricsSpanEnabled(benchmark::State& state) {
  metrics::set_enabled(true);
  std::uint64_t x = 0;
  for (auto _ : state) {
    metrics::TraceSpan span("bench.overhead_span", "bench");
    benchmark::DoNotOptimize(++x);
  }
  metrics::set_enabled(false);
}
BENCHMARK(BM_MetricsSpanEnabled);

}  // namespace

BENCHMARK_MAIN();
